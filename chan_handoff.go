package wfqueue

import (
	"context"
	"unsafe"

	"repro/internal/metrics"
	"repro/internal/park"
)

// Direct handoff: the rendezvous fast path that skips the ring when a
// waiter is already parked (see ARCHITECTURE.md, "Direct handoff").
//
// Receiver side: a blocking receive that outlasts its (unregistered,
// ring-consuming) spin budget registers on notEmpty with an armed
// transfer cell (ChanHandle rcell) at park commit, and stays claimable
// from that moment — through its registered re-checks and through the
// park. A sender that finds the queue verifiably empty — the backend's
// one-sided Empty probe, the linearization point that keeps
// per-producer FIFO intact — claims the oldest armed receiver, writes
// its value straight into the cell, and wakes it. The value never
// touches the ring, and the woken receiver returns without dequeuing.
//
// Sender side (takeover): a blocking send on a single-ring bounded
// backend arms its pending value (scell) at park-commit time. A
// receiver that frees a slot claims the oldest armed sender and
// enqueues the pending value on its behalf, so the woken sender
// returns immediately instead of re-running its retry loop. The
// sharded backend is excluded — the receiver's handle would enqueue
// into the wrong home shard, breaking per-handle FIFO — and unbounded
// backends never park senders.
//
// Exactly-once in both directions rests on park's claim protocol: the
// armed→claimed CAS races one-shot against the owner's Disarm, and
// Abort reports a landed handoff so a cancelling owner consumes the
// value instead of dropping it.

// armSend publishes v as this handle's pending takeover value and arms
// the parked registration. Called only at park commit (after the
// registered re-checks), once per registration.
//
//wfq:noalloc
func (h *ChanHandle[T]) armSend(w *park.Waiter, v T) {
	h.scell = v
	w.Arm(unsafe.Pointer(&h.scell))
}

// tryHandoff attempts to deliver v straight to a parked receiver. It
// succeeds only when the queue is verifiably empty at the attempt —
// handing v over while older values sit buffered would reorder this
// producer's stream — and a claimable receiver exists. On success the
// receiver has been woken with v in its cell; the caller owes no
// notEmpty signal.
//
//wfq:noalloc
func (h *ChanHandle[T]) tryHandoff(v T) bool {
	c := h.c
	if !c.handoff || c.notEmpty.Waiters() == 0 {
		return false
	}
	if !c.core.empty() {
		// Buffered values exist: the parked receivers are about to be
		// satisfied from the ring (or are mid-registration); delivering
		// v around them would break FIFO. Not a miss — no rendezvous is
		// attempted when FIFO forbids one.
		return false
	}
	w, cell := c.notEmpty.Claim()
	if w == nil {
		c.met.Inc(metrics.HandoffMiss)
		return false
	}
	*(*T)(cell) = v
	c.notEmpty.Deliver(w)
	c.met.Inc(metrics.HandoffSend)
	return true
}

// releaseSlot signals capacity after this handle dequeued one value:
// on takeover backends it first tries to spend the freed slot on a
// parked sender directly (see releaseSlots); otherwise it falls back
// to the plain notFull wake.
//
//wfq:noalloc
func (h *ChanHandle[T]) releaseSlot() { h.releaseSlots(1) }

// releaseSlots signals capacity after this handle dequeued n values.
// On takeover backends it claims up to n parked senders and enqueues
// each one's pending value on its behalf: the sender wakes already
// satisfied (it signals notEmpty for the value it now knows is
// buffered — see finishSend), skipping its whole retry loop. A slot
// the enqueue cannot win back (racing producers took it) downgrades to
// a plain wake of that sender. Remaining slots wake senders normally.
//
//wfq:noalloc
func (h *ChanHandle[T]) releaseSlots(n int) {
	c := h.c
	if c.takeover {
		for n > 0 && c.notFull.Waiters() != 0 {
			w, cell := c.notFull.Claim()
			if w == nil {
				break
			}
			if h.h.Enqueue(*(*T)(cell)) {
				c.notFull.Deliver(w)
				c.met.Inc(metrics.HandoffRecv)
			} else {
				c.met.Inc(metrics.HandoffMiss)
				c.notFull.DeliverWake(w)
			}
			n--
		}
	}
	if n > 0 {
		c.wakeNotFullN(n)
	}
}

// recvCtxHandoff is the blocking receive with the rendezvous fast
// path. The spin phases run BEFORE registration with the ring path's
// consuming condition: a receiver that keeps up with producers
// resolves on the wait-free ring and never touches the notEmpty mutex,
// so the fast majority pays handoff nothing. Only a receiver whose
// spin budget expires registers — with PrepareXfer, so it is claimable
// from the moment it is listed: through the registered re-checks below
// (the "spin phase" of the registration) and through the park itself.
// A sender that finds it delivers straight into the transfer cell,
// skipping the ring and the dequeue after the wake. The invariant that
// keeps exactly-once: an armed receiver never touches the ring without
// first winning Disarm — a lost Disarm means a claimer owns the
// registration, and its token and cell value must be consumed.
func (h *ChanHandle[T]) recvCtxHandoff(ctx context.Context) (T, error) {
	c := h.c
	var zero T
	for {
		if v, ok := h.h.Dequeue(); ok {
			h.releaseSlot()
			return v, nil
		}
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		// Phases 1-2: spin-then-yield, consuming, unregistered — the
		// same as the ring path. A hit on the closed-and-drained arm
		// (got stays false) falls through to the registered check below.
		var sv T
		got := false
		if c.notEmpty.SpinWait(&h.rng, func() bool {
			if v, ok := h.h.Dequeue(); ok {
				sv, got = v, true
				return true
			}
			return c.closed.Load() && c.sending.Load() == 0
		}) && got {
			h.releaseSlot()
			return sv, nil
		}
		// Park commit: register claimable. From here until a won Disarm
		// this goroutine may not touch the ring.
		w := c.notEmpty.PrepareXfer(unsafe.Pointer(&h.rcell))
		// Re-check after registering (lost-wakeup protocol): a sender
		// that missed the registration must have enqueued first, which
		// this probe observes.
		if !c.core.empty() || (c.closed.Load() && c.sending.Load() == 0) {
			if !w.Disarm() {
				// Lost the race to a claimer: the handoff owns this
				// registration now.
				<-w.Ready()
				v := h.rcell
				c.notEmpty.Finish(w)
				return v, nil
			}
			// Disarmed: exclusive use of the cell again, safe to touch
			// the ring.
			if v, ok := h.h.Dequeue(); ok {
				c.notEmpty.Abort(w)
				h.releaseSlot()
				return v, nil
			}
			if c.closed.Load() && c.sending.Load() == 0 {
				// Final re-check, as the ring path.
				if v, ok := h.h.Dequeue(); ok {
					c.notEmpty.Abort(w)
					h.releaseSlot()
					return v, nil
				}
				c.notEmpty.Abort(w)
				// Nudge any sibling still parked so it re-evaluates the
				// drained state too.
				c.notEmpty.WakeAll()
				c.met.Inc(metrics.CloseDrain)
				return zero, ErrClosed
			}
			// The ring emptied again between the probe and the dequeue;
			// retire this registration and re-arm fresh.
			c.notEmpty.Abort(w)
			continue
		}
		select {
		case <-w.Ready():
			// Done before Finish: Finish recycles the waiter and resets
			// its transfer state.
			done := w.Done()
			var v T
			if done {
				v = h.rcell
			}
			c.notEmpty.Finish(w)
			if done {
				return v, nil
			}
			// Plain (possibly forwarded) wake: loop and re-check.
		case <-ctx.Done():
			if c.notEmpty.Abort(w) {
				// The handoff landed before the abort: the value counts
				// as delivered, exactly once — return it, not the error.
				return h.rcell, nil
			}
			return zero, ctx.Err()
		}
	}
}

// recvManyCtxHandoff is recvCtxHandoff's batch shape: the ring path
// drains a prefix of out as before, while a landed handoff satisfies
// the "at least one value" contract with out[0] (the claim protocol
// transfers exactly one value per registration). The caller has
// already rejected len(out) == 0.
func (h *ChanHandle[T]) recvManyCtxHandoff(ctx context.Context, out []T) (int, error) {
	c := h.c
	for {
		if n := h.h.DequeueBatch(out); n > 0 {
			h.releaseSlots(n)
			return n, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Consuming, unregistered spin, as recvCtxHandoff.
		sn := 0
		if c.notEmpty.SpinWait(&h.rng, func() bool {
			if n := h.h.DequeueBatch(out); n > 0 {
				sn = n
				return true
			}
			return c.closed.Load() && c.sending.Load() == 0
		}) && sn > 0 {
			h.releaseSlots(sn)
			return sn, nil
		}
		w := c.notEmpty.PrepareXfer(unsafe.Pointer(&h.rcell))
		if !c.core.empty() || (c.closed.Load() && c.sending.Load() == 0) {
			if !w.Disarm() {
				<-w.Ready()
				out[0] = h.rcell
				c.notEmpty.Finish(w)
				return 1, nil
			}
			if n := h.h.DequeueBatch(out); n > 0 {
				c.notEmpty.Abort(w)
				h.releaseSlots(n)
				return n, nil
			}
			if c.closed.Load() && c.sending.Load() == 0 {
				if n := h.h.DequeueBatch(out); n > 0 {
					c.notEmpty.Abort(w)
					h.releaseSlots(n)
					return n, nil
				}
				c.notEmpty.Abort(w)
				c.notEmpty.WakeAll()
				c.met.Inc(metrics.CloseDrain)
				return 0, ErrClosed
			}
			c.notEmpty.Abort(w)
			continue
		}
		select {
		case <-w.Ready():
			done := w.Done()
			if done {
				out[0] = h.rcell
			}
			c.notEmpty.Finish(w)
			if done {
				return 1, nil
			}
		case <-ctx.Done():
			if c.notEmpty.Abort(w) {
				out[0] = h.rcell
				return 1, nil
			}
			return 0, ctx.Err()
		}
	}
}
