package wfqueue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPublicBatchRoundTrip drives the public batch surface of every
// nonblocking variant: whole batches in, contiguous FIFO out.
func TestPublicBatchRoundTrip(t *testing.T) {
	in := make([]int, 24)
	for i := range in {
		in[i] = i
	}
	check := func(t *testing.T, enq func([]int) int, deq func([]int) int) {
		t.Helper()
		if n := enq(in); n != len(in) {
			t.Fatalf("EnqueueBatch = %d, want %d", n, len(in))
		}
		out := make([]int, len(in))
		got := 0
		for got < len(in) {
			n := deq(out[got:])
			if n == 0 {
				t.Fatalf("lost values: drained %d of %d", got, len(in))
			}
			got += n
		}
		for i, v := range out {
			if v != in[i] {
				t.Fatalf("out[%d] = %d, want %d", i, v, in[i])
			}
		}
	}

	t.Run("Queue", func(t *testing.T) {
		q, err := New[int](64, 2)
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		check(t, h.EnqueueBatch, h.DequeueBatch)
	})
	t.Run("LockFree", func(t *testing.T) {
		q, err := NewLockFree[int](64)
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		check(t, h.EnqueueBatch, h.DequeueBatch)
	})
	t.Run("ShardedUnbounded", func(t *testing.T) {
		// Ring size 8 forces rollover inside each shard mid-batch.
		q, err := NewSharded[int](8, 2, WithUnboundedShards(4))
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		check(t, h.EnqueueBatch, h.DequeueBatch)
	})
	t.Run("Sharded", func(t *testing.T) {
		// Home-shard capacity is total/shards; 256/4 = 64 >= the batch.
		q, err := NewSharded[int](256, 2)
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		check(t, h.EnqueueBatch, h.DequeueBatch)
	})
	t.Run("Unbounded", func(t *testing.T) {
		q, err := NewUnbounded[int](2, WithRingCapacity(8)) // force ring rollover mid-batch
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		check(t, h.EnqueueBatch, h.DequeueBatch)
	})
}

// TestQueueBatchPartialOnFull pins the partial-success contract at the
// public boundary: a batch larger than the remaining capacity enqueues
// exactly the fitting prefix.
func TestQueueBatchPartialOnFull(t *testing.T) {
	q, err := New[int](8, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int, 13)
	for i := range in {
		in[i] = i
	}
	if n := h.EnqueueBatch(in); n != 8 {
		t.Fatalf("EnqueueBatch into capacity 8 = %d, want 8", n)
	}
	out := make([]int, 16)
	if n := h.DequeueBatch(out); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != i {
			t.Fatalf("out[%d] = %d, want %d (prefix property violated)", i, out[i], i)
		}
	}
}

// TestChanSendManyRecvMany covers the blocking batch surface on every
// backend: SendMany parks on full and completes, RecvMany returns
// whole or partial batches, and close-drain hands back the final
// partial batch before ErrClosed.
func TestChanSendManyRecvMany(t *testing.T) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[int](16, 4, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			tx, err := c.Handle()
			if err != nil {
				t.Fatal(err)
			}
			rx, err := c.Handle()
			if err != nil {
				t.Fatal(err)
			}
			const total = 100
			in := make([]int, total) // far beyond capacity: SendMany must park
			for i := range in {
				in[i] = i
			}
			done := make(chan error, 1)
			go func() {
				n, serr := tx.SendMany(in)
				if serr == nil && n != total {
					done <- errors.New("SendMany returned short without error")
					return
				}
				done <- serr
			}()
			got := 0
			out := make([]int, 7) // odd size: exercises partial windows
			for got < total {
				n, rerr := rx.RecvMany(out)
				if rerr != nil {
					t.Fatalf("RecvMany: %v", rerr)
				}
				if n == 0 {
					t.Fatal("RecvMany returned 0 with nil error")
				}
				for _, v := range out[:n] {
					if v != got {
						t.Fatalf("got %d, want %d (FIFO across parked batches)", v, got)
					}
					got++
				}
			}
			if err := <-done; err != nil {
				t.Fatalf("SendMany: %v", err)
			}

			// Close-drain: buffer a few values, close, then RecvMany
			// must return them as a partial batch before ErrClosed.
			if n, err := tx.TrySendMany([]int{1000, 1001, 1002}); err != nil || n != 3 {
				t.Fatalf("TrySendMany = (%d, %v)", n, err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			big := make([]int, 8)
			n, err := rx.RecvMany(big)
			if err != nil || n != 3 {
				t.Fatalf("RecvMany at close-drain = (%d, %v), want (3, nil)", n, err)
			}
			for i, want := range []int{1000, 1001, 1002} {
				if big[i] != want {
					t.Fatalf("drain[%d] = %d, want %d", i, big[i], want)
				}
			}
			if _, err := rx.RecvMany(big); !errors.Is(err, ErrClosed) {
				t.Fatalf("RecvMany after drain = %v, want ErrClosed", err)
			}
			if _, err := tx.SendMany([]int{1}); !errors.Is(err, ErrClosed) {
				t.Fatalf("SendMany after close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestChanSendManyEmpty pins the degenerate-batch contract: an empty
// SendMany returns immediately (it must not park or pin the in-flight
// send counter, which would wedge close-drain), and reports ErrClosed
// after Close like its scalar sibling.
func TestChanSendManyEmpty(t *testing.T) {
	c, err := NewChan[int](4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Handle()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if n, err := h.SendMany(nil); n != 0 || err != nil {
			t.Errorf("SendMany(nil) = (%d, %v), want (0, nil)", n, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("SendMany(nil) blocked")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.SendMany(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendMany(nil) after close = %v, want ErrClosed", err)
	}
	// The counter was not pinned: a receiver sees the drained state.
	if _, err := h.RecvMany(make([]int, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecvMany after close = %v, want ErrClosed", err)
	}
}

// TestChanSendManyCtxExpiresWhileFull pins the cancellation contract:
// a batch blocked on a full buffer returns its delivered prefix with
// ctx.Err().
func TestChanSendManyCtxExpiresWhileFull(t *testing.T) {
	c, err := NewChan[int](4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Handle()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	in := make([]int, 10)
	n, err := h.SendManyCtx(ctx, in)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n != 4 {
		t.Fatalf("delivered prefix = %d, want 4 (the capacity)", n)
	}
}

// TestChanSendManyCloseRace closes the Chan while batch senders are
// parked mid-batch and verifies exactly-once delivery of every
// reported-sent value: delivered prefixes are fully received, nothing
// past a prefix ever shows up.
func TestChanSendManyCloseRace(t *testing.T) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[uint64](8, 8, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			const senders = 3
			sent := make([]int, senders) // delivered prefix per sender
			var sg sync.WaitGroup
			for s := 0; s < senders; s++ {
				h, herr := c.Handle()
				if herr != nil {
					t.Fatal(herr)
				}
				sg.Add(1)
				go func(s int, h *ChanHandle[uint64]) {
					defer sg.Done()
					batch := make([]uint64, 200)
					for i := range batch {
						batch[i] = uint64(s)<<32 | uint64(i)
					}
					n, serr := h.SendMany(batch)
					if serr == nil && n != len(batch) {
						t.Errorf("sender %d: short SendMany without error", s)
					}
					sent[s] = n
				}(s, h)
			}
			rx, err := c.Handle()
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]int)
			var rg sync.WaitGroup
			rg.Add(1)
			go func() {
				defer rg.Done()
				out := make([]uint64, 16)
				for {
					n, rerr := rx.RecvMany(out)
					if rerr != nil {
						return
					}
					for _, v := range out[:n] {
						got[v]++
					}
				}
			}()
			time.Sleep(5 * time.Millisecond) // let senders park mid-batch
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			sg.Wait()
			rg.Wait()
			for s := 0; s < senders; s++ {
				for i := 0; i < sent[s]; i++ {
					if got[uint64(s)<<32|uint64(i)] != 1 {
						t.Fatalf("sender %d value %d delivered %d times (prefix says sent)",
							s, i, got[uint64(s)<<32|uint64(i)])
					}
				}
				for v, n := range got {
					if int(v>>32) == s && int(v&0xffffffff) >= sent[s] && n > 0 {
						t.Fatalf("sender %d value %d delivered but past reported prefix %d",
							s, v&0xffffffff, sent[s])
					}
				}
			}
		})
	}
}
