package wfqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func backends() []Backend {
	return []Backend{BackendWCQ, BackendSCQ, BackendSharded, BackendUnbounded, BackendShardedUnbounded}
}

func TestChanBasicsAllBackends(t *testing.T) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[int](16, 4, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			wantCap := uint64(16)
			if b == BackendUnbounded || b == BackendShardedUnbounded {
				wantCap = 0 // no bound; 16 became the ring size
			}
			if c.Cap() != wantCap {
				t.Fatalf("Cap() = %d, want %d", c.Cap(), wantCap)
			}
			h, err := c.Handle()
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Send(42); err != nil {
				t.Fatal(err)
			}
			if ok, err := h.TrySend(43); !ok || err != nil {
				t.Fatalf("TrySend = %v, %v", ok, err)
			}
			if v, err := h.Recv(); err != nil || v != 42 {
				t.Fatalf("Recv = %v, %v", v, err)
			}
			if v, ok, err := h.TryRecv(); !ok || err != nil || v != 43 {
				t.Fatalf("TryRecv = %v, %v, %v", v, ok, err)
			}
			if _, ok, err := h.TryRecv(); ok || err != nil {
				t.Fatalf("TryRecv on empty = %v, %v", ok, err)
			}
		})
	}
}

func TestChanCloseDrain(t *testing.T) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			// Capacity 64 keeps even the sharded backend's per-home-shard
			// budget (64/4 = 16) above the 10 values buffered here.
			c, err := NewChan[int](64, 2, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			h, err := c.Handle()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := h.Send(i); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if !c.Closed() {
				t.Fatal("Closed() = false after Close")
			}
			if err := c.Close(); !errors.Is(err, ErrClosed) {
				t.Fatalf("second Close = %v", err)
			}
			if err := h.Send(99); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after Close = %v", err)
			}
			if ok, err := h.TrySend(99); ok || !errors.Is(err, ErrClosed) {
				t.Fatalf("TrySend after Close = %v, %v", ok, err)
			}
			// Receives drain the 10 buffered values, then report closed.
			for i := 0; i < 10; i++ {
				v, err := h.Recv()
				if err != nil || v != i {
					t.Fatalf("drain %d: %v, %v", i, v, err)
				}
			}
			if _, err := h.Recv(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Recv after drain = %v", err)
			}
			if _, ok, err := h.TryRecv(); ok || !errors.Is(err, ErrClosed) {
				t.Fatalf("TryRecv after drain = %v, %v", ok, err)
			}
		})
	}
}

func TestChanSendCtxDeadlineOnFull(t *testing.T) {
	c, err := NewChan[int](2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Handle()
	if err != nil {
		t.Fatal(err)
	}
	h.Send(1)
	h.Send(2) // full
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := h.SendCtx(ctx, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SendCtx on full = %v", err)
	}
	// The timed-out value must not have been buffered.
	if v, _ := h.Recv(); v != 1 {
		t.Fatalf("got %d", v)
	}
	if v, _ := h.Recv(); v != 2 {
		t.Fatalf("got %d", v)
	}
	if _, ok, _ := h.TryRecv(); ok {
		t.Fatal("timed-out send left a value behind")
	}
}

func TestChanRecvCtxCancelOnEmpty(t *testing.T) {
	c, err := NewChan[int](4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Handle()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the receiver has verifiably parked (with a
		// bounded fallback — RecvCtx must return Canceled either way),
		// so the cancel-while-parked path is what actually runs rather
		// than whatever a fixed sleep happens to race against.
		deadline := time.Now().Add(5 * time.Second)
		for c.notEmpty.Waiters() == 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	if _, err := h.RecvCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecvCtx on empty = %v", err)
	}
}

func TestChanBlockedSendUnblockedByRecv(t *testing.T) {
	c, err := NewChan[int](2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := c.Handle()
	hr, _ := c.Handle()
	hs.Send(1)
	hs.Send(2)
	done := make(chan error, 1)
	go func() { done <- hs.Send(3) }()
	// Let the sender park, then free a slot.
	waitParked(t, &c.notFull)
	if v, err := hr.Recv(); err != nil || v != 1 {
		t.Fatalf("Recv = %v, %v", v, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Send = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked sender never woke after a slot freed")
	}
}

func TestChanCloseUnblocksParkedSenderAndReceiver(t *testing.T) {
	c, err := NewChan[int](2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := c.Handle()
	hr, _ := c.Handle()
	hs.Send(1)
	hs.Send(2) // full
	sendErr := make(chan error, 1)
	recvErr := make(chan error, 1)
	go func() { sendErr <- hs.Send(3) }()
	waitParked(t, &c.notFull)
	// Park a receiver on a second chan to cover the empty side.
	c2, _ := NewChan[int](2, 2)
	h2, _ := c2.Handle()
	go func() { _, err := h2.Recv(); recvErr <- err }()
	waitParked(t, &c2.notEmpty)
	c.Close()
	c2.Close()
	for name, ch := range map[string]chan error{"send": sendErr, "recv": recvErr} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked %s after Close = %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("parked %s never woke after Close", name)
		}
	}
	_ = hr
}

// waitParked spins until exactly one waiter is registered at p —
// i.e. the goroutine under test has actually parked (not just not
// run yet).
func waitParked(t *testing.T, p interface{ Waiters() int }) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine never parked")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestChanWakeupLatency asserts the acceptance bound: a parked Recv
// wakes in bounded time after Send — microseconds in practice, and
// far under the generous CI bound here — with no spin-polling in the
// facade (the receiver is verifiably parked before the send).
func TestChanWakeupLatency(t *testing.T) {
	c, err := NewChan[uint64](8, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := c.Handle()
	hr, _ := c.Handle()
	const bound = 500 * time.Millisecond
	for i := 0; i < 10; i++ {
		recvAt := make(chan time.Time, 1)
		go func() {
			if _, err := hr.Recv(); err != nil {
				t.Error(err)
			}
			recvAt <- time.Now()
		}()
		waitParked(t, &c.notEmpty)
		start := time.Now()
		if err := hs.Send(uint64(i)); err != nil {
			t.Fatal(err)
		}
		lat := (<-recvAt).Sub(start)
		if lat > bound {
			t.Fatalf("sample %d: parked Recv took %v to wake (bound %v)", i, lat, bound)
		}
	}
}

// TestChanCloseCancelRace is the dedicated close/cancel race check:
// Close fires while N senders (half with expiring contexts) and M
// receivers (some with expiring contexts) are in flight. Accounting
// must balance exactly — every value whose Send returned nil is
// received exactly once, and no value whose Send errored is ever
// seen. Run with -race.
func TestChanCloseCancelRace(t *testing.T) {
	const (
		senders   = 4
		receivers = 4
	)
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[uint64](64, senders+receivers+1, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg       sync.WaitGroup
				mu       sync.Mutex
				sent     = map[uint64]int{}
				received = map[uint64]int{}
				sends    atomic.Uint64
			)
			for s := 0; s < senders; s++ {
				h, err := c.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(id uint64, h *ChanHandle[uint64], withCtx bool) {
					defer wg.Done()
					ok := make([]uint64, 0, 1024)
					defer func() {
						mu.Lock()
						for _, v := range ok {
							sent[v]++
						}
						mu.Unlock()
					}()
					for seq := uint64(0); ; seq++ {
						v := id<<32 | seq
						var err error
						if withCtx {
							ctx, cancel := context.WithTimeout(context.Background(), time.Duration(50+seq%200)*time.Microsecond)
							err = h.SendCtx(ctx, v)
							cancel()
						} else {
							err = h.Send(v)
						}
						switch {
						case err == nil:
							ok = append(ok, v)
							sends.Add(1)
						case errors.Is(err, ErrClosed):
							return
						case errors.Is(err, context.DeadlineExceeded):
							// Not sent; try the next sequence number.
						default:
							t.Errorf("sender %d: %v", id, err)
							return
						}
					}
				}(uint64(s), h, s%2 == 1)
			}
			for r := 0; r < receivers; r++ {
				h, err := c.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				// Receivers 0 and 1 drain unconditionally; the rest
				// use short contexts and retry, so cancelled waits
				// are exercised without abandoning the drain.
				go func(h *ChanHandle[uint64], withCtx bool) {
					defer wg.Done()
					got := make([]uint64, 0, 1024)
					defer func() {
						mu.Lock()
						for _, v := range got {
							received[v]++
						}
						mu.Unlock()
					}()
					for {
						var v uint64
						var err error
						if withCtx {
							ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
							v, err = h.RecvCtx(ctx)
							cancel()
						} else {
							v, err = h.Recv()
						}
						switch {
						case err == nil:
							got = append(got, v)
						case errors.Is(err, ErrClosed):
							return
						case errors.Is(err, context.DeadlineExceeded):
							// Empty for now; keep draining.
						default:
							t.Errorf("receiver: %v", err)
							return
						}
					}
				}(h, r >= 2)
			}
			// Close only after the mixed workload has verifiably moved
			// values through the queue (bounded fallback). A fixed
			// wall-clock sleep can close the queue before the race it
			// exists to exercise even starts on a loaded runner.
			deadline := time.Now().Add(5 * time.Second)
			for sends.Load() < 1000 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			if len(sent) != len(received) {
				t.Fatalf("sent %d distinct values, received %d", len(sent), len(received))
			}
			for v, n := range sent {
				if n != 1 {
					t.Fatalf("value %#x sent %d times", v, n)
				}
				if received[v] != 1 {
					t.Fatalf("value %#x sent once, received %d times (lost or duplicated)", v, received[v])
				}
			}
		})
	}
}

func TestChanSCQBackendHasNoCensus(t *testing.T) {
	c, err := NewChan[int](8, 1, WithBackend(BackendSCQ))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // far beyond maxThreads
		if _, err := c.Handle(); err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
	}
}

func TestChanBackendString(t *testing.T) {
	for b, want := range map[Backend]string{BackendWCQ: "wCQ", BackendSCQ: "SCQ", BackendSharded: "Sharded", BackendUnbounded: "Unbounded", BackendShardedUnbounded: "ShardedUnbounded", Backend(99): "?"} {
		if got := b.String(); got != want {
			t.Fatalf("Backend(%d).String() = %q, want %q", b, got, want)
		}
	}
}

func TestChanInvalidConstruction(t *testing.T) {
	if _, err := NewChan[int](3, 2); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := NewChan[int](8, 2, WithBackend(Backend(99))); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func ExampleChan() {
	c, _ := NewChan[string](8, 2)
	prod, _ := c.Handle()
	cons, _ := c.Handle()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, err := cons.Recv() // parks while empty, drains after Close
			if err != nil {
				return // ErrClosed: closed and drained
			}
			fmt.Println(v)
		}
	}()
	prod.Send("hello")
	prod.Send("world")
	c.Close()
	<-done
	// Output:
	// hello
	// world
}

func TestChanUnboundedRejectsZeroCapacity(t *testing.T) {
	// Every backend enforces the capacity contract; the unbounded one
	// must not silently substitute its default ring size for a zero.
	if _, err := NewChan[int](0, 2, WithBackend(BackendShardedUnbounded)); err == nil {
		t.Fatal("NewChan(0) accepted with the sharded-unbounded backend")
	}
	if _, err := NewChan[int](0, 2, WithBackend(BackendUnbounded)); err == nil {
		t.Fatal("capacity 0 accepted by the unbounded backend")
	}
}

func TestChanShardedRejectsUnboundedShardsOption(t *testing.T) {
	// WithUnboundedShards would silently void the bounded backend's
	// backpressure; the unbounded-sharded Chan is its own backend.
	if _, err := NewChan[int](16, 2, WithBackend(BackendSharded), WithUnboundedShards(2)); err == nil {
		t.Fatal("BackendSharded accepted WithUnboundedShards")
	}
}
