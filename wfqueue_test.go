package wfqueue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueueBasics(t *testing.T) {
	q, err := New[string](8, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for _, s := range []string{"a", "b", "c"} {
		if !h.Enqueue(s) {
			t.Fatalf("enqueue %q failed", s)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%q,%v), want %q", v, ok, want)
		}
	}
	if q.Cap() != 8 || q.Footprint() == 0 {
		t.Fatalf("Cap=%d Footprint=%d", q.Cap(), q.Footprint())
	}
}

func TestQueueFull(t *testing.T) {
	q, _ := New[int](4, 1)
	h, _ := q.Handle()
	for i := 0; i < 4; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("full at %d", i)
		}
	}
	if h.Enqueue(4) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
}

func TestHandleCensus(t *testing.T) {
	q, _ := New[int](4, 1)
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err == nil {
		t.Fatal("census exceeded without error")
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := New[int](3, 1); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := New[int](4, 0); err == nil {
		t.Fatal("zero maxThreads accepted")
	}
	// Options must be accepted and still yield a working queue.
	q, err := New[int](8, 2, WithEmulatedFAA(), WithPatience(1, 1), WithHelpDelay(1))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Handle()
	h.Enqueue(7)
	if v, ok := h.Dequeue(); !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestQueueConcurrent(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		per       = 5000
	)
	q, _ := New[uint64](128, producers+consumers)
	var wg sync.WaitGroup
	var got atomic.Int64
	seen := make([]atomic.Int32, producers*per)
	for p := 0; p < producers; p++ {
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle[uint64]) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(p*per + i)
				for !h.Enqueue(v) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	for c := 0; c < consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle[uint64]) {
			defer wg.Done()
			for got.Load() < producers*per {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				seen[v].Add(1)
				got.Add(1)
			}
		}(h)
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d delivered %d times", i, n)
		}
	}
}

func TestRingAsIndexPool(t *testing.T) {
	// The DPDK-style pattern: a full ring is a free-index allocator.
	pool, err := NewRing(16, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := pool.Handle()
	if err != nil {
		t.Fatal(err)
	}
	used := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		idx, ok := h.Dequeue()
		if !ok {
			t.Fatalf("pool exhausted at %d", i)
		}
		if idx >= 16 || used[idx] {
			t.Fatalf("bad index %d", idx)
		}
		used[idx] = true
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("over-allocation")
	}
	h.Enqueue(3) // free one
	idx, ok := h.Dequeue()
	if !ok || idx != 3 {
		t.Fatalf("recycled (%d,%v), want (3,true)", idx, ok)
	}
}

func TestLockFreeVariant(t *testing.T) {
	q, err := NewLockFree[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("full at %d", i)
		}
	}
	if q.Enqueue(9) {
		t.Fatal("overflow accepted")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if q.Cap() != 8 {
		t.Fatal("cap")
	}
}

func TestGenericPayloads(t *testing.T) {
	type job struct {
		id   int
		name string
	}
	q, _ := New[*job](4, 1)
	h, _ := q.Handle()
	h.Enqueue(&job{id: 1, name: "x"})
	v, ok := h.Dequeue()
	if !ok || v.id != 1 || v.name != "x" {
		t.Fatalf("got %+v", v)
	}
}
