package wfqueue

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueueBasics(t *testing.T) {
	q, err := New[string](8, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for _, s := range []string{"a", "b", "c"} {
		if !h.Enqueue(s) {
			t.Fatalf("enqueue %q failed", s)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%q,%v), want %q", v, ok, want)
		}
	}
	if q.Cap() != 8 || q.Footprint() == 0 {
		t.Fatalf("Cap=%d Footprint=%d", q.Cap(), q.Footprint())
	}
}

func TestQueueFull(t *testing.T) {
	q, _ := New[int](4, 1)
	h, _ := q.Handle()
	for i := 0; i < 4; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("full at %d", i)
		}
	}
	if h.Enqueue(4) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
}

func TestHandleCensus(t *testing.T) {
	q, _ := New[int](4, 1)
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err == nil {
		t.Fatal("census exceeded without error")
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := New[int](3, 1); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	if _, err := New[int](4, 0); err == nil {
		t.Fatal("zero maxThreads accepted")
	}
	// Options must be accepted and still yield a working queue.
	q, err := New[int](8, 2, WithEmulatedFAA(), WithPatience(1, 1), WithHelpDelay(1))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Handle()
	h.Enqueue(7)
	if v, ok := h.Dequeue(); !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestQueueConcurrent(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		per       = 5000
	)
	q, _ := New[uint64](128, producers+consumers)
	var wg sync.WaitGroup
	var got atomic.Int64
	seen := make([]atomic.Int32, producers*per)
	for p := 0; p < producers; p++ {
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle[uint64]) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(p*per + i)
				for !h.Enqueue(v) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	for c := 0; c < consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle[uint64]) {
			defer wg.Done()
			for got.Load() < producers*per {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				seen[v].Add(1)
				got.Add(1)
			}
		}(h)
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d delivered %d times", i, n)
		}
	}
}

func TestRingAsIndexPool(t *testing.T) {
	// The DPDK-style pattern: a full ring is a free-index allocator.
	pool, err := NewRing(16, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := pool.Handle()
	if err != nil {
		t.Fatal(err)
	}
	used := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		idx, ok := h.Dequeue()
		if !ok {
			t.Fatalf("pool exhausted at %d", i)
		}
		if idx >= 16 || used[idx] {
			t.Fatalf("bad index %d", idx)
		}
		used[idx] = true
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("over-allocation")
	}
	h.Enqueue(3) // free one
	idx, ok := h.Dequeue()
	if !ok || idx != 3 {
		t.Fatalf("recycled (%d,%v), want (3,true)", idx, ok)
	}
}

func TestLockFreeVariant(t *testing.T) {
	q, err := NewLockFree[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("full at %d", i)
		}
	}
	if q.Enqueue(9) {
		t.Fatal("overflow accepted")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if q.Cap() != 8 {
		t.Fatal("cap")
	}
}

func TestConstructorValidation(t *testing.T) {
	// The documented contract — capacity a power of two >= 2,
	// maxThreads >= 1 — must fail fast with a descriptive error at the
	// public boundary.
	bad := []struct {
		name     string
		capacity uint64
		threads  int
	}{
		{"zero capacity", 0, 2},
		{"capacity one", 1, 2},
		{"non-power-of-two capacity", 24, 2},
		{"zero threads", 8, 0},
		{"negative threads", 8, -3},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New[int](c.capacity, c.threads); err == nil {
				t.Errorf("New(%d, %d) accepted", c.capacity, c.threads)
			}
			if _, err := NewRing(c.capacity, c.threads, false); err == nil {
				t.Errorf("NewRing(%d, %d) accepted", c.capacity, c.threads)
			}
			if _, err := NewSharded[int](c.capacity, c.threads); err == nil {
				t.Errorf("NewSharded(%d, %d) accepted", c.capacity, c.threads)
			}
		})
	}
	if _, err := NewLockFree[int](24); err == nil {
		t.Error("NewLockFree(24) accepted a non-power-of-two capacity")
	}
	if _, err := NewSharded[int](64, 2, WithShards(64)); err == nil {
		t.Error("NewSharded with per-shard capacity 1 accepted")
	}
	// Error text must name the violated constraint.
	_, err := New[int](24, 2)
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("unhelpful error: %v", err)
	}
	_, err = New[int](8, 0)
	if err == nil || !strings.Contains(err.Error(), "maxThreads") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestShardedQueue(t *testing.T) {
	q, err := NewSharded[string](64, 8, WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 8 || q.Cap() != 64 || q.Footprint() == 0 {
		t.Fatalf("Shards=%d Cap=%d Footprint=%d", q.Shards(), q.Cap(), q.Footprint())
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	// One handle's values come back in strict FIFO order.
	for _, s := range []string{"a", "b", "c"} {
		if !h.Enqueue(s) {
			t.Fatalf("enqueue %q failed", s)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%q,%v), want %q", v, ok, want)
		}
	}
	// Batch round trip.
	in := []string{"x", "y", "z"}
	if n := h.EnqueueBatch(in); n != 3 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]string, 4)
	if n := h.DequeueBatch(out); n != 3 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i, want := range in {
		if out[i] != want {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], want)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
}

func TestShardedCrossHandleVisibility(t *testing.T) {
	q, err := NewSharded[int](32, 4, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	producer, _ := q.Handle()
	consumer, _ := q.Handle()
	producer.Enqueue(7)
	v, ok := consumer.Dequeue()
	if !ok || v != 7 {
		t.Fatalf("cross-handle dequeue got (%d,%v), want 7", v, ok)
	}
}

func TestGenericPayloads(t *testing.T) {
	type job struct {
		id   int
		name string
	}
	q, _ := New[*job](4, 1)
	h, _ := q.Handle()
	h.Enqueue(&job{id: 1, name: "x"})
	v, ok := h.Dequeue()
	if !ok || v.id != 1 || v.name != "x" {
		t.Fatalf("got %+v", v)
	}
}
