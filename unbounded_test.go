package wfqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnboundedBasicsBothKinds(t *testing.T) {
	for _, k := range []RingKind{RingWCQ, RingSCQ} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			q, err := NewUnbounded[string](4, WithRingKind(k), WithRingCapacity(4))
			if err != nil {
				t.Fatal(err)
			}
			if q.RingCap() != 4 {
				t.Fatalf("RingCap() = %d", q.RingCap())
			}
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			// Far beyond one ring: the queue must grow.
			for i := 0; i < 100; i++ {
				h.Enqueue("v")
			}
			if q.Rings() < 10 {
				t.Fatalf("Rings() = %d after 100 values in cap-4 rings", q.Rings())
			}
			for i := 0; i < 100; i++ {
				if _, ok := h.Dequeue(); !ok {
					t.Fatalf("missing value %d", i)
				}
			}
			if _, ok := h.Dequeue(); ok {
				t.Fatal("phantom value")
			}
		})
	}
}

func TestUnboundedConstructorValidation(t *testing.T) {
	if _, err := NewUnbounded[int](0); err == nil {
		t.Fatal("maxThreads 0 accepted")
	}
	if _, err := NewUnbounded[int](4, WithRingCapacity(3)); err == nil {
		t.Fatal("non-power-of-two ring capacity accepted")
	}
	if _, err := NewUnbounded[int](4, WithRingKind(RingKind(99))); err == nil {
		t.Fatal("unknown ring kind accepted")
	}
}

func TestUnboundedHandleCensusWCQ(t *testing.T) {
	q, err := NewUnbounded[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err == nil {
		t.Fatal("third handle accepted with maxThreads 2 (wCQ census)")
	}
	// The SCQ kind has no census.
	qs, err := NewUnbounded[int](1, WithRingKind(RingSCQ))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := qs.Handle(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnboundedFootprintShrinksAfterBurst(t *testing.T) {
	// The ring pool must cap retained memory once a burst drains: the
	// post-drain footprint is a small multiple of one ring, not the
	// burst peak.
	q, err := NewUnbounded[uint64](2, WithRingCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	rest := q.Footprint() // one ring at rest
	for i := uint64(0); i < 4096; i++ {
		h.Enqueue(i)
	}
	peak := q.Footprint()
	if peak < 10*rest {
		t.Fatalf("peak footprint %d did not grow over rest %d", peak, rest)
	}
	for i := uint64(0); i < 4096; i++ {
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("missing value %d", i)
		}
	}
	// 1 live ring + the bounded recycling pool (+1 slack for an
	// in-flight straggler ring).
	if got := q.Footprint(); got > 6*rest {
		t.Fatalf("retained %d B after drain (rest %d B): pool does not cap memory", got, rest)
	}
}

func TestChanUnboundedSendNeverBlocks(t *testing.T) {
	c, err := NewChan[int](4, 2, WithBackend(BackendUnbounded))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 0 {
		t.Fatalf("Cap() = %d, want 0 (unbounded)", c.Cap())
	}
	h, err := c.Handle()
	if err != nil {
		t.Fatal(err)
	}
	// Far beyond the ring size, on one goroutine with no receiver: a
	// bounded backend would park forever here.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if err := h.Send(i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("unbounded Send blocked")
	}
	for i := 0; i < 1000; i++ {
		v, err := h.Recv()
		if err != nil || v != i {
			t.Fatalf("Recv %d = %v, %v", i, v, err)
		}
	}
}

func TestChanUnboundedCloseDrainRace(t *testing.T) {
	// The job that caught two seed bugs in PR 2, pointed at the
	// unbounded backend: concurrent senders (some with expiring
	// contexts), receivers, and a Close racing the in-flight sends;
	// every Send that reported success must be received exactly once,
	// and every receiver must see ErrClosed eventually. Run with
	// -race -cpu 2,4.
	const (
		senders   = 3
		receivers = 3
		perSender = 2000
	)
	c, err := NewChan[uint64](8, senders+receivers, WithBackend(BackendUnbounded))
	if err != nil {
		t.Fatal(err)
	}

	var sent, received atomic.Int64
	delivered := make([]atomic.Int32, senders*perSender)
	var sg, rg sync.WaitGroup
	for s := 0; s < senders; s++ {
		h, err := c.Handle()
		if err != nil {
			t.Fatal(err)
		}
		sg.Add(1)
		go func(s int, h *ChanHandle[uint64]) {
			defer sg.Done()
			for i := 0; i < perSender; i++ {
				var err error
				if i%7 == 3 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					err = h.SendCtx(ctx, uint64(s*perSender+i))
					cancel()
				} else {
					err = h.Send(uint64(s*perSender + i))
				}
				switch {
				case err == nil:
					sent.Add(1)
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, context.DeadlineExceeded):
					// Unbounded sends cannot block on capacity, so the
					// deadline can only fire before the attempt; either
					// way the value was not buffered.
				default:
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s, h)
	}
	for r := 0; r < receivers; r++ {
		h, err := c.Handle()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func(h *ChanHandle[uint64]) {
			defer rg.Done()
			for {
				v, err := h.Recv()
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("receiver: %v", err)
					}
					return
				}
				if delivered[v].Add(1) != 1 {
					t.Errorf("value %d delivered twice", v)
				}
				received.Add(1)
			}
		}(h)
	}

	// Close while senders are (probably) still in flight: the drain
	// contract must hand every successfully sent value to a receiver
	// before any of them sees ErrClosed.
	time.Sleep(2 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	sg.Wait()
	rg.Wait()
	if sent.Load() != received.Load() {
		t.Fatalf("sent %d, received %d: close lost buffered values", sent.Load(), received.Load())
	}
}
