// Chan: a worker pool with graceful shutdown on the blocking
// wfqueue.Chan facade.
//
// A dispatcher Sends jobs into a bounded Chan (parking when the
// workers fall behind — natural backpressure, no spinning), workers
// Recv jobs (parking when idle) and Send results into a second Chan,
// and shutdown is a Close cascade: closing the job channel drains it,
// each worker exits on ErrClosed, and the collector finishes once the
// result channel closes behind the last worker. A straggler using
// RecvCtx shows deadline-bounded waits on the same queue.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	wfqueue "repro"
)

type job struct {
	id    int
	input uint64
}

type result struct {
	id     int
	output uint64
}

const (
	workers = 4
	jobs    = 10_000
	buffer  = 256
)

func main() {
	jobq, err := wfqueue.NewChan[job](buffer, workers+2)
	if err != nil {
		panic(err)
	}
	resq, err := wfqueue.NewChan[result](buffer, workers+2)
	if err != nil {
		panic(err)
	}

	// Workers: Recv parks while idle, drains after Close, and reports
	// ErrClosed when the job queue is closed and empty.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		jh, err1 := jobq.Handle()
		rh, err2 := resq.Handle()
		if err1 != nil || err2 != nil {
			panic("handle registration failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, err := jh.Recv()
				if err != nil { // ErrClosed: shutdown
					return
				}
				if err := rh.Send(result{id: j.id, output: j.input * j.input}); err != nil {
					return
				}
			}
		}()
	}

	// Collector: counts results until the result channel closes.
	collected := make(chan int, 1)
	rh, err := resq.Handle()
	if err != nil {
		panic(err)
	}
	go func() {
		n := 0
		var sum uint64
		for {
			r, err := rh.Recv()
			if err != nil {
				fmt.Printf("collector: %d results (checksum %d)\n", n, sum)
				collected <- n
				return
			}
			n++
			sum += r.output
		}
	}()

	// Dispatch, then shut down gracefully: close jobs, wait for the
	// workers to drain them, close results behind the last worker.
	jh, err := jobq.Handle()
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := jh.Send(job{id: i, input: uint64(i)}); err != nil {
			panic(err)
		}
	}
	jobq.Close()
	wg.Wait()
	resq.Close()
	n := <-collected
	fmt.Printf("%d jobs through %d workers in %v (graceful close, nothing lost: %v)\n",
		jobs, workers, time.Since(start).Round(time.Millisecond), n == jobs)

	// Deadline-bounded receive on a drained, closed queue family:
	// RecvCtx returns ErrClosed immediately rather than waiting out
	// the context — closed wins over "still empty".
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := rh.RecvCtx(ctx); errors.Is(err, wfqueue.ErrClosed) {
		fmt.Println("post-shutdown RecvCtx: ErrClosed (no deadline wait)")
	}
}
