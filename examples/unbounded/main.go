// Unbounded: a burst absorber on wfqueue.NewUnbounded and the
// never-blocking send of the unbounded Chan backend.
//
// A front-end goroutine receives traffic that arrives in bursts far
// larger than any sensible fixed buffer. With a bounded queue it must
// choose between shedding load and blocking the producer; the
// unbounded queue absorbs the whole burst instead, growing in
// ring-sized steps, and gives the memory back once the slow consumer
// catches up — the footprint is printed after each phase so the
// grow/shrink cycle (and the recycling pool's cap on retained rings)
// is visible. The same shape through the blocking facade is
// NewChan(..., WithBackend(BackendUnbounded)): Send never parks, only
// Recv does.
package main

import (
	"fmt"

	wfqueue "repro"
)

const (
	ringCap   = 1 << 10 // growth granularity: 1024 values per ring
	burstSize = 200_000
	bursts    = 3
)

func main() {
	q, err := wfqueue.NewUnbounded[uint64](2, wfqueue.WithRingCapacity(ringCap))
	if err != nil {
		panic(err)
	}
	producer, err := q.Handle()
	if err != nil {
		panic(err)
	}
	consumer, err := q.Handle()
	if err != nil {
		panic(err)
	}

	fmt.Printf("at rest:    %7d B in %d ring(s)\n", q.Footprint(), q.Rings())
	for b := 0; b < bursts; b++ {
		// The burst: 200k values land without a single "full" and
		// without blocking the producer.
		for i := uint64(0); i < burstSize; i++ {
			producer.Enqueue(uint64(b)<<32 | i)
		}
		peak := q.Footprint()
		fmt.Printf("burst %d:   %8d B in %d rings (%.1f MB peak)\n",
			b, peak, q.Rings(), float64(peak)/(1<<20))

		// The slow consumer catches up; drained rings return to the
		// bounded pool, so the next burst reuses them instead of
		// allocating.
		for i := uint64(0); i < burstSize; i++ {
			v, ok := consumer.Dequeue()
			if !ok || v != uint64(b)<<32|i {
				panic(fmt.Sprintf("burst %d: lost or reordered value at %d", b, i))
			}
		}
		fmt.Printf("drained %d: %8d B in %d ring(s)\n", b, q.Footprint(), q.Rings())
	}
	fmt.Println("all bursts absorbed and drained, FIFO intact")
}
