// Quickstart: a minimal multi-producer multi-consumer run over the
// wait-free queue — the 60-second tour of the public API.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	wfqueue "repro"
)

func main() {
	const (
		producers = 3
		consumers = 2
		perProd   = 10_000
	)
	// Capacity 1024, with room for every goroutine to register a
	// handle. The queue allocates everything up front and never again.
	q, err := wfqueue.New[int](1024, producers+consumers)
	if err != nil {
		panic(err)
	}
	fmt.Printf("queue capacity %d, fixed footprint %d KiB\n", q.Cap(), q.Footprint()/1024)

	var wg sync.WaitGroup
	var sum atomic.Int64
	var received atomic.Int64

	for p := 0; p < producers; p++ {
		h, err := q.Handle() // one handle per goroutine
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !h.Enqueue(p*perProd + i) {
					runtime.Gosched() // full: wait for consumers
				}
			}
		}(p)
	}

	total := int64(producers * perProd)
	for c := 0; c < consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for received.Load() < total {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				sum.Add(int64(v))
				received.Add(1)
			}
		}()
	}

	wg.Wait()
	want := total * (total - 1) / 2
	fmt.Printf("moved %d values, checksum %d (want %d) — %v\n",
		received.Load(), sum.Load(), want, sum.Load() == want)
}
