// Channel: a buffered-channel-shaped wrapper over the wait-free queue,
// compared against Go's built-in channel on a pairwise workload.
//
// The paper's introduction calls out language runtimes — "a number of
// languages, e.g., Vlang, Go, can benefit from having a fast queue for
// their concurrency and synchronization constructs. For example, Go
// needs a queue for its buffered channel implementation." This example
// shows the shape such an integration could take (non-blocking
// TrySend/TryRecv with the queue as the buffer) and measures both.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	wfqueue "repro"
)

// Chan is a minimal buffered-channel lookalike with non-blocking
// semantics backed by the wait-free queue. Blocking Send/Recv spin
// with Gosched here to keep the comparison self-contained; the
// library's real blocking facade (wfqueue.Chan, examples/chan) parks
// goroutines instead.
type Chan[T any] struct {
	q *wfqueue.Queue[T]
}

// ChanHandle is one goroutine's capability to use a Chan.
type ChanHandle[T any] struct {
	h *wfqueue.Handle[T]
}

// NewChan builds a channel-shaped wrapper buffering up to `buffer`
// values for at most maxGoroutines concurrent users.
func NewChan[T any](buffer uint64, maxGoroutines int) (*Chan[T], error) {
	q, err := wfqueue.New[T](buffer, maxGoroutines)
	if err != nil {
		return nil, err
	}
	return &Chan[T]{q: q}, nil
}

// Handle registers the calling goroutine.
func (c *Chan[T]) Handle() (*ChanHandle[T], error) {
	h, err := c.q.Handle()
	if err != nil {
		return nil, err
	}
	return &ChanHandle[T]{h: h}, nil
}

// TrySend is the non-blocking send (select with default).
func (h *ChanHandle[T]) TrySend(v T) bool { return h.h.Enqueue(v) }

// TryRecv is the non-blocking receive.
func (h *ChanHandle[T]) TryRecv() (T, bool) { return h.h.Dequeue() }

// Send blocks (spinning) until the value is buffered.
func (h *ChanHandle[T]) Send(v T) {
	for !h.h.Enqueue(v) {
		runtime.Gosched()
	}
}

// Recv blocks (spinning) until a value arrives.
func (h *ChanHandle[T]) Recv() T {
	for {
		if v, ok := h.h.Dequeue(); ok {
			return v
		}
		runtime.Gosched()
	}
}

const (
	buffer  = 1024
	total   = 200_000
	workers = 4
)

func run(name string, send func(uint64), recv func() uint64) {
	var wg sync.WaitGroup
	start := time.Now()
	per := total / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				send(uint64(i))
				recv()
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("%-18s %8.2f Mops/s (%v for %d ops)\n",
		name, float64(2*total)/el.Seconds()/1e6, el.Round(time.Millisecond), 2*total)
}

func main() {
	// wfqueue-backed channel.
	c, err := NewChan[uint64](buffer, workers)
	if err != nil {
		panic(err)
	}
	handles := make([]*ChanHandle[uint64], workers)
	for i := range handles {
		if handles[i], err = c.Handle(); err != nil {
			panic(err)
		}
	}
	var next int
	var mu sync.Mutex
	takeHandle := func() *ChanHandle[uint64] {
		mu.Lock()
		defer mu.Unlock()
		h := handles[next]
		next++
		return h
	}
	var wg sync.WaitGroup
	start := time.Now()
	per := total / workers
	for w := 0; w < workers; w++ {
		h := takeHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Send(uint64(i))
				h.Recv()
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("%-18s %8.2f Mops/s (%v for %d ops)\n",
		"wfqueue chan", float64(2*total)/el.Seconds()/1e6, el.Round(time.Millisecond), 2*total)

	// Built-in buffered channel, same workload.
	ch := make(chan uint64, buffer)
	run("go chan", func(v uint64) { ch <- v }, func() uint64 { return <-ch })

	fmt.Println("\nNote: the built-in channel parks goroutines (futex) while this")
	fmt.Println("wrapper spins; the interesting property is the wait-free bound on")
	fmt.Println("each TrySend/TryRecv, which a runtime integration would inherit.")
}
