// Sharded: a fan-in/fan-out event bus on the sharded wCQ composition.
//
// Several producer goroutines each publish a stream of events through
// their own handle; the handle's home-shard affinity means any one
// producer's events travel a single wait-free FIFO (so per-producer
// order survives), while different producers land on different shards
// and never contend on the same head/tail word. Consumers drain with
// work stealing — home shard first, then round-robin — using the
// batch API to move events in chunks of 64.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	wfqueue "repro"
)

const (
	producers   = 4
	consumers   = 2
	perProducer = 100_000
	batchSize   = 64
)

type event struct {
	producer int
	seq      int
}

func main() {
	bus, err := wfqueue.NewSharded[event](1<<12, producers+consumers, wfqueue.WithShards(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sharded bus: %d shards, capacity %d, footprint %d KiB\n",
		bus.Shards(), bus.Cap(), bus.Footprint()>>10)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h, err := bus.Handle()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]event, 0, batchSize)
			for seq := 0; seq < perProducer; {
				batch = batch[:0]
				for len(batch) < batchSize && seq+len(batch) < perProducer {
					batch = append(batch, event{producer: p, seq: seq + len(batch)})
				}
				sent := 0
				for sent < len(batch) {
					n := h.EnqueueBatch(batch[sent:])
					sent += n
					if n == 0 {
						runtime.Gosched() // home shard full: wait for consumers
					}
				}
				seq += len(batch)
			}
		}(p)
	}

	var consumed atomic.Int64
	var reordered atomic.Int64
	total := int64(producers * perProducer)
	for c := 0; c < consumers; c++ {
		h, err := bus.Handle()
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeq := make([]int, producers)
			for i := range lastSeq {
				lastSeq[i] = -1
			}
			out := make([]event, batchSize)
			for consumed.Load() < total {
				n := h.DequeueBatch(out)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for _, ev := range out[:n] {
					// Per-producer order must hold at every consumer.
					if ev.seq <= lastSeq[ev.producer] {
						reordered.Add(1)
					}
					lastSeq[ev.producer] = ev.seq
				}
				consumed.Add(int64(n))
			}
		}()
	}

	wg.Wait()
	fmt.Printf("moved %d events from %d producers to %d consumers, %d order violations\n",
		consumed.Load(), producers, consumers, reordered.Load())
	if reordered.Load() != 0 {
		panic("per-producer FIFO violated")
	}
}
