// Pipeline: a three-stage processing pipeline (parse → transform →
// aggregate) connected by bounded wait-free queues.
//
// This is the "user-space message passing and scheduling" scenario
// from the paper's introduction: stages exchange work items through
// queues whose operations are bounded in time (no stage can starve
// another by stalling mid-operation) and bounded in memory (natural
// backpressure instead of unbounded buffering).
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	wfqueue "repro"
)

type item struct {
	id    int
	value uint64
}

const (
	items     = 40_000
	stageCap  = 512
	stage1Par = 2 // parallel workers in the middle stage
)

func main() {
	// Stage boundaries: bounded queues give backpressure for free.
	q1, err := wfqueue.New[item](stageCap, 1+stage1Par)
	if err != nil {
		panic(err)
	}
	q2, err := wfqueue.New[item](stageCap, stage1Par+1)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	var processed atomic.Int64

	// Stage 1: source/parser.
	src, err := q1.Handle()
	if err != nil {
		panic(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			it := item{id: i, value: uint64(i)}
			for !src.Enqueue(it) {
				runtime.Gosched() // backpressure: stage 2 is busy
			}
		}
	}()

	// Stage 2: parallel transform workers.
	for w := 0; w < stage1Par; w++ {
		in, err1 := q1.Handle()
		out, err2 := q2.Handle()
		if err1 != nil || err2 != nil {
			panic("handle registration failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for processed.Load() < items {
				it, ok := in.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				it.value = it.value*2654435761 + 1 // the "transform"
				for !out.Enqueue(it) {
					runtime.Gosched()
				}
				processed.Add(1)
			}
		}()
	}

	// Stage 3: aggregator.
	sink, err := q2.Handle()
	if err != nil {
		panic(err)
	}
	var sum uint64
	var count int
	seen := make([]bool, items)
	for count < items {
		it, ok := sink.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		if seen[it.id] {
			panic(fmt.Sprintf("item %d delivered twice", it.id))
		}
		seen[it.id] = true
		sum += it.value
		count++
	}
	wg.Wait()

	fmt.Printf("pipeline processed %d items across %d stages (digest %x)\n",
		count, 3, sum)
	fmt.Printf("stage queues: cap %d each, fixed footprint %d KiB total\n",
		stageCap, (q1.Footprint()+q2.Footprint())/1024)
}
