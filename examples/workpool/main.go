// Workpool: the DPDK/SPDK-style fixed buffer pool from the paper's
// introduction, built on a wait-free index Ring (the aq/fq pattern of
// Figure 2).
//
// A pool of fixed-size "frame" buffers is shared by several goroutines
// that allocate frames, fill them, hand them to a processing stage
// through a second ring, and recycle them — with zero heap allocation
// in steady state and wait-free progress for every participant, which
// is why rings like this sit at the heart of packet I/O frameworks.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	wfqueue "repro"
)

const (
	frames    = 256 // pool size
	frameSize = 1500
	packets   = 50_000
	rxThreads = 2
	txThreads = 2
)

func main() {
	// Backing store for all frames, allocated once.
	buffers := make([][frameSize]byte, frames)

	// freeq hands out free frame indices; workq carries filled frames
	// to the TX stage. Both are wait-free rings.
	freeq, err := wfqueue.NewRing(frames, rxThreads+txThreads, true)
	if err != nil {
		panic(err)
	}
	workq, err := wfqueue.NewRing(frames, rxThreads+txThreads, false)
	if err != nil {
		panic(err)
	}

	var produced, transmitted, bytes atomic.Int64
	var wg sync.WaitGroup

	for r := 0; r < rxThreads; r++ {
		fh, err1 := freeq.Handle()
		wh, err2 := workq.Handle()
		if err1 != nil || err2 != nil {
			panic("handle registration failed")
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for produced.Add(1) <= packets {
				// Allocate a frame (wait-free dequeue from the pool).
				var idx uint64
				for {
					var ok bool
					if idx, ok = fh.Dequeue(); ok {
						break
					}
					runtime.Gosched() // pool exhausted: TX will recycle
				}
				// "Receive" a packet into the frame.
				buffers[idx][0] = byte(r)
				buffers[idx][1] = byte(idx)
				// Hand it to the TX stage.
				wh.Enqueue(idx)
			}
		}(r)
	}

	done := make(chan struct{})
	for t := 0; t < txThreads; t++ {
		fh, err1 := freeq.Handle()
		wh, err2 := workq.Handle()
		if err1 != nil || err2 != nil {
			panic("handle registration failed")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := wh.Dequeue()
				if !ok {
					select {
					case <-done:
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				// "Transmit" and recycle the frame.
				bytes.Add(int64(frameSize))
				transmitted.Add(1)
				fh.Enqueue(idx)
			}
		}()
	}

	// Wait for RX to finish, then drain and stop TX.
	for produced.Load() <= packets {
		runtime.Gosched()
	}
	for transmitted.Load() < packets {
		runtime.Gosched()
	}
	close(done)
	wg.Wait()

	fmt.Printf("transmitted %d frames (%d MB) through a %d-frame pool, zero steady-state allocation\n",
		transmitted.Load(), bytes.Load()>>20, frames)
}
