// Benchmark harness: one testing.B benchmark per figure of the wCQ
// paper's evaluation (Figs. 10a-12c), plus microbenchmarks of the
// public API. `go test -bench=Fig -benchmem` prints a compact series
// per figure; `cmd/wcqbench` produces the full tables.
package wfqueue_test

import (
	"fmt"
	"testing"

	wfqueue "repro"

	"repro/internal/harness"
	"repro/internal/queues"
)

// benchFigure drives a scaled-down version of one paper figure under
// the Go benchmark framework. Throughput (the paper's metric) is
// reported as the custom metric Mops/s per queue/thread combination.
func benchFigure(b *testing.B, id string) {
	f, err := harness.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Keep benchmark wall time sane on small hosts: truncate the sweep
	// and the per-point op count; cmd/wcqbench runs the full sweeps.
	threads := []int{1, 4}
	for _, name := range f.Queues {
		for _, th := range threads {
			b.Run(fmt.Sprintf("%s/threads=%d", name, th), func(b *testing.B) {
				cfg := queues.Config{Capacity: 1 << 12, MaxThreads: th + 1, Mode: f.Mode}
				pt := harness.RunPoint(name, cfg, f.Workload, harness.PointOpts{
					Threads: th,
					Ops:     max(b.N, 10_000),
					Reps:    1,
					Delays:  f.Delays,
					Memory:  f.Memory,
				})
				if pt.Err != nil {
					b.Skipf("unavailable: %v", pt.Err)
				}
				b.ReportMetric(pt.Mops.Mean, "Mops/s")
				if f.Memory {
					b.ReportMetric(pt.MemoryMB, "MB")
				}
			})
		}
	}
}

func BenchmarkFig10a_MemoryUsage(b *testing.B)      { benchFigure(b, "10a") }
func BenchmarkFig10b_MemoryThroughput(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFig11a_EmptyDequeue(b *testing.B)     { benchFigure(b, "11a") }
func BenchmarkFig11b_Pairwise(b *testing.B)         { benchFigure(b, "11b") }
func BenchmarkFig11c_Mixed5050(b *testing.B)        { benchFigure(b, "11c") }
func BenchmarkFig12a_EmptyDequeuePPC(b *testing.B)  { benchFigure(b, "12a") }
func BenchmarkFig12b_PairwisePPC(b *testing.B)      { benchFigure(b, "12b") }
func BenchmarkFig12c_Mixed5050PPC(b *testing.B)     { benchFigure(b, "12c") }
func BenchmarkFigS1_ShardedPairwise(b *testing.B)   { benchFigure(b, "s1") }
func BenchmarkFigS2_ShardedMixed5050(b *testing.B)  { benchFigure(b, "s2") }

// BenchmarkScaleOut pits a single wCQ ring against the sharded
// composition at high producer counts — the contention regime where
// the single fetch-and-add hot word becomes the bottleneck. Sub-runs
// sweep pairwise and 50/50 workloads at 8 and 16 threads, scalar and
// batched; Mops/s is the comparable metric.
func BenchmarkScaleOut(b *testing.B) {
	for _, w := range []harness.Workload{harness.Pairwise, harness.Mixed} {
		for _, th := range []int{8, 16} {
			for _, bench := range []struct {
				queue string
				batch int
			}{
				{"wCQ", 0},
				{"Sharded", 0},
				{"Sharded", 32},
			} {
				label := fmt.Sprintf("%s/%s/threads=%d", w, bench.queue, th)
				if bench.batch > 0 {
					label += fmt.Sprintf("/batch=%d", bench.batch)
				}
				b.Run(label, func(b *testing.B) {
					cfg := queues.Config{Capacity: 1 << 12, MaxThreads: th + 1}
					pt := harness.RunPoint(bench.queue, cfg, w, harness.PointOpts{
						Threads: th,
						Ops:     max(b.N, 200_000),
						Reps:    1,
						Batch:   bench.batch,
					})
					if pt.Err != nil {
						b.Fatal(pt.Err)
					}
					b.ReportMetric(pt.Mops.Mean, "Mops/s")
				})
			}
		}
	}
}

// --- Public API microbenchmarks ---

func BenchmarkWCQPairSequential(b *testing.B) {
	q, _ := wfqueue.New[uint64](1<<12, 2)
	h, _ := q.Handle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
}

func BenchmarkSCQPairSequential(b *testing.B) {
	q, _ := wfqueue.NewLockFree[uint64](1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
		q.Dequeue()
	}
}

func BenchmarkGoChannelPairSequential(b *testing.B) {
	// Reference point for the paper's motivation: Go buffered channels
	// are the language's built-in MPMC queue.
	ch := make(chan uint64, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch <- uint64(i)
		<-ch
	}
}

func BenchmarkShardedPairSequential(b *testing.B) {
	q, _ := wfqueue.NewSharded[uint64](1<<12, 2)
	h, _ := q.Handle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
}

func BenchmarkShardedBatchSequential(b *testing.B) {
	q, _ := wfqueue.NewSharded[uint64](1<<12, 2)
	h, _ := q.Handle()
	in := make([]uint64, 32)
	out := make([]uint64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(in) {
		h.EnqueueBatch(in)
		h.DequeueBatch(out)
	}
}

func BenchmarkWCQPairParallel(b *testing.B) {
	q, _ := wfqueue.New[uint64](1<<12, 64)
	b.RunParallel(func(pb *testing.PB) {
		h, err := q.Handle()
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			h.Enqueue(1)
			h.Dequeue()
		}
	})
}

func BenchmarkSCQPairParallel(b *testing.B) {
	q, _ := wfqueue.NewLockFree[uint64](1 << 12)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}

func BenchmarkShardedPairParallel(b *testing.B) {
	q, _ := wfqueue.NewSharded[uint64](1<<12, 64)
	b.RunParallel(func(pb *testing.PB) {
		h, err := q.Handle()
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			h.Enqueue(1)
			h.Dequeue()
		}
	})
}

func BenchmarkGoChannelPairParallel(b *testing.B) {
	ch := make(chan uint64, 1<<12)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ch <- 1
			<-ch
		}
	})
}

func BenchmarkWCQEmptyDequeue(b *testing.B) {
	q, _ := wfqueue.New[uint64](1<<12, 2)
	h, _ := q.Handle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Dequeue()
	}
}

func BenchmarkRingIndexPool(b *testing.B) {
	pool, _ := wfqueue.NewRing(1<<10, 2, true)
	h, _ := pool.Handle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _ := h.Dequeue()
		h.Enqueue(idx)
	}
}

// BenchmarkAblationPatience quantifies the fast-path/slow-path split
// (slow-path ablation): patience 1 forces the helped slow path often;
// the default 16/64 keeps it rare.
func BenchmarkAblationPatience(b *testing.B) {
	for _, pat := range []struct {
		name     string
		enq, deq int
	}{{"patience=1", 1, 1}, {"patience=default", 0, 0}} {
		b.Run(pat.name, func(b *testing.B) {
			var opts []wfqueue.Option
			if pat.enq > 0 {
				opts = append(opts, wfqueue.WithPatience(pat.enq, pat.deq))
			}
			q, _ := wfqueue.New[uint64](1<<10, 8, opts...)
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Handle()
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					h.Enqueue(1)
					h.Dequeue()
				}
			})
		})
	}
}

// BenchmarkAblationEmulatedFAA quantifies the native-vs-emulated F&A
// gap (the x86 vs PowerPC distinction of Figs. 11/12).
func BenchmarkAblationEmulatedFAA(b *testing.B) {
	for _, m := range []struct {
		name string
		opts []wfqueue.Option
	}{{"native", nil}, {"emulated", []wfqueue.Option{wfqueue.WithEmulatedFAA()}}} {
		b.Run(m.name, func(b *testing.B) {
			q, _ := wfqueue.New[uint64](1<<10, 8, m.opts...)
			b.RunParallel(func(pb *testing.PB) {
				h, err := q.Handle()
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					h.Enqueue(1)
					h.Dequeue()
				}
			})
		})
	}
}
