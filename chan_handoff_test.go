package wfqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestChanHandoffDeliversToParkedReceiver pins the receiver-side fast
// path on every backend: with a receiver verifiably parked on an empty
// Chan, Send must publish through the transfer cell (HandoffSend)
// rather than the ring, and the receiver gets the value.
func TestChanHandoffDeliversToParkedReceiver(t *testing.T) {
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[int](16, 2, WithBackend(b), WithMetrics(NewMetricsSink()))
			if err != nil {
				t.Fatal(err)
			}
			hs, _ := c.Handle()
			hr, _ := c.Handle()
			got := make(chan int, 1)
			go func() {
				v, err := hr.Recv()
				if err != nil {
					t.Error(err)
				}
				got <- v
			}()
			waitParked(t, &c.notEmpty)
			if err := hs.Send(41); err != nil {
				t.Fatal(err)
			}
			select {
			case v := <-got:
				if v != 41 {
					t.Fatalf("Recv = %d, want 41", v)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("parked receiver never woke")
			}
			snap := c.Stats()
			if n := snap.Counts[metrics.HandoffSend]; n != 1 {
				t.Fatalf("HandoffSend = %d, want 1 (value crossed the ring instead)", n)
			}
		})
	}
}

// TestChanHandoffSenderTakeover pins the symmetric path on the bounded
// single-ring backends: a Recv that frees a slot while a sender is
// parked completes the sender's pending enqueue on its behalf
// (HandoffRecv), preserving FIFO, and the woken sender returns without
// retrying. Arming happens at park-commit — a hair after registration —
// so the observing loop retries until a takeover actually lands.
func TestChanHandoffSenderTakeover(t *testing.T) {
	for _, b := range []Backend{BackendWCQ, BackendSCQ} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[int](2, 3, WithBackend(b), WithMetrics(NewMetricsSink()))
			if err != nil {
				t.Fatal(err)
			}
			hs, _ := c.Handle()
			hr, _ := c.Handle()
			deadline := time.Now().Add(10 * time.Second)
			for round := 0; ; round++ {
				base := round * 10
				if err := hs.Send(base + 1); err != nil {
					t.Fatal(err)
				}
				if err := hs.Send(base + 2); err != nil {
					t.Fatal(err)
				}
				done := make(chan error, 1)
				go func() { done <- hs.Send(base + 3) }()
				waitParked(t, &c.notFull)
				for i := 1; i <= 3; i++ {
					v, err := hr.Recv()
					if err != nil || v != base+i {
						t.Fatalf("round %d: Recv = %v, %v; want %d (FIFO broken)", round, v, err, base+i)
					}
				}
				if err := <-done; err != nil {
					t.Fatalf("round %d: parked Send = %v", round, err)
				}
				snap := c.Stats()
				if snap.Counts[metrics.HandoffRecv] > 0 {
					return // takeover landed and accounting above held
				}
				if time.Now().After(deadline) {
					t.Fatal("no sender takeover landed in any round")
				}
			}
		})
	}
}

// TestChanSendManyHandoffsToParkedReceivers pins the batch fast path:
// a SendMany arriving over k parked receivers satisfies up to k of
// them through their cells and rings the rest, with every value
// delivered exactly once.
func TestChanSendManyHandoffsToParkedReceivers(t *testing.T) {
	const parked, batch = 3, 5
	c, err := NewChan[int](16, parked+2, WithMetrics(NewMetricsSink()))
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := c.Handle()
	var mu sync.Mutex
	got := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		h, _ := c.Handle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := h.Recv()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[v]++
			mu.Unlock()
		}()
	}
	for c.notEmpty.Waiters() < parked {
		time.Sleep(50 * time.Microsecond)
	}
	vs := make([]int, batch)
	for i := range vs {
		vs[i] = 100 + i
	}
	n, err := hs.SendMany(vs)
	if err != nil || n != batch {
		t.Fatalf("SendMany = %d, %v", n, err)
	}
	wg.Wait()
	// The 3 parked receivers took 3 of the 5; the other 2 are ringed.
	hr, _ := c.Handle()
	for i := 0; i < batch-parked; i++ {
		v, err := hr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got[v]++
		mu.Unlock()
	}
	for i := range vs {
		if got[100+i] != 1 {
			t.Fatalf("value %d delivered %d times", 100+i, got[100+i])
		}
	}
	snap := c.Stats()
	if n := snap.Counts[metrics.HandoffSend]; n < parked {
		t.Fatalf("HandoffSend = %d, want >= %d", n, parked)
	}
}

// TestChanHandoffOffPinsRingPath is the A/B control: with
// WithHandoff(false) the facade must never attempt a handoff — no
// sends, no takeovers, not even misses — while the blocking protocol
// still works.
func TestChanHandoffOffPinsRingPath(t *testing.T) {
	c, err := NewChan[int](4, 2, WithHandoff(false), WithMetrics(NewMetricsSink()))
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := c.Handle()
	hr, _ := c.Handle()
	got := make(chan int, 1)
	go func() {
		v, _ := hr.Recv()
		got <- v
	}()
	waitParked(t, &c.notEmpty)
	if err := hs.Send(7); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 7 {
		t.Fatalf("Recv = %d", v)
	}
	snap := c.Stats()
	for _, ev := range []metrics.Event{metrics.HandoffSend, metrics.HandoffRecv, metrics.HandoffMiss} {
		if n := snap.Counts[ev]; n != 0 {
			t.Fatalf("event %d fired %d times with handoff off", ev, n)
		}
	}
}

// TestChanHandoffCloseCancelStorm is the handoff-focused close/cancel
// race: a receiver-heavy split on a small ring keeps the rendezvous
// path hot (most sends land in parked receivers' cells), senders mix
// plain and short-context sends, and Close fires mid-flight. Every
// value whose Send reported success — including those mid-handoff at
// close time — must be received exactly once. Run with -race.
func TestChanHandoffCloseCancelStorm(t *testing.T) {
	const (
		senders   = 2
		receivers = 6
	)
	for _, b := range backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c, err := NewChan[uint64](16, senders+receivers+1, WithBackend(b), WithMetrics(NewMetricsSink()))
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg       sync.WaitGroup
				mu       sync.Mutex
				sent     = map[uint64]int{}
				received = map[uint64]int{}
				sends    atomic.Uint64
			)
			for s := 0; s < senders; s++ {
				h, err := c.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(id uint64, h *ChanHandle[uint64], withCtx bool) {
					defer wg.Done()
					ok := make([]uint64, 0, 1024)
					defer func() {
						mu.Lock()
						for _, v := range ok {
							sent[v]++
						}
						mu.Unlock()
					}()
					for seq := uint64(0); ; seq++ {
						v := id<<32 | seq
						var err error
						if withCtx {
							ctx, cancel := context.WithTimeout(context.Background(), time.Duration(50+seq%200)*time.Microsecond)
							err = h.SendCtx(ctx, v)
							cancel()
						} else {
							err = h.Send(v)
						}
						switch {
						case err == nil:
							ok = append(ok, v)
							sends.Add(1)
						case errors.Is(err, ErrClosed):
							return
						case errors.Is(err, context.DeadlineExceeded):
							// Not sent; next sequence number.
						default:
							t.Errorf("sender %d: %v", id, err)
							return
						}
					}
				}(uint64(s), h, s%2 == 1)
			}
			for r := 0; r < receivers; r++ {
				h, err := c.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				// Half the receivers use short contexts, so cancellation
				// races the in-flight claims this test exists for.
				go func(h *ChanHandle[uint64], withCtx bool) {
					defer wg.Done()
					got := make([]uint64, 0, 1024)
					defer func() {
						mu.Lock()
						for _, v := range got {
							received[v]++
						}
						mu.Unlock()
					}()
					for {
						var v uint64
						var err error
						if withCtx {
							ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
							v, err = h.RecvCtx(ctx)
							cancel()
						} else {
							v, err = h.Recv()
						}
						switch {
						case err == nil:
							got = append(got, v)
						case errors.Is(err, ErrClosed):
							return
						case errors.Is(err, context.DeadlineExceeded):
							// Empty; keep draining.
						default:
							t.Errorf("receiver: %v", err)
							return
						}
					}
				}(h, r%2 == 1)
			}
			deadline := time.Now().Add(5 * time.Second)
			for sends.Load() < 2000 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			for v, n := range sent {
				if n != 1 {
					t.Fatalf("value %#x sent %d times", v, n)
				}
				if received[v] != 1 {
					t.Fatalf("value %#x sent once, received %d times (lost or duplicated)", v, received[v])
				}
			}
			for v := range received {
				if sent[v] != 1 {
					t.Fatalf("value %#x received but never successfully sent", v)
				}
			}
			// The bounded backends must actually have exercised the fast
			// path. The unbounded ones legitimately may not: their senders
			// never block, so under full blast the queue is rarely empty
			// and receivers rarely park.
			if b != BackendUnbounded && b != BackendShardedUnbounded {
				snap := c.Stats()
				if snap.Handoffs() == 0 {
					t.Fatal("storm completed without a single handoff: the fast path never ran")
				}
			}
		})
	}
}
