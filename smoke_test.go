package wfqueue

import (
	"runtime"
	"sync"
	"testing"
)

// TestSmokeAllVariantsConcurrent exercises Queue, Ring, LockFreeQueue
// and ShardedQueue side by side from concurrent goroutines — a single
// -race smoke covering every public construction at once. Each worker
// pushes its values through all four structures and the test verifies
// global counts (no loss, no duplication per structure).
func TestSmokeAllVariantsConcurrent(t *testing.T) {
	const (
		workers = 6
		perW    = 2000
		cap     = 1 << 8
	)
	q, err := New[uint64](cap, workers+1) // +1 for the final drain handle
	if err != nil {
		t.Fatal(err)
	}
	sq, err := NewSharded[uint64](cap, workers+1, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(cap, workers, false)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewLockFree[uint64](cap)
	if err != nil {
		t.Fatal(err)
	}

	counts := struct {
		mu                        sync.Mutex
		wcq, shard, ring, scq     map[uint64]int
		wcqN, shardN, ringN, scqN int
	}{
		wcq: map[uint64]int{}, shard: map[uint64]int{},
		ring: map[uint64]int{}, scq: map[uint64]int{},
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		sh, err := sq.Handle()
		if err != nil {
			t.Fatal(err)
		}
		rh, err := ring.Handle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			local := struct {
				wcq, shard, ring, scq map[uint64]int
			}{map[uint64]int{}, map[uint64]int{}, map[uint64]int{}, map[uint64]int{}}
			for i := 0; i < perW; i++ {
				v := w<<32 | uint64(i)
				for !h.Enqueue(v) {
					if got, ok := h.Dequeue(); ok {
						local.wcq[got]++
					}
					runtime.Gosched()
				}
				for !sh.Enqueue(v) {
					if got, ok := sh.Dequeue(); ok {
						local.shard[got]++
					}
					runtime.Gosched()
				}
				rh.Enqueue(uint64(i) % cap)
				for !lf.Enqueue(v) {
					if got, ok := lf.Dequeue(); ok {
						local.scq[got]++
					}
					runtime.Gosched()
				}
				// Drain roughly as fast as we fill.
				if got, ok := h.Dequeue(); ok {
					local.wcq[got]++
				}
				if got, ok := sh.Dequeue(); ok {
					local.shard[got]++
				}
				if got, ok := rh.Dequeue(); ok {
					local.ring[got]++
				}
				if got, ok := lf.Dequeue(); ok {
					local.scq[got]++
				}
			}
			counts.mu.Lock()
			defer counts.mu.Unlock()
			for v, n := range local.wcq {
				counts.wcq[v] += n
				counts.wcqN += n
			}
			for v, n := range local.shard {
				counts.shard[v] += n
				counts.shardN += n
			}
			for v, n := range local.ring {
				counts.ring[v] += n
				counts.ringN += n
			}
			for v, n := range local.scq {
				counts.scq[v] += n
				counts.scqN += n
			}
		}(uint64(w))
	}
	wg.Wait()

	// Drain the remainders single-threaded and verify exactly-once
	// delivery for the value-carrying queues.
	dh, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	for {
		v, ok := dh.Dequeue()
		if !ok {
			break
		}
		counts.wcq[v]++
		counts.wcqN++
	}
	dsh, err := sq.Handle()
	if err != nil {
		t.Fatal(err)
	}
	for {
		v, ok := dsh.Dequeue()
		if !ok {
			break
		}
		counts.shard[v]++
		counts.shardN++
	}
	for {
		v, ok := lf.Dequeue()
		if !ok {
			break
		}
		counts.scq[v]++
		counts.scqN++
	}

	total := workers * perW
	for name, c := range map[string]struct {
		m map[uint64]int
		n int
	}{
		"wCQ":     {counts.wcq, counts.wcqN},
		"Sharded": {counts.shard, counts.shardN},
		"SCQ":     {counts.scq, counts.scqN},
	} {
		if c.n != total {
			t.Errorf("%s: drained %d values, want %d", name, c.n, total)
		}
		for v, n := range c.m {
			if n != 1 {
				t.Errorf("%s: value %#x delivered %d times", name, v, n)
			}
		}
	}
}
