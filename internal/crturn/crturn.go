// Package crturn implements the Turn queue of Ramalhete & Correia
// (PPoPP '17 poster; "CRTurn"), the truly wait-free baseline in the
// wCQ paper's evaluation — and the outer-layer candidate the paper's
// appendix uses for unbounded wCQ composition.
//
// CRTurn is a singly linked list with announcement arrays:
//
//   - enqueuers[tid] publishes a node to insert; every enqueue helps
//     link the next pending enqueuer's node (in turn order after the
//     current tail's enqTid) before checking its own, so each node is
//     linked within maxThreads iterations.
//   - deqself/deqhelp publish dequeue requests. A request is open when
//     deqself[tid] == deqhelp[tid]. Dequeuers assign head.next to the
//     next open request in turn order (after head's deqTid) by CAS-ing
//     the node's deqTid, writing the node into deqhelp[idx], and then
//     advancing head — so each dequeuer is served within maxThreads
//     head advances.
//
// There is no F&A anywhere, every step is a CAS scan over all threads
// — which is why it is wait-free but slow, matching its curves in
// Figs. 10-12. The original reclaims memory with hazard pointers (the
// paper's "wait-free memory reclamation"); the Go port leans on the
// garbage collector, which preserves the algorithmic shape while
// removing the retire/protect calls.
package crturn

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
)

const noIdx = int32(-1)

type node struct {
	item   uint64
	enqTid int32
	deqTid atomic.Int32
	next   atomic.Pointer[node]
	// consumed is set by the owning dequeuer (the thread deqTid was
	// CAS'd to — assigned at most once, so every delivery of this node
	// targets the same thread) when it takes the item. The owner reads
	// it to reject stale re-deliveries (see Dequeue); helpers read it
	// in casDeqAndHead to know head may pass the node.
	consumed atomic.Bool
}

func newNode(item uint64, enqTid int32) *node {
	n := &node{item: item, enqTid: enqTid}
	n.deqTid.Store(noIdx)
	return n
}

// Queue is the CRTurn wait-free queue.
type Queue struct {
	_          pad.Line
	head       atomic.Pointer[node]
	_          pad.Line
	tail       atomic.Pointer[node]
	_          pad.Line
	enqueuers  []atomic.Pointer[node]
	deqself    []atomic.Pointer[node]
	deqhelp    []atomic.Pointer[node]
	maxThreads int
	handles    atomic.Int64
}

// Handle is a registered thread's view. consumedMark tracks the last
// deqhelp node this thread acknowledged; any other node found in
// deqhelp[tid] is a delivery we have not yet consumed (possibly one
// that raced a rollback) and is returned by the next Dequeue.
type Handle struct {
	q            *Queue
	tid          int
	consumedMark *node
}

// New returns an empty queue for at most maxThreads registered
// handles.
func New(maxThreads int) *Queue {
	q := &Queue{
		enqueuers:  make([]atomic.Pointer[node], maxThreads),
		deqself:    make([]atomic.Pointer[node], maxThreads),
		deqhelp:    make([]atomic.Pointer[node], maxThreads),
		maxThreads: maxThreads,
	}
	sentinel := newNode(0, 0)
	sentinel.deqTid.Store(0) // turn order starts after thread 0
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	for i := 0; i < maxThreads; i++ {
		// Distinct markers so no request looks open initially.
		q.deqself[i].Store(newNode(0, int32(i)))
		q.deqhelp[i].Store(newNode(0, int32(i)))
	}
	return q
}

// Register returns a per-thread handle.
func (q *Queue) Register() (*Handle, error) {
	id := q.handles.Add(1) - 1
	if id >= int64(q.maxThreads) {
		q.handles.Add(-1)
		return nil, fmt.Errorf("crturn: thread census exhausted (%d)", q.maxThreads)
	}
	return &Handle{q: q, tid: int(id), consumedMark: q.deqhelp[id].Load()}, nil
}

// Enqueue appends v; always succeeds (unbounded).
func (h *Handle) Enqueue(v uint64) {
	q, tid := h.q, h.tid
	myNode := newNode(v, int32(tid))
	q.enqueuers[tid].Store(myNode)
	for i := 0; i < q.maxThreads; i++ {
		if q.enqueuers[tid].Load() == nil {
			return // some helper linked our node and cleared the slot
		}
		ltail := q.tail.Load()
		if q.enqueuers[ltail.enqTid].Load() == ltail {
			// The tail's request is satisfied; clear it for its owner.
			q.enqueuers[ltail.enqTid].CompareAndSwap(ltail, nil)
		}
		// Link the next pending enqueuer in turn order.
		for j := 1; j <= q.maxThreads; j++ {
			nodeToHelp := q.enqueuers[(j+int(ltail.enqTid))%q.maxThreads].Load()
			if nodeToHelp == nil {
				continue
			}
			ltail.next.CompareAndSwap(nil, nodeToHelp)
			break
		}
		if lnext := ltail.next.Load(); lnext != nil {
			q.tail.CompareAndSwap(ltail, lnext)
		}
	}
	// The paper's bound guarantees the node is linked by now; verify
	// defensively before withdrawing the announcement (clearing the
	// slot for an unlinked node would lose the element).
	for q.enqueuers[tid].Load() == myNode && !q.nodeLinked(myNode) {
		q.helpLinkOnce()
		runtime.Gosched()
	}
	q.enqueuers[tid].Store(nil)
}

// nodeLinked reports whether n has been linked into the list. Tail is
// always the last or second-to-last node, so three checks suffice.
func (q *Queue) nodeLinked(n *node) bool {
	t := q.tail.Load()
	return t == n || t.next.Load() == n || n.next.Load() != nil
}

// helpLinkOnce performs one round of the enqueue helping body.
func (q *Queue) helpLinkOnce() {
	ltail := q.tail.Load()
	for j := 1; j <= q.maxThreads; j++ {
		nodeToHelp := q.enqueuers[(j+int(ltail.enqTid))%q.maxThreads].Load()
		if nodeToHelp == nil {
			continue
		}
		ltail.next.CompareAndSwap(nil, nodeToHelp)
		break
	}
	if lnext := ltail.next.Load(); lnext != nil {
		q.tail.CompareAndSwap(ltail, lnext)
	}
}

// Dequeue removes the oldest value; ok is false when the queue is
// empty.
//
// Port notes. The original's rollback (hazard-pointer based) leaves a
// tiny window where a helper holding a stale "request open"
// observation assigns a node to a request that has just rolled back
// and returned empty. Rather than lose that node, the owner detects
// any unacknowledged delivery on its next Dequeue (deqhelp[tid] !=
// consumedMark) and consumes it first.
//
// Separately, the delivery CAS in casDeqAndHead is exposed to ABA: a
// helper that loaded head.next = N while N was current can stall
// across several of this thread's request cycles and then deliver N
// into a LATER open request — the guard "deqhelp == deqself" holds
// again because the request markers have moved on. N was already
// consumed, so accepting it would both duplicate the item and break
// per-producer FIFO (observed under GOMAXPROCS > 1). The owner is the
// only thread that ever consumes nodes assigned to it, so it can
// reject such re-deliveries locally: every accepted node is flagged
// consumed, and a delivered node carrying the flag is discarded and
// the request re-opened. Each stale helper can force at most one such
// retry, so termination stays bounded by the number of concurrent
// helpers.
func (h *Handle) Dequeue() (uint64, bool) {
	q, tid := h.q, h.tid
	if n := q.deqhelp[tid].Load(); n != h.consumedMark {
		if !n.consumed.Load() {
			return h.consumeDelivered(n)
		}
		// A stale helper re-delivered an old node between operations;
		// discard it. No delivery can race this store: the request is
		// not open (deqself != deqhelp) while the bogus node sits here.
		q.deqhelp[tid].Store(h.consumedMark)
	}
	prReq := q.deqself[tid].Load()
	myReq := q.deqhelp[tid].Load()
	q.deqself[tid].Store(myReq) // open our request
	for {
		// The turn discipline serves an open request within maxThreads
		// head advances; every iteration either helps an advance,
		// observes emptiness (rollback + return), or finds the request
		// satisfied, so the loop terminates without a fixed bound.
		for q.deqhelp[tid].Load() == myReq {
			lhead := q.head.Load()
			lnext := lhead.next.Load()
			if lnext == nil {
				// Looks empty: roll the request back.
				q.deqself[tid].Store(prReq)
				q.giveUp(myReq, tid)
				if q.deqhelp[tid].Load() != myReq {
					// Helped between the check and the rollback: keep the
					// record consistent and consume the delivery.
					q.deqself[tid].Store(myReq)
					break
				}
				return 0, false
			}
			if q.searchNext(lhead, lnext) != noIdx {
				q.casDeqAndHead(lhead, lnext)
			}
		}
		n := q.deqhelp[tid].Load()
		if !n.consumed.Load() {
			return h.consumeDelivered(n)
		}
		// Bogus re-delivery of an already-consumed node: clear it and
		// re-open the request. The store cannot overwrite a legitimate
		// delivery — while deqhelp holds the bogus node the request
		// reads as satisfied, so no helper's delivery CAS can succeed.
		q.deqhelp[tid].Store(myReq)
	}
}

// consumeDelivered acknowledges a node delivered to this thread's
// deqhelp slot, helps head past it, and returns its item.
func (h *Handle) consumeDelivered(n *node) (uint64, bool) {
	n.consumed.Store(true)
	h.consumedMark = n
	q := h.q
	lhead := q.head.Load()
	if n == lhead.next.Load() {
		q.head.CompareAndSwap(lhead, n)
	}
	return n.item, true
}

// searchNext assigns lnext to the next open dequeue request in turn
// order after lhead's deqTid and returns the assigned thread index
// (noIdx when no request is open).
func (q *Queue) searchNext(lhead, lnext *node) int32 {
	turn := int(lhead.deqTid.Load())
	for idx := turn + 1; idx <= turn+q.maxThreads; idx++ {
		idDeq := int32(idx % q.maxThreads)
		if q.deqself[idDeq].Load() != q.deqhelp[idDeq].Load() {
			continue // no open request for this thread
		}
		lnext.deqTid.CompareAndSwap(noIdx, idDeq)
		break
	}
	return lnext.deqTid.Load()
}

// casDeqAndHead delivers lnext to its assigned request and advances
// head past it.
//
// Delivery is guarded: deqhelp[idx] is CAS'd only while it still
// equals the request's open marker (deqself[idx]); delivering
// unconditionally could overwrite a newer request state with an old
// node. Head advancement is gated on the node actually having been
// delivered (or already consumed): if the delivery could not fire —
// say the target slot is transiently occupied by a stale helper's
// bogus re-delivery, or the target rolled its request back — an
// ungated advance would move head past a node no request holds,
// losing it forever. Gated, the node stays head.next until some
// helper's delivery succeeds (the owner discards bogus occupants and
// re-opens, see Dequeue), so every node is delivered before head
// passes it.
func (q *Queue) casDeqAndHead(lhead, lnext *node) {
	idx := lnext.deqTid.Load()
	if idx == noIdx {
		return
	}
	ldeqhelp := q.deqhelp[idx].Load()
	if ldeqhelp != lnext && ldeqhelp == q.deqself[idx].Load() {
		q.deqhelp[idx].CompareAndSwap(ldeqhelp, lnext)
	}
	if q.deqhelp[idx].Load() == lnext || lnext.consumed.Load() {
		q.head.CompareAndSwap(lhead, lnext)
	}
}

// giveUp runs after a rollback closed this thread's request. Its job
// is to leave no assignable node behind: if head.next exists and is
// unassigned, it is assigned — to another open request or, failing
// that, to US — and delivered. This closes the stale-helper window: a
// helper that observed our request open before the rollback can only
// CAS a node that was head.next before giveUp ran, and giveUp has
// assigned any such node already, so the stale CAS fails.
func (q *Queue) giveUp(myReq *node, tid int) {
	if q.deqhelp[tid].Load() != myReq {
		return // already satisfied; the caller consumes it
	}
	lhead := q.head.Load()
	lnext := lhead.next.Load()
	if lnext == nil {
		return // genuinely empty at this instant
	}
	if q.searchNext(lhead, lnext) == noIdx {
		lnext.deqTid.CompareAndSwap(noIdx, int32(tid))
	}
	q.casDeqAndHead(lhead, lnext)
	// If the node ended up assigned to US, the helper-side guarded
	// delivery can no longer fire: our request reads as rolled back
	// (deqself was restored to the previous marker, which never equals
	// the open marker). Deliver it to ourselves — as a CAS, because a
	// helper still holding a pre-rollback "request open" observation
	// may deliver a node concurrently, and overwriting that delivery
	// would lose it. Either way the caller sees deqhelp != myReq and
	// consumes whichever node landed.
	if lnext.deqTid.Load() == int32(tid) && !lnext.consumed.Load() {
		if q.deqhelp[tid].CompareAndSwap(myReq, lnext) {
			q.head.CompareAndSwap(lhead, lnext)
		}
	}
}
