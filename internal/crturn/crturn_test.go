package crturn

import (
	"runtime"
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for i := uint64(0); i < 100; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("phantom value")
	}
}

func TestEmptyAfterRollbackStaysConsistent(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	for round := 0; round < 100; round++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatal("phantom on empty queue")
		}
		h.Enqueue(uint64(round))
		v, ok := h.Dequeue()
		if !ok || v != uint64(round) {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

func TestRegisterCensus(t *testing.T) {
	q := New(1)
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("census exceeded")
	}
}

func TestTurnFairnessUnderContention(t *testing.T) {
	// All threads dequeue concurrently from a pre-filled queue; the
	// turn discipline must serve every open request (no starvation,
	// exactly-once).
	const threads = 4
	const total = 4000
	q := New(threads + 1)
	hp, _ := q.Register()
	for i := uint64(0); i < total; i++ {
		hp.Enqueue(i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int, total)
	for g := 0; g < threads; g++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for {
				v, ok := h.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
				runtime.Gosched()
			}
		}(h)
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("drained %d, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}
