// Package clihelper centralizes the queue-construction flag plumbing
// shared by cmd/wcqbench and cmd/wcqstress, so the two tools register
// the same flags with the same meanings and cannot drift (before this
// package each tool declared its own subset by hand). That includes
// the composition dimensions: -shards (how many sub-queues) and -ring
// (which ring core inside them) are declared once here, so the
// kind x composition matrix is spelled identically everywhere.
package clihelper

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/atomicx"
	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/ringcore"
)

// Flags holds the queue-construction flag values common to the CLIs.
type Flags struct {
	// Capacity is the ring capacity: the total bound for bounded
	// queues, the per-ring size for the unbounded variants (LSCQ,
	// UWCQ, ShardedUnbounded and their Chan facades).
	Capacity uint64
	// Shards is the shard count for the sharded compositions and
	// their Chan facades (0 = the default 4).
	Shards int
	// Ring names the ring kind inside the sharded compositions and
	// ChanUnbounded ("wCQ" or "SCQ"; empty = wCQ). Fixed-kind queue
	// names (wCQ, SCQ, LSCQ, UWCQ) ignore it.
	Ring string
	// Batch > 1 drives batched enqueue/dequeue paths.
	Batch int
	// Emulate selects CAS-emulated F&A (the PowerPC configuration).
	Emulate bool
	// Slowpath forces wCQ's helped paths (patience 1, eager helping).
	Slowpath bool
	// Blocking exercises the blocking Chan facades (Send/Recv with
	// parking and graceful close) instead of the nonblocking queues.
	Blocking bool
	// Wait names the blocking-wait strategy for the Chan facades:
	// "adaptive" (default), "spin", or "park".
	Wait string
	// Handoff toggles the Chan facades' direct-handoff rendezvous fast
	// path: "on" (the default when empty) or "off".
	Handoff string
	// Metrics gives each constructed queue a live metrics sink, so the
	// run measures (and can report) the instrumented configuration.
	Metrics bool
}

// Register installs the shared queue-construction flags on fs. The
// default capacity differs per tool (the bench uses the paper's 2^16,
// the stresser a small ring that exercises full/empty transitions),
// so it is a parameter.
func Register(fs *flag.FlagSet, defaultCapacity uint64) *Flags {
	f := &Flags{}
	fs.Uint64Var(&f.Capacity, "capacity", defaultCapacity, "ring capacity (total for bounded queues, per-ring for the unbounded variants)")
	fs.IntVar(&f.Shards, "shards", 0, "shard count for the sharded compositions / sharded Chans (0 = default 4)")
	fs.StringVar(&f.Ring, "ring", "", "ring kind inside sharded compositions: wCQ (default) or SCQ")
	fs.IntVar(&f.Batch, "batch", 0, "> 1: drive batched enqueue/dequeue with this batch size")
	fs.BoolVar(&f.Emulate, "emulate", false, "CAS-emulated F&A (PowerPC mode)")
	fs.BoolVar(&f.Slowpath, "slowpath", false, "wCQ: patience 1 + eager helping (forces the helped slow paths)")
	fs.BoolVar(&f.Blocking, "blocking", false, "exercise the blocking Chan facades (parked Send/Recv, graceful close)")
	fs.StringVar(&f.Wait, "wait", "", "blocking-wait strategy for the Chan facades: adaptive (default), spin, or park")
	fs.StringVar(&f.Handoff, "handoff", "", "direct-handoff rendezvous fast path for the Chan facades: on (default) or off")
	fs.BoolVar(&f.Metrics, "metrics", false, "enable the internal metrics sink on every constructed queue (measures the instrumented configuration)")
	return f
}

// RingKind resolves the -ring flag to a ringcore.Kind (wCQ when the
// flag is unset); an unknown name is a usage error.
func (f *Flags) RingKind() (ringcore.Kind, error) {
	if f.Ring == "" {
		return ringcore.KindWCQ, nil
	}
	k, err := ringcore.KindByName(f.Ring)
	if err != nil {
		return 0, fmt.Errorf("-ring: %w", err)
	}
	return k, nil
}

// Config translates the flag values into a queues.Config with the
// given handle budget. The error is a usage error (e.g. an unknown
// -ring kind).
func (f *Flags) Config(maxThreads int) (queues.Config, error) {
	kind, err := f.RingKind()
	if err != nil {
		return queues.Config{}, err
	}
	cfg := queues.Config{
		Capacity:   f.Capacity,
		MaxThreads: maxThreads,
		Shards:     f.Shards,
		Ring:       kind,
	}
	if f.Emulate {
		cfg.Mode = atomicx.EmulatedFAA
	}
	if f.Metrics {
		cfg.Metrics = metrics.New()
	}
	if f.Wait != "" {
		w, err := backoff.ByName(f.Wait)
		if err != nil {
			return queues.Config{}, fmt.Errorf("-wait: %w", err)
		}
		cfg.Wait = w
	}
	if cfg.Handoff, err = f.HandoffMode(); err != nil {
		return queues.Config{}, err
	}
	cfg.Core = f.CoreOptions()
	return cfg, nil
}

// HandoffMode resolves the -handoff flag to a ringcore.HandoffMode
// (the default — enabled — when the flag is unset); an unknown name is
// a usage error.
func (f *Flags) HandoffMode() (ringcore.HandoffMode, error) {
	if f.Handoff == "" {
		return ringcore.HandoffDefault, nil
	}
	m, err := ringcore.HandoffByName(f.Handoff)
	if err != nil {
		return 0, fmt.Errorf("-handoff: %w", err)
	}
	return m, nil
}

// CoreOptions returns the ring-core tuning implied by the flags (nil
// when the defaults apply).
func (f *Flags) CoreOptions() *ringcore.Options {
	if !f.Slowpath {
		return nil
	}
	return &ringcore.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
}

// ParseFloatList parses a comma-separated list of positive floats —
// the -loads flag format ("0.25,0.5,0.9,1.1"). An empty string yields
// nil (use the figure's default sweep).
func ParseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("clihelper: bad float %q in list: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("clihelper: list values must be positive, got %g", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseIntList parses a comma-separated list of positive integers —
// the -waiters flag format ("8,64,256,1024"). An empty string yields
// nil (use the figure's default sweep).
func ParseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("clihelper: bad integer %q in list: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("clihelper: list values must be positive, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// QueueNames expands a -queue selection ("all" or a concrete name)
// honoring the blocking flag: "all" means every real queue normally
// and every Chan facade under -blocking.
func (f *Flags) QueueNames(selected string) []string {
	if selected != "all" {
		return []string{selected}
	}
	if f.Blocking {
		return queues.BlockingQueues()
	}
	return queues.RealQueues()
}
