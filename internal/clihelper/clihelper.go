// Package clihelper centralizes the queue-construction flag plumbing
// shared by cmd/wcqbench and cmd/wcqstress, so the two tools register
// the same flags with the same meanings and cannot drift (before this
// package each tool declared its own subset by hand).
package clihelper

import (
	"flag"

	"repro/internal/atomicx"
	"repro/internal/queues"
	"repro/internal/wcq"
)

// Flags holds the queue-construction flag values common to the CLIs.
type Flags struct {
	// Capacity is the ring capacity: the total bound for bounded
	// queues, the per-ring size for the unbounded LSCQ/UWCQ.
	Capacity uint64
	// Shards is the shard count for the Sharded queue and the sharded
	// Chan facade (0 = the default 4).
	Shards int
	// Batch > 1 drives batched enqueue/dequeue paths.
	Batch int
	// Emulate selects CAS-emulated F&A (the PowerPC configuration).
	Emulate bool
	// Slowpath forces wCQ's helped paths (patience 1, eager helping).
	Slowpath bool
	// Blocking exercises the blocking Chan facades (Send/Recv with
	// parking and graceful close) instead of the nonblocking queues.
	Blocking bool
}

// Register installs the shared queue-construction flags on fs. The
// default capacity differs per tool (the bench uses the paper's 2^16,
// the stresser a small ring that exercises full/empty transitions),
// so it is a parameter.
func Register(fs *flag.FlagSet, defaultCapacity uint64) *Flags {
	f := &Flags{}
	fs.Uint64Var(&f.Capacity, "capacity", defaultCapacity, "ring capacity (total for bounded queues, per-ring for LSCQ/UWCQ)")
	fs.IntVar(&f.Shards, "shards", 0, "shard count for the Sharded queue / sharded Chan (0 = default 4)")
	fs.IntVar(&f.Batch, "batch", 0, "> 1: drive batched enqueue/dequeue with this batch size")
	fs.BoolVar(&f.Emulate, "emulate", false, "CAS-emulated F&A (PowerPC mode)")
	fs.BoolVar(&f.Slowpath, "slowpath", false, "wCQ: patience 1 + eager helping (forces the helped slow paths)")
	fs.BoolVar(&f.Blocking, "blocking", false, "exercise the blocking Chan facades (parked Send/Recv, graceful close)")
	return f
}

// Config translates the flag values into a queues.Config with the
// given handle budget.
func (f *Flags) Config(maxThreads int) queues.Config {
	cfg := queues.Config{
		Capacity:   f.Capacity,
		MaxThreads: maxThreads,
		Shards:     f.Shards,
	}
	if f.Emulate {
		cfg.Mode = atomicx.EmulatedFAA
	}
	cfg.WCQOptions = f.WCQOptions()
	return cfg
}

// WCQOptions returns the wCQ tuning implied by the flags (nil when
// the defaults apply).
func (f *Flags) WCQOptions() *wcq.Options {
	if !f.Slowpath {
		return nil
	}
	return &wcq.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
}

// QueueNames expands a -queue selection ("all" or a concrete name)
// honoring the blocking flag: "all" means every real queue normally
// and every Chan facade under -blocking.
func (f *Flags) QueueNames(selected string) []string {
	if selected != "all" {
		return []string{selected}
	}
	if f.Blocking {
		return queues.BlockingQueues()
	}
	return queues.RealQueues()
}
