package clihelper

import (
	"flag"
	"reflect"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/queues"
	"repro/internal/ringcore"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs, 1<<16)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Capacity != 1<<16 || f.Shards != 0 || f.Ring != "" || f.Batch != 0 || f.Emulate || f.Slowpath || f.Blocking {
		t.Fatalf("defaults: %+v", f)
	}
	cfg, err := f.Config(8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 1<<16 || cfg.MaxThreads != 8 || cfg.Mode != atomicx.NativeFAA || cfg.Core != nil {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Ring != ringcore.KindWCQ {
		t.Fatalf("default ring kind: %v", cfg.Ring)
	}
}

func TestRegisterParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs, 256)
	err := fs.Parse([]string{"-capacity", "512", "-shards", "8", "-ring", "SCQ", "-batch", "32", "-emulate", "-slowpath", "-blocking"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Config(4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 512 || cfg.Shards != 8 || cfg.Mode != atomicx.EmulatedFAA {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Ring != ringcore.KindSCQ {
		t.Fatalf("ring kind: %v", cfg.Ring)
	}
	if cfg.Core == nil || cfg.Core.EnqPatience != 1 {
		t.Fatalf("slowpath options: %+v", cfg.Core)
	}
	if f.Batch != 32 || !f.Blocking {
		t.Fatalf("flags: %+v", f)
	}
}

func TestRingFlagRejectsUnknownKind(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs, 256)
	if err := fs.Parse([]string{"-ring", "XYZ"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Config(4); err == nil {
		t.Fatal("unknown -ring kind accepted")
	}
}

func TestQueueNames(t *testing.T) {
	var f Flags
	if got := f.QueueNames("wCQ"); !reflect.DeepEqual(got, []string{"wCQ"}) {
		t.Fatalf("concrete name: %v", got)
	}
	if got := f.QueueNames("all"); !reflect.DeepEqual(got, queues.RealQueues()) {
		t.Fatalf("all: %v", got)
	}
	f.Blocking = true
	if got := f.QueueNames("all"); !reflect.DeepEqual(got, queues.BlockingQueues()) {
		t.Fatalf("all blocking: %v", got)
	}
}
