package unbounded

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ringcore"
)

type maker func(t *testing.T, ringCap uint64) *Queue[uint64]

func makers() map[string]maker {
	return map[string]maker{
		"LSCQ": func(t *testing.T, rc uint64) *Queue[uint64] {
			q, err := New[uint64](ringcore.KindSCQ, rc, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"UWCQ": func(t *testing.T, rc uint64) *Queue[uint64] {
			q, err := New[uint64](ringcore.KindWCQ, rc, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
	}
}

func TestUnboundedSequentialGrowth(t *testing.T) {
	for name, mk := range makers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(t, 8)   // tiny rings force frequent ring turnover
			q.SetPoolCap(0) // no recycling: every turnover allocates
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			const n = 1000
			for i := uint64(0); i < n; i++ {
				if err := h.Enqueue(i); err != nil {
					t.Fatal(err)
				}
			}
			if q.RingsAllocated() < int64(n/8) {
				t.Fatalf("only %d rings for %d values in cap-8 rings", q.RingsAllocated(), n)
			}
			for i := uint64(0); i < n; i++ {
				v, ok, err := h.Dequeue()
				if err != nil {
					t.Fatal(err)
				}
				if !ok || v != i {
					t.Fatalf("got (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok, _ := h.Dequeue(); ok {
				t.Fatal("phantom value after drain")
			}
		})
	}
}

func TestUnboundedInterleavedSmallRings(t *testing.T) {
	for name, mk := range makers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(t, 4)
			h, _ := q.Handle()
			next, exp := uint64(0), uint64(0)
			for round := 0; round < 500; round++ {
				for k := 0; k < 7; k++ { // deliberately > ring cap
					if err := h.Enqueue(next); err != nil {
						t.Fatal(err)
					}
					next++
				}
				for k := 0; k < 7; k++ {
					v, ok, err := h.Dequeue()
					if err != nil {
						t.Fatal(err)
					}
					if !ok || v != exp {
						t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, exp)
					}
					exp++
				}
			}
		})
	}
}

func TestUnboundedMPMC(t *testing.T) {
	for name, mk := range makers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(t, 16)
			const (
				producers = 3
				consumers = 3
				per       = 4000
			)
			total := producers * per
			var got atomic.Int64
			seen := make([]atomic.Int32, total)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				h, err := q.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(p int, h *Handle[uint64]) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := h.Enqueue(uint64(p*per + i)); err != nil {
							t.Error(err)
							return
						}
					}
				}(p, h)
			}
			for c := 0; c < consumers; c++ {
				h, err := q.Handle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(h *Handle[uint64]) {
					defer wg.Done()
					for got.Load() < int64(total) {
						v, ok, err := h.Dequeue()
						if err != nil {
							t.Error(err)
							return
						}
						if !ok {
							runtime.Gosched()
							continue
						}
						seen[v].Add(1)
						got.Add(1)
					}
				}(h)
			}
			wg.Wait()
			for i := range seen {
				if n := seen[i].Load(); n != 1 {
					t.Fatalf("value %d delivered %d times (rings=%d)", i, n, q.RingsAllocated())
				}
			}
		})
	}
}

func TestUnboundedFootprintGrowsWhileBuffered(t *testing.T) {
	q, err := New[uint64](ringcore.KindSCQ, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Handle()
	f0 := q.Footprint()
	for i := uint64(0); i < 200; i++ {
		h.Enqueue(i) // never dequeue: rings accumulate
	}
	if q.Footprint() <= f0 {
		t.Fatalf("footprint did not grow: %d -> %d", f0, q.Footprint())
	}
	if q.Rings() < 25 {
		t.Fatalf("only %d live rings for 200 buffered values in cap-8 rings", q.Rings())
	}
}

func TestUnboundedPoolRecyclesRings(t *testing.T) {
	// A sequential burst/drain churn must converge on a fixed ring
	// population: after the pool is primed, turnovers reuse rings
	// instead of allocating.
	for name, mk := range makers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(t, 8)
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			next, exp := uint64(0), uint64(0)
			for round := 0; round < 50; round++ {
				for k := 0; k < 24; k++ { // 3 ring turnovers per round
					if err := h.Enqueue(next); err != nil {
						t.Fatal(err)
					}
					next++
				}
				for k := 0; k < 24; k++ {
					v, ok, err := h.Dequeue()
					if err != nil {
						t.Fatal(err)
					}
					if !ok || v != exp {
						t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, exp)
					}
					exp++
				}
			}
			if q.RingsRecycled() == 0 {
				t.Fatal("pool never recycled a ring across 50 burst/drain rounds")
			}
			// Sequential churn retires every ring unpinned, so the
			// allocation count must stay near (live + pool), not grow
			// with the ~150 turnovers.
			if q.RingsAllocated() > int64(DefaultPoolRings)+5 {
				t.Fatalf("allocated %d rings across recycled churn (recycled %d)",
					q.RingsAllocated(), q.RingsRecycled())
			}
		})
	}
}

func TestUnboundedFootprintBoundedAfterDrain(t *testing.T) {
	// The paper's bounded-memory claim under churn: once a burst
	// drains, retained memory is capped by (1 live + pool) rings.
	for name, mk := range makers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(t, 8)
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			perRing := q.Footprint() // exactly one live ring at rest
			for i := uint64(0); i < 2000; i++ {
				if err := h.Enqueue(i); err != nil {
					t.Fatal(err)
				}
			}
			peak := q.Footprint()
			if peak < 100*perRing {
				t.Fatalf("peak %d B did not reflect the burst (ring %d B)", peak, perRing)
			}
			for i := uint64(0); i < 2000; i++ {
				if _, ok, err := h.Dequeue(); !ok || err != nil {
					t.Fatalf("drain at %d: ok=%v err=%v", i, ok, err)
				}
			}
			if got, limit := q.Footprint(), uint64(DefaultPoolRings+1)*perRing; got > limit {
				t.Fatalf("retained %d B after drain, want <= %d (pool %d rings)",
					got, limit, q.Pooled())
			}
		})
	}
}

func TestUnboundedPerProducerFIFOAcrossRings(t *testing.T) {
	// One producer, one consumer, ring turnover in the middle: strict
	// order must survive ring boundaries (and ring recycling).
	q, err := New[uint64](ringcore.KindWCQ, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	hp, _ := q.Handle()
	hc, _ := q.Handle()
	const n = 5000
	done := make(chan error, 1)
	go func() {
		next := uint64(0)
		for next < n {
			v, ok, err := hc.Dequeue()
			if err != nil {
				done <- err
				return
			}
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != next {
				done <- errOrder{v, next}
				return
			}
			next++
		}
		done <- nil
	}()
	for i := uint64(0); i < n; i++ {
		if err := hp.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUWCQHandleCensus(t *testing.T) {
	q, err := New[uint64](ringcore.KindWCQ, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Handle(); err == nil {
		t.Fatal("third handle accepted with maxThreads 2")
	}
}

type errOrder struct{ got, want uint64 }

func (e errOrder) Error() string { return "out of order" }

func TestKindAccessorsAndCore(t *testing.T) {
	q, err := New[uint64](ringcore.KindSCQ, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind() != ringcore.KindSCQ {
		t.Fatalf("Kind() = %v", q.Kind())
	}
	core := q.Core()
	if core.Cap() != 0 || core.Kind() != ringcore.KindSCQ {
		t.Fatalf("core: cap=%d kind=%v", core.Cap(), core.Kind())
	}
	h, err := core.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Through the Core adapter: never full, sealed ops are plain
	// enqueues, batches always absorbed.
	if !h.Enqueue(1) || !h.EnqueueSealed(2) {
		t.Fatal("unbounded core reported full")
	}
	if n := h.EnqueueSealedBatch([]uint64{3, 4, 5}); n != 3 {
		t.Fatalf("EnqueueSealedBatch = %d, want 3", n)
	}
	out := make([]uint64, 8)
	if n := h.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5", n)
	}
	for i, want := range []uint64{1, 2, 3, 4, 5} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("phantom value after drain")
	}
}
