// Package unbounded implements the paper's Appendix A construction:
// unbounded queues built by linking bounded rings — LSCQ (SCQ rings)
// and UWCQ (wCQ rings). A ring that fills up (or is finalized) is
// sealed and a fresh ring is appended; dequeuers advance past sealed,
// drained rings. Outer-list operations are rare, so throughput is
// dominated by the ring operations, as the paper observes.
//
// Faithfulness note: the appendix links rings with the CRTurn wait-free
// list so the WHOLE unbounded queue is wait-free. This port uses the
// Michael & Scott-style outer list that LSCQ/LCRQ use (the paper's own
// LSCQ formulation); the rings retain their wait-free/lock-free
// progress, but outer-layer appends are lock-free. DESIGN.md records
// the substitution.
package unbounded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/pad"
	"repro/internal/scq"
	"repro/internal/wcq"
)

// ringView is one goroutine's access to one ring generation.
type ringView interface {
	EnqueueSealed(v uint64) bool
	Dequeue() (uint64, bool)
}

// ringCtl is the per-ring control interface used by the outer list.
type ringCtl interface {
	Seal()
	Drained() bool
	View() (ringView, error)
	Footprint() uint64
}

type node struct {
	r    ringCtl
	next atomic.Pointer[node]
}

// Queue is an unbounded MPMC FIFO of uint64 values, linking bounded
// rings of the configured kind.
type Queue struct {
	_       pad.Line
	head    atomic.Pointer[node]
	_       pad.Line
	tail    atomic.Pointer[node]
	_       pad.Line
	mk      func() (ringCtl, error)
	rings   atomic.Int64
	ringCap uint64
}

// Handle is a goroutine's view. It lazily registers with each ring
// generation it touches.
type Handle struct {
	q     *Queue
	mu    sync.Mutex // protects views (a handle may be polled from tests)
	views map[*node]ringView
}

// NewLSCQ returns an unbounded queue of SCQ rings (the paper's LSCQ),
// each holding ringCap values.
func NewLSCQ(ringCap uint64, mode atomicx.Mode) (*Queue, error) {
	return newQueue(ringCap, func() (ringCtl, error) {
		q, err := scq.NewQueue[uint64](ringCap, mode)
		if err != nil {
			return nil, err
		}
		return scqCtl{q}, nil
	})
}

// NewUWCQ returns an unbounded queue of wait-free wCQ rings (Appendix
// A), each holding ringCap values and supporting maxThreads handles.
func NewUWCQ(ringCap uint64, maxThreads int, opts *wcq.Options) (*Queue, error) {
	return newQueue(ringCap, func() (ringCtl, error) {
		q, err := wcq.NewQueue[uint64](ringCap, maxThreads, opts)
		if err != nil {
			return nil, err
		}
		return wcqCtl{q}, nil
	})
}

func newQueue(ringCap uint64, mk func() (ringCtl, error)) (*Queue, error) {
	q := &Queue{mk: mk, ringCap: ringCap}
	first, err := mk()
	if err != nil {
		return nil, err
	}
	n := &node{r: first}
	q.head.Store(n)
	q.tail.Store(n)
	q.rings.Store(1)
	return q, nil
}

// Handle returns a per-goroutine view.
func (q *Queue) Handle() (*Handle, error) {
	return &Handle{q: q, views: make(map[*node]ringView)}, nil
}

// RingsAllocated reports how many rings were ever created.
func (q *Queue) RingsAllocated() int64 { return q.rings.Load() }

// Footprint returns cumulative ring allocation in bytes (the memory
// signal of Fig. 10a applied to the unbounded variants).
func (q *Queue) Footprint() uint64 {
	var f uint64
	for n := q.head.Load(); n != nil; n = n.next.Load() {
		f += n.r.Footprint()
	}
	return f
}

func (h *Handle) view(n *node) (ringView, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.views[n]; ok {
		return v, nil
	}
	v, err := n.r.View()
	if err != nil {
		return nil, err
	}
	h.views[n] = v
	// Forget rings the head has passed so the map stays small.
	if len(h.views) > 8 {
		live := map[*node]bool{}
		for ln := h.q.head.Load(); ln != nil; ln = ln.next.Load() {
			live[ln] = true
		}
		for k := range h.views {
			if !live[k] {
				delete(h.views, k)
			}
		}
	}
	return v, nil
}

// Enqueue appends v. It always succeeds: a sealed or full tail ring is
// replaced by a fresh one (the unbounded-memory trade-off the bounded
// wCQ avoids).
func (h *Handle) Enqueue(v uint64) error {
	q := h.q
	for {
		ltail := q.tail.Load()
		if next := ltail.next.Load(); next != nil {
			q.tail.CompareAndSwap(ltail, next)
			continue
		}
		view, err := h.view(ltail)
		if err != nil {
			return err
		}
		if view.EnqueueSealed(v) {
			return nil
		}
		// Full or finalized: seal it and append a fresh ring seeded
		// with v (as Enqueue_Unbounded does in Fig. 13).
		ltail.r.Seal()
		nr, err := q.mk()
		if err != nil {
			return err
		}
		nn := &node{r: nr}
		nv, err := nr.View()
		if err != nil {
			return err
		}
		if !nv.EnqueueSealed(v) {
			return fmt.Errorf("unbounded: fresh ring rejected enqueue")
		}
		if ltail.next.CompareAndSwap(nil, nn) {
			q.rings.Add(1)
			q.tail.CompareAndSwap(ltail, nn)
			return nil
		}
		// Lost the append race; retry with the winner's ring.
	}
}

// Dequeue removes the oldest value; ok is false when the whole queue
// is empty.
func (h *Handle) Dequeue() (uint64, bool, error) {
	q := h.q
	for {
		lhead := q.head.Load()
		view, err := h.view(lhead)
		if err != nil {
			return 0, false, err
		}
		if v, ok := view.Dequeue(); ok {
			return v, true, nil
		}
		if lhead.next.Load() == nil {
			return 0, false, nil // no successor: genuinely empty
		}
		if !lhead.r.Drained() {
			continue // in-flight enqueues may still land here
		}
		// One more look after the drain barrier, then advance.
		if v, ok := view.Dequeue(); ok {
			return v, true, nil
		}
		q.head.CompareAndSwap(lhead, lhead.next.Load())
	}
}

// --- ring adapters ---

type scqCtl struct{ q *scq.Queue[uint64] }

func (c scqCtl) Seal()                   { c.q.Seal() }
func (c scqCtl) Drained() bool           { return c.q.Drained() }
func (c scqCtl) Footprint() uint64       { return c.q.Footprint() }
func (c scqCtl) View() (ringView, error) { return scqView{c.q}, nil }

type scqView struct{ q *scq.Queue[uint64] }

func (v scqView) EnqueueSealed(x uint64) bool { return v.q.EnqueueSealed(x) }
func (v scqView) Dequeue() (uint64, bool)     { return v.q.Dequeue() }

type wcqCtl struct{ q *wcq.Queue[uint64] }

func (c wcqCtl) Seal()             { c.q.Seal() }
func (c wcqCtl) Drained() bool     { return c.q.Drained() }
func (c wcqCtl) Footprint() uint64 { return c.q.Footprint() }
func (c wcqCtl) View() (ringView, error) {
	h, err := c.q.Register()
	if err != nil {
		return nil, err
	}
	return wcqView{h}, nil
}

type wcqView struct{ h *wcq.QueueHandle[uint64] }

func (v wcqView) EnqueueSealed(x uint64) bool { return v.h.EnqueueSealed(x) }
func (v wcqView) Dequeue() (uint64, bool)     { return v.h.Dequeue() }
