// Package unbounded implements the paper's Appendix A construction:
// unbounded queues built by linking bounded rings — LSCQ (SCQ rings)
// and UWCQ (wCQ rings). A ring that fills up (or is finalized) is
// sealed and a fresh ring is appended; dequeuers advance past sealed,
// drained rings. Outer-list operations are rare, so throughput is
// dominated by the ring operations, as the paper observes.
//
// Both variants are one construction: the rings are consumed through
// the ringcore contract (ringcore.Ring / ringcore.Handle), so the
// kind is a constructor parameter instead of a pair of hand-written
// adapter stacks, and any future ring kind rides along for free.
//
// To keep the paper's "bounded memory usage" story honest under churn,
// drained rings are not abandoned to the garbage collector: a bounded
// free-list (the ring pool) recycles them, so a steady
// burst-and-drain workload reaches a fixed ring population instead of
// allocating a fresh ring per turnover. Recycling a ring while a
// straggler still holds a reference would be unsound, so each list
// node carries a pin counter and a retired flag (see the comment on
// node); a ring whose node is pinned at retirement is simply left to
// the GC.
//
// Faithfulness note: the appendix links rings with the CRTurn wait-free
// list so the WHOLE unbounded queue is wait-free. This port uses the
// Michael & Scott-style outer list that LSCQ/LCRQ use (the paper's own
// LSCQ formulation); the rings retain their wait-free/lock-free
// progress and the list itself is lock-free, but ring turnover
// briefly serializes on the recycling pool's mutex (once per ringCap
// values). ARCHITECTURE.md records both substitutions.
package unbounded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/pad"
	"repro/internal/ringcore"
)

// DefaultPoolRings is the default capacity of the sealed-ring
// free-list: how many drained rings a queue retains for reuse before
// handing surplus rings to the garbage collector.
const DefaultPoolRings = 4

// node is one link of the outer list. Nodes are never reused (only
// their rings are), so the head/tail/next pointers cannot suffer ABA.
//
// pins and retired implement the reclamation handshake that makes
// ring recycling safe: every operation pins the node before touching
// its ring and re-checks retired afterwards, while the dequeuer that
// advances head past the node stores retired BEFORE loading pins.
// With Go's sequentially consistent atomics, either the straggler's
// pin is visible to the retirer (the ring is left to the GC) or the
// retirement is visible to the straggler (it backs off without
// touching the ring). Only unpinned retired rings enter the pool, so
// a recycled ring is reachable exclusively through its new node.
type node[T any] struct {
	r       ringcore.Ring[T]
	next    atomic.Pointer[node[T]]
	pins    atomic.Int64
	retired atomic.Bool
}

// Queue is an unbounded MPMC FIFO of values of type T, linking bounded
// rings of the configured kind. Enqueue never reports full: a sealed
// or full tail ring is replaced by a fresh (pooled or newly allocated)
// ring.
//
//wfq:isolate
type Queue[T any] struct {
	_       pad.Line
	head    atomic.Pointer[node[T]]
	_       pad.Line
	tail    atomic.Pointer[node[T]]
	_       pad.Line
	mk      func() (ringcore.Ring[T], error)
	met     *metrics.Sink //wfq:stable nil = disabled; shared with the rings via Options
	pool    ringPool[T]
	allocd  atomic.Int64 //wfq:cold rings ever constructed: once per turnover
	reused  atomic.Int64 //wfq:cold rings served from the pool: once per turnover
	handles atomic.Int64 //wfq:cold registration only
	// maxHandles bounds Handle() calls (0 = unlimited). Census kinds
	// (wCQ) set it to the per-ring thread census so view registration
	// can never fail.
	maxHandles int
	ringCap    uint64
	kind       ringcore.Kind
}

// Handle is a goroutine's view of a Queue. It lazily obtains (and
// caches, per ring) a view of each ring generation it touches. A
// Handle must not be used by two goroutines concurrently.
type Handle[T any] struct {
	q     *Queue[T]
	mu    sync.Mutex // protects views (a handle may be polled from tests)
	views map[ringcore.Ring[T]]ringcore.Handle[T]
}

// New returns an unbounded queue linking rings of the given kind,
// each holding ringCap values (a power of two >= 2). For census ring
// kinds (KindWCQ, the paper's UWCQ) maxThreads bounds Handle — the
// census is per ring, and bounding handles up front is what makes
// every later ring registration infallible; census-free kinds (the
// paper's LSCQ) accept any number of handles and ignore maxThreads.
func New[T any](kind ringcore.Kind, ringCap uint64, maxThreads int, opts *ringcore.Options) (*Queue[T], error) {
	maxHandles := 0
	if kind.Census() {
		if maxThreads < 1 {
			return nil, fmt.Errorf("unbounded: maxThreads must be >= 1 for ring kind %s, got %d", kind, maxThreads)
		}
		maxHandles = maxThreads
	}
	mk := func() (ringcore.Ring[T], error) {
		return ringcore.New[T](kind, ringCap, maxThreads, opts)
	}
	q := &Queue[T]{mk: mk, ringCap: ringCap, maxHandles: maxHandles, kind: kind, met: opts.Sink()}
	q.pool.max = DefaultPoolRings
	first, err := mk()
	if err != nil {
		return nil, err
	}
	n := &node[T]{r: first}
	q.head.Store(n)
	q.tail.Store(n)
	q.allocd.Store(1)
	return q, nil
}

// SetPoolCap resizes the sealed-ring free-list (0 disables recycling).
// Call it before the queue is shared between goroutines.
func (q *Queue[T]) SetPoolCap(n int) { q.pool.max = n }

// Handle returns a per-goroutine view. For census ring kinds it fails
// once maxThreads handles exist.
func (q *Queue[T]) Handle() (*Handle[T], error) {
	if q.maxHandles > 0 && q.handles.Add(1) > int64(q.maxHandles) {
		q.handles.Add(-1)
		return nil, fmt.Errorf("unbounded: handle census exhausted (maxThreads %d)", q.maxHandles)
	}
	return &Handle[T]{q: q, views: make(map[ringcore.Ring[T]]ringcore.Handle[T])}, nil
}

// Kind returns the ring kind the queue links.
func (q *Queue[T]) Kind() ringcore.Kind { return q.kind }

// Metrics returns the sink shared by the queue and its rings (nil when
// metrics are disabled).
func (q *Queue[T]) Metrics() *metrics.Sink { return q.met }

// RingCap returns the capacity of each ring.
func (q *Queue[T]) RingCap() uint64 { return q.ringCap }

// RingsAllocated reports how many rings were ever constructed. With
// recycling, a steady burst/drain workload keeps this flat once the
// pool is primed.
func (q *Queue[T]) RingsAllocated() int64 { return q.allocd.Load() }

// RingsRecycled reports how many ring turnovers were served from the
// pool instead of allocating.
func (q *Queue[T]) RingsRecycled() int64 { return q.reused.Load() }

// Rings returns the number of live rings — the current length of the
// outer list, excluding pooled rings. Racy by nature; for
// introspection and figures.
func (q *Queue[T]) Rings() int {
	n := 0
	for ln := q.head.Load(); ln != nil; ln = ln.next.Load() {
		n++
	}
	return n
}

// Footprint returns the bytes retained right now: every live ring of
// the outer list plus the rings parked in the free-list. This is the
// live-memory signal of the paper's Fig. 10a applied to the unbounded
// variants — it grows while a burst is buffered and shrinks back to
// (1 + pool) rings once drained.
func (q *Queue[T]) Footprint() uint64 {
	f := q.pool.footprint()
	for n := q.head.Load(); n != nil; n = n.next.Load() {
		f += n.r.Footprint()
	}
	return f
}

// view returns this handle's cached view of r, creating it on first
// touch. Entries are pruned only for rings that can no longer recur
// (neither live, nor pooled, nor in flight between structures during
// an append or a retire), so a handle registers with any given ring
// at most once — the invariant that keeps wCQ's per-ring census
// sufficient.
//
//wfq:allocok per-ring view cache: registers once per ring generation
func (h *Handle[T]) view(r ringcore.Ring[T]) (ringcore.Handle[T], error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.views[r]; ok {
		return v, nil
	}
	v, err := r.Acquire()
	if err != nil {
		return nil, err
	}
	h.views[r] = v
	if len(h.views) > 16 {
		keep := h.q.reachableRings()
		for k := range h.views {
			if !keep[k] {
				delete(h.views, k)
			}
		}
	}
	return v, nil
}

// reachableRings snapshots every ring that can still recur: live,
// pooled, or in flight between structures. The whole snapshot runs
// under the pool mutex — every transition between the three states
// takes that lock (takeRing/linkRing/put/markInflight), so a ring
// mid-transition is always caught in at least one scan; a two-phase
// snapshot without the lock could miss a ring that moved from pool to
// live list between the scans (linkRing unmarks only after the node
// is linked), and a missed ring costs a second census registration on
// reuse.
func (q *Queue[T]) reachableRings() map[ringcore.Ring[T]]bool {
	keep := map[ringcore.Ring[T]]bool{}
	q.pool.mu.Lock()
	defer q.pool.mu.Unlock()
	for ln := q.head.Load(); ln != nil; ln = ln.next.Load() {
		keep[ln.r] = true
	}
	for _, r := range q.pool.rings {
		keep[r] = true
	}
	for r := range q.pool.inflight {
		keep[r] = true
	}
	return keep
}

// takeRing produces the next tail ring: from the pool when one is
// parked there, freshly allocated otherwise. Either way the ring is
// registered as in flight until linkRing or returnRing retires the
// append, so concurrent view pruning cannot orphan census
// registrations.
//
//wfq:allocok ring turnover: pooled or freshly allocated, once per ringCap values
func (q *Queue[T]) takeRing() (ringcore.Ring[T], error) {
	if r, ok := q.pool.get(); ok {
		r.Reset()
		q.reused.Add(1)
		q.met.Inc(metrics.RingPoolHit)
		return r, nil
	}
	r, err := q.mk()
	if err != nil {
		return nil, err
	}
	q.pool.markInflight(r)
	q.allocd.Add(1)
	q.met.Inc(metrics.RingAlloc)
	return r, nil
}

// linkRing retires a successful append.
//
//wfq:allocok mutex-guarded turnover bookkeeping
func (q *Queue[T]) linkRing(r ringcore.Ring[T]) { q.pool.unmarkInflight(r) }

// returnRing retires a lost append: the seeded value is reclaimed by
// the caller beforehand, and the (sealed, drained) ring goes back to
// the pool.
//
//wfq:allocok mutex-guarded turnover bookkeeping
func (q *Queue[T]) returnRing(r ringcore.Ring[T]) {
	r.Seal()
	q.pool.put(r)
	q.met.Inc(metrics.RingRecycle)
}

// Enqueue appends v. It always succeeds: a sealed or full tail ring is
// sealed for good and replaced by a fresh one, seeded with v (as
// Enqueue_Unbounded does in Fig. 13). The returned error is reserved
// for broken invariants (ring construction or census failures that the
// constructors rule out); callers that used the constructors can treat
// it as impossible.
//
//wfq:noalloc
func (h *Handle[T]) Enqueue(v T) error {
	q := h.q
	met := q.met // hoisted: loop-invariant (//wfq:stable)
	for {
		ltail := q.tail.Load()
		ltail.pins.Add(1)
		if ltail.retired.Load() {
			// Head already passed this node; its ring may be recycled.
			// A retired node always has a successor, so help the
			// stalled linker advance tail instead of spinning on the
			// stale pointer until that goroutine resumes.
			ltail.pins.Add(-1)
			if next := ltail.next.Load(); next != nil {
				q.tail.CompareAndSwap(ltail, next)
			}
			continue
		}
		if next := ltail.next.Load(); next != nil {
			ltail.pins.Add(-1)
			q.tail.CompareAndSwap(ltail, next)
			continue
		}
		view, err := h.view(ltail.r)
		if err != nil {
			ltail.pins.Add(-1)
			return err
		}
		if view.EnqueueSealed(v) {
			ltail.pins.Add(-1)
			return nil
		}
		// Full or finalized: seal it and append a fresh ring seeded
		// with v.
		ltail.r.Seal()
		nr, err := q.takeRing()
		if err != nil {
			ltail.pins.Add(-1)
			return err
		}
		nv, err := h.view(nr)
		if err != nil {
			q.pool.unmarkInflight(nr) // don't leak the taken ring
			ltail.pins.Add(-1)
			return err
		}
		if !nv.EnqueueSealed(v) {
			q.pool.unmarkInflight(nr)
			ltail.pins.Add(-1)
			return fmt.Errorf("unbounded: fresh ring rejected enqueue") //wfq:ignore hotalloc broken-invariant path
		}
		nn := &node[T]{r: nr} //wfq:ignore hotalloc growth path: one node per ring turnover
		if ltail.next.CompareAndSwap(nil, nn) {
			q.tail.CompareAndSwap(ltail, nn)
			q.linkRing(nr)
			met.Inc(metrics.RingSeal)
			ltail.pins.Add(-1)
			return nil
		}
		// Lost the append race: reclaim the seed (the ring was never
		// linked, so this handle still owns it exclusively) and park
		// the ring for reuse, then retry with the winner's ring.
		nv.Dequeue()
		q.returnRing(nr)
		ltail.pins.Add(-1)
	}
}

// Dequeue removes the oldest value; ok is false when the whole queue
// is empty. Errors are reserved for broken invariants, like Enqueue's.
//
//wfq:noalloc
func (h *Handle[T]) Dequeue() (v T, ok bool, err error) {
	q := h.q
	var zero T
	for {
		lhead := q.head.Load()
		lhead.pins.Add(1)
		if lhead.retired.Load() {
			lhead.pins.Add(-1)
			continue
		}
		view, verr := h.view(lhead.r)
		if verr != nil {
			lhead.pins.Add(-1)
			return zero, false, verr
		}
		if v, ok := view.Dequeue(); ok {
			lhead.pins.Add(-1)
			return v, true, nil
		}
		next := lhead.next.Load()
		if next == nil {
			lhead.pins.Add(-1)
			return zero, false, nil // no successor: genuinely empty
		}
		if !lhead.r.Drained() {
			lhead.pins.Add(-1)
			continue // in-flight enqueues may still land here
		}
		// One more look after the drain barrier, then advance. The
		// ring is marked in flight BEFORE the head CAS: from the
		// moment the CAS unlinks it until retire hands it to the pool
		// (or abandons it), the node is on no reachable structure, and
		// without the mark a concurrent view prune in that window
		// would drop a view of a ring that can still recur — costing
		// a second (census-consuming) registration on reuse.
		if v, ok := view.Dequeue(); ok {
			lhead.pins.Add(-1)
			return v, true, nil
		}
		q.pool.markInflight(lhead.r)
		advanced := q.head.CompareAndSwap(lhead, next)
		lhead.pins.Add(-1)
		if advanced {
			q.retire(lhead)
		} else {
			q.pool.unmarkInflight(lhead.r)
		}
	}
}

// EnqueueBatch appends vs in order, filling the current tail ring with
// its native batch reservation and rolling over to a fresh ring with
// the remainder on partial success — so a batch larger than one ring's
// free space spans rings without losing its internal order. Like
// Enqueue it always succeeds; the error is reserved for broken
// invariants.
//
//wfq:noalloc
func (h *Handle[T]) EnqueueBatch(vs []T) error {
	q := h.q
	met := q.met // hoisted: loop-invariant (//wfq:stable)
	sent := 0
	for sent < len(vs) {
		ltail := q.tail.Load()
		ltail.pins.Add(1)
		if ltail.retired.Load() {
			// Same as the scalar path: help the stalled linker advance.
			ltail.pins.Add(-1)
			if next := ltail.next.Load(); next != nil {
				q.tail.CompareAndSwap(ltail, next)
			}
			continue
		}
		if next := ltail.next.Load(); next != nil {
			ltail.pins.Add(-1)
			q.tail.CompareAndSwap(ltail, next)
			continue
		}
		view, err := h.view(ltail.r)
		if err != nil {
			ltail.pins.Add(-1)
			return err
		}
		if n := view.EnqueueSealedBatch(vs[sent:]); n > 0 {
			sent += n
			if sent == len(vs) {
				ltail.pins.Add(-1)
				return nil
			}
		}
		// Full or finalized mid-batch: seal it and append a fresh ring
		// seeded with as much of the remainder as fits.
		ltail.r.Seal()
		nr, err := q.takeRing()
		if err != nil {
			ltail.pins.Add(-1)
			return err
		}
		nv, err := h.view(nr)
		if err != nil {
			q.pool.unmarkInflight(nr) // don't leak the taken ring
			ltail.pins.Add(-1)
			return err
		}
		m := nv.EnqueueSealedBatch(vs[sent:])
		if m == 0 {
			q.pool.unmarkInflight(nr)
			ltail.pins.Add(-1)
			return fmt.Errorf("unbounded: fresh ring rejected batch enqueue") //wfq:ignore hotalloc broken-invariant path
		}
		nn := &node[T]{r: nr} //wfq:ignore hotalloc growth path: one node per ring turnover
		if ltail.next.CompareAndSwap(nil, nn) {
			q.tail.CompareAndSwap(ltail, nn)
			q.linkRing(nr)
			met.Inc(metrics.RingSeal)
			ltail.pins.Add(-1)
			sent += m
			continue // a batch larger than a ring keeps rolling
		}
		// Lost the append race: reclaim the seeds (the ring was never
		// linked, so this handle still owns it exclusively) and park
		// the ring for reuse, then retry with the winner's ring.
		for j := 0; j < m; j++ {
			nv.Dequeue()
		}
		q.returnRing(nr)
		ltail.pins.Add(-1)
	}
	return nil
}

// DequeueBatch fills a prefix of out with the oldest values, draining
// across ring boundaries (a drained head ring is retired and the scan
// continues on its successor) without reordering — ring G is drained
// before any value of ring G+1 is taken, so FIFO survives the batch.
// It returns how many values were written; 0 means the whole queue
// appeared empty. A batch cut short by a ring whose producers are
// still in flight returns the partial prefix instead of spinning.
//
//wfq:noalloc
func (h *Handle[T]) DequeueBatch(out []T) (int, error) {
	q := h.q
	filled := 0
	for filled < len(out) {
		lhead := q.head.Load()
		lhead.pins.Add(1)
		if lhead.retired.Load() {
			lhead.pins.Add(-1)
			continue
		}
		view, verr := h.view(lhead.r)
		if verr != nil {
			lhead.pins.Add(-1)
			return filled, verr
		}
		if n := view.DequeueBatch(out[filled:]); n > 0 {
			filled += n
			lhead.pins.Add(-1)
			continue
		}
		next := lhead.next.Load()
		if next == nil {
			lhead.pins.Add(-1)
			return filled, nil // no successor: nothing more buffered
		}
		if !lhead.r.Drained() {
			lhead.pins.Add(-1)
			if filled > 0 {
				return filled, nil // partial batch beats spinning on in-flight enqueues
			}
			continue
		}
		// One more look after the drain barrier, then advance (the same
		// in-flight marking protocol as the scalar Dequeue).
		if n := view.DequeueBatch(out[filled:]); n > 0 {
			filled += n
			lhead.pins.Add(-1)
			continue
		}
		q.pool.markInflight(lhead.r)
		advanced := q.head.CompareAndSwap(lhead, next)
		lhead.pins.Add(-1)
		if advanced {
			q.retire(lhead)
		} else {
			q.pool.unmarkInflight(lhead.r)
		}
	}
	return filled, nil
}

// retire runs on the dequeuer that advanced head past n (which marked
// n.r in flight before its CAS): mark the node retired, then recycle
// its ring only if no straggler holds a pin (see the node comment for
// why this order is the whole proof). Either path releases the
// in-flight mark.
//
//wfq:allocok mutex-guarded turnover bookkeeping
func (q *Queue[T]) retire(n *node[T]) {
	n.retired.Store(true)
	if n.pins.Load() == 0 {
		q.pool.put(n.r)
		q.met.Inc(metrics.RingRecycle)
		return
	}
	// Pinned: a straggler may still touch the ring; leave it to the GC.
	q.pool.unmarkInflight(n.r)
}

// ringPool is the bounded sealed-ring free-list. It also tracks rings
// that are "in flight" between leaving the pool (or allocation) and
// being linked at the tail, so Handle.view pruning never drops a view
// of a ring that can come back.
type ringPool[T any] struct {
	mu    sync.Mutex
	rings []ringcore.Ring[T] // LIFO: the most recently drained ring is the cache-warmest
	// inflight is a reference count per ring: dequeuers racing the
	// same head CAS each take a mark, and only the last release drops
	// the ring from the reachable set.
	inflight map[ringcore.Ring[T]]int
	max      int
}

// get removes a parked ring and marks it in flight.
func (p *ringPool[T]) get() (ringcore.Ring[T], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.rings) == 0 {
		return nil, false
	}
	r := p.rings[len(p.rings)-1]
	p.rings = p.rings[:len(p.rings)-1]
	p.markInflightLocked(r)
	return r, true
}

// put parks a sealed, drained, unreachable ring for reuse; when the
// pool is full the ring is dropped for the GC. Either way the
// caller's in-flight mark is released.
func (p *ringPool[T]) put(r ringcore.Ring[T]) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.unmarkInflightLocked(r)
	if len(p.rings) < p.max {
		p.rings = append(p.rings, r)
	}
}

//wfq:allocok mutex-guarded turnover bookkeeping
func (p *ringPool[T]) markInflight(r ringcore.Ring[T]) {
	p.mu.Lock()
	p.markInflightLocked(r)
	p.mu.Unlock()
}

func (p *ringPool[T]) markInflightLocked(r ringcore.Ring[T]) {
	if p.inflight == nil {
		p.inflight = map[ringcore.Ring[T]]int{}
	}
	p.inflight[r]++
}

//wfq:allocok mutex-guarded turnover bookkeeping
func (p *ringPool[T]) unmarkInflight(r ringcore.Ring[T]) {
	p.mu.Lock()
	p.unmarkInflightLocked(r)
	p.mu.Unlock()
}

func (p *ringPool[T]) unmarkInflightLocked(r ringcore.Ring[T]) {
	if n := p.inflight[r]; n > 1 {
		p.inflight[r] = n - 1
	} else {
		delete(p.inflight, r)
	}
}

// footprint sums the parked rings' allocation.
func (p *ringPool[T]) footprint() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var f uint64
	for _, r := range p.rings {
		f += r.Footprint()
	}
	return f
}

// Empty reports that the queue held no unclaimed value relevant to
// per-producer ordering at some instant during the call: the outer
// list was a single node (head == tail) and that node's ring counters
// had caught up. One-sided, like the bounded cores' probe: any value a
// sequential producer enqueued before this call was either in that
// lone ring (then the ring probe proves it was claimed) or in a ring
// already drained. Values other producers land concurrently in a
// successor ring carry no ordering obligation toward this probe's
// caller — the blocking facade, like the sharded queue, promises
// per-handle FIFO only.
//
//wfq:noalloc
func (q *Queue[T]) Empty() bool {
	h := q.head.Load()
	return h == q.tail.Load() && h.r.Empty()
}

// Pooled reports how many rings are currently parked in the free-list.
func (q *Queue[T]) Pooled() int {
	q.pool.mu.Lock()
	defer q.pool.mu.Unlock()
	return len(q.pool.rings)
}

// Core exposes the unbounded queue through the ringcore.Core contract
// so compositions consume it exactly like a bounded core: the sharded
// queue's unbounded shards and the registry's generic adapter both go
// through this. Cap reports 0 (no bound) and Footprint stays live.
// The handles it acquires convert this package's invariant errors to
// panics — the constructors rule them out, and a panic surfaces a
// broken invariant loudly instead of reading as a full/empty queue
// callers would spin on forever.
func (q *Queue[T]) Core() ringcore.Core[T] { return ubCore[T]{q} }

// ubCore adapts *Queue to ringcore.Core.
type ubCore[T any] struct{ q *Queue[T] }

func (c ubCore[T]) Acquire() (ringcore.Handle[T], error) {
	h, err := c.q.Handle()
	if err != nil {
		return nil, err
	}
	return ubHandle[T]{h}, nil
}
func (c ubCore[T]) Cap() uint64         { return 0 }
func (c ubCore[T]) Footprint() uint64   { return c.q.Footprint() }
func (c ubCore[T]) Empty() bool         { return c.q.Empty() }
func (c ubCore[T]) Kind() ringcore.Kind { return c.q.kind }

// Stats snapshots the queue's metrics sink: the linked rings record
// their core events into the same sink (threaded through Options), so
// one snapshot covers ring turnover AND the per-ring slow paths.
func (c ubCore[T]) Stats() metrics.Snapshot { return c.q.met.Snapshot() }

// Rings forwards the live ring count for gauge exporters that reach
// the composition through ringcore.Core.
func (c ubCore[T]) Rings() int { return c.q.Rings() }

// ubHandle adapts *Handle to ringcore.Handle: enqueues always succeed
// (the queue grows), the sealed variants are plain enqueues (an
// unbounded composite is never sealed), and invariant errors panic.
type ubHandle[T any] struct{ h *Handle[T] }

//wfq:noalloc
func (h ubHandle[T]) Enqueue(v T) bool {
	if err := h.h.Enqueue(v); err != nil {
		panic("unbounded: enqueue invariant broken: " + err.Error())
	}
	return true
}

//wfq:noalloc
func (h ubHandle[T]) Dequeue() (T, bool) {
	v, ok, err := h.h.Dequeue()
	if err != nil {
		panic("unbounded: dequeue invariant broken: " + err.Error())
	}
	return v, ok
}

//wfq:noalloc
func (h ubHandle[T]) EnqueueBatch(vs []T) int {
	if err := h.h.EnqueueBatch(vs); err != nil {
		panic("unbounded: batch enqueue invariant broken: " + err.Error())
	}
	return len(vs)
}

//wfq:noalloc
func (h ubHandle[T]) DequeueBatch(out []T) int {
	n, err := h.h.DequeueBatch(out)
	if err != nil {
		panic("unbounded: batch dequeue invariant broken: " + err.Error())
	}
	return n
}

//wfq:noalloc
func (h ubHandle[T]) EnqueueSealed(v T) bool { return h.Enqueue(v) }

//wfq:noalloc
func (h ubHandle[T]) EnqueueSealedBatch(vs []T) int { return h.EnqueueBatch(vs) }
