package pad

import (
	"testing"
	"unsafe"
)

// The whole point of this package is byte-exact layout; these tests
// pin it so a refactor (or a new field) cannot silently reintroduce
// false sharing.

func TestLineSize(t *testing.T) {
	if s := unsafe.Sizeof(Line{}); s != CacheLineSize {
		t.Fatalf("Line occupies %d bytes, want %d", s, CacheLineSize)
	}
}

func TestPaddedSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s != CacheLineSize {
		t.Fatalf("Uint64 occupies %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Int64{}); s != CacheLineSize {
		t.Fatalf("Int64 occupies %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Bool{}); s != CacheLineSize {
		t.Fatalf("Bool occupies %d bytes, want %d", s, CacheLineSize)
	}
}

func TestAdjacentElementsDoNotShareLines(t *testing.T) {
	var pair [2]Uint64
	a := uintptr(unsafe.Pointer(&pair[0].V))
	b := uintptr(unsafe.Pointer(&pair[1].V))
	if b-a < CacheLineSize {
		t.Fatalf("adjacent Uint64 values %d bytes apart, want >= %d", b-a, CacheLineSize)
	}
}

func TestAtomicsUsable(t *testing.T) {
	var u Uint64
	u.V.Store(42)
	if u.V.Add(1) != 43 {
		t.Fatal("padded Uint64 atomic broken")
	}
	var i Int64
	i.V.Store(-7)
	if i.V.Load() != -7 {
		t.Fatal("padded Int64 atomic broken")
	}
	var b Bool
	b.V.Store(true)
	if !b.V.Load() {
		t.Fatal("padded Bool atomic broken")
	}
}
