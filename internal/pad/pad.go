// Package pad provides cache-line padding primitives used to keep hot
// atomic words of the queue implementations on separate cache lines.
//
// All queues in this repository follow the paper's layout discipline:
// Head, Tail and Threshold each live on their own cache line, and ring
// entries are permuted by internal/ring.Remap so that logically adjacent
// slots land on different lines.
package pad

import "sync/atomic"

// CacheLineSize is the assumed cache line (and padding) granularity in
// bytes. 64 is correct for x86-64 and most AArch64 parts; using a larger
// value would only waste a little memory, never break correctness.
const CacheLineSize = 64

// Line is an opaque pad occupying exactly one cache line.
//
//wfq:padded
type Line [CacheLineSize]byte

// Uint64 is an atomic uint64 padded to occupy a full cache line, so that
// two adjacent Uint64s never exhibit false sharing.
//
//wfq:padded
type Uint64 struct {
	V atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Int64 is an atomic int64 padded to a full cache line.
//
//wfq:padded
type Int64 struct {
	V atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Bool is an atomic bool padded to a full cache line. atomic.Bool
// wraps a uint32, so the pad is CacheLineSize-4, not CacheLineSize-1.
//
//wfq:padded
type Bool struct {
	V atomic.Bool
	_ [CacheLineSize - 4]byte
}
