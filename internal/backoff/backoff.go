// Package backoff provides the waiting-side primitives behind the
// blocking facade's adaptive spin-then-park machinery and the
// harness's idle loops: a seeded per-waiter xorshift stream, the two
// classic jittered sleep strategies (full jitter and decorrelated
// jitter, both clamped to [base, cap]), an EWMA spin-budget
// controller, and an escalating Backoff iterator for poll loops that
// must not burn a core.
//
// Everything here is deterministic under a fixed seed — the property
// tests replay streams — and the spin-path primitives carry
// //wfq:noalloc so the hotalloc analyzer proves they may be called
// from hot paths without voiding the zero-alloc guarantee. Only the
// sleeping phase of Backoff.Wait touches the timer wheel.
package backoff

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Rand is one waiter's private xorshift64 stream: no locks, no shared
// state, deterministic from its seed. The zero value is usable (it
// self-seeds on first Next), so it can live inline in a handle struct.
type Rand struct{ s uint64 }

// seedMix is the odd constant (2^64/phi) used to spread small integer
// seeds across the state space, and the self-seed of a zero Rand.
const seedMix = 0x9e3779b97f4a7c15

// NewRand returns a stream seeded from seed; distinct seeds give
// distinct streams, and a zero seed is replaced so the xorshift state
// never sticks at its one fixed point.
func NewRand(seed uint64) Rand {
	return Rand{s: seed*seedMix + 1}
}

// Next advances the stream (xorshift64) and returns the next value.
//
//wfq:noalloc
func (r *Rand) Next() uint64 {
	x := r.s
	if x == 0 {
		x = seedMix
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

// Intn returns a value in [0, n); n must be positive. The modulo bias
// is irrelevant at jitter precision.
//
//wfq:noalloc
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// FullJitter is the AWS-style "full jitter" sleep: uniform in
// [base, min(cap, base<<attempt)]. The result is always within
// [base, cap]; attempt 0 yields base exactly.
func FullJitter(r *Rand, base, cap time.Duration, attempt int) time.Duration {
	base, cap = clampBounds(base, cap)
	ceil := expCeil(base, cap, attempt)
	span := int64(ceil - base)
	if span <= 0 {
		return base
	}
	return base + time.Duration(r.Next()%uint64(span+1))
}

// Decorrelated is the "decorrelated jitter" sleep: uniform in
// [base, min(cap, 3*prev)], where prev is the previous sleep (values
// below base are treated as base, so the first call draws from
// [base, 3*base]). The result is always within [base, cap].
func Decorrelated(r *Rand, base, cap, prev time.Duration) time.Duration {
	base, cap = clampBounds(base, cap)
	if prev < base {
		prev = base
	}
	ceil := prev * 3
	if ceil > cap || ceil < prev { // overflow-safe
		ceil = cap
	}
	span := int64(ceil - base)
	if span <= 0 {
		return base
	}
	return base + time.Duration(r.Next()%uint64(span+1))
}

// clampBounds normalizes sleep bounds: base must be positive and cap
// at least base.
func clampBounds(base, cap time.Duration) (time.Duration, time.Duration) {
	if base <= 0 {
		base = time.Microsecond
	}
	if cap < base {
		cap = base
	}
	return base, cap
}

// expCeil is min(cap, base<<attempt) with shift-overflow protection.
func expCeil(base, cap time.Duration, attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 62 {
		return cap
	}
	c := base << uint(attempt)
	if c > cap || c < base {
		return cap
	}
	return c
}

// Kind selects a wait strategy for the blocking facade.
type Kind uint8

const (
	// KindAdaptive is the default: a bounded spin whose budget tracks
	// the observed spin-success rate (EWMA over spin-hit/park
	// outcomes), then a short jittered yield phase, then a futex park.
	// Uncontended points converge to pure spin; oversubscribed ones to
	// immediate park.
	KindAdaptive Kind = iota
	// KindSpin always spends the full spin and yield budgets before
	// parking, regardless of the observed hit rate.
	KindSpin
	// KindPark parks immediately — the pre-adaptive behavior, kept as
	// the relative baseline the perf-smoke wait gate compares against.
	KindPark
)

// Strategy tunes the three-phase wait machine and the staggered
// wake-all. A nil *Strategy selects every default (KindAdaptive), so
// the knob can be threaded through option structs unconditionally.
// Fields left zero take their documented defaults.
type Strategy struct {
	// Kind picks the wait mode (default KindAdaptive).
	Kind Kind
	// MaxSpin bounds the phase-1 condition re-checks per wait
	// (default 64). The adaptive kind scales its live budget within
	// [0, MaxSpin]; KindSpin always spends all of it.
	MaxSpin int
	// MaxYields bounds the phase-2 Gosched re-checks per wait
	// (default 16); the actual count is jittered in [1, MaxYields].
	MaxYields int
	// WakeTranche sizes the staggered WakeAll release tranches
	// (default GOMAXPROCS at wake time).
	WakeTranche int
	// Jitter picks the sleep-jitter shape of the Backoff iterator's
	// sleeping phase (default JitterFull).
	Jitter Jitter
	// SleepBase and SleepCap bound the Backoff iterator's jittered
	// sleeps (defaults 1µs and 128µs). The park path never sleeps —
	// these exist for poll loops outside the parking lot (the
	// open-loop harness's non-blocking producers and consumers).
	SleepBase time.Duration
	SleepCap  time.Duration
}

// Jitter selects the sleep-jitter shape.
type Jitter uint8

const (
	// JitterFull draws each sleep uniformly from [base, base<<attempt]
	// (clamped to cap): sleeps are independent, spreading a herd of
	// waiters across the whole window every time.
	JitterFull Jitter = iota
	// JitterDecorrelated draws from [base, 3*previous] (clamped to
	// cap): sleeps random-walk toward the cap, which backs a persistent
	// idler off harder while staying jittered.
	JitterDecorrelated
)

// Defaults, exported so tests and docs state them once.
const (
	DefaultMaxSpin   = 64
	DefaultMaxYields = 16
)

const (
	defaultSleepBase = time.Microsecond
	defaultSleepCap  = 128 * time.Microsecond
)

// Adaptive returns the default strategy (explicitly).
func Adaptive() *Strategy { return &Strategy{Kind: KindAdaptive} }

// Spin returns the fixed-budget spin-then-park strategy.
func Spin() *Strategy { return &Strategy{Kind: KindSpin} }

// Park returns the park-immediately strategy (the pre-adaptive
// behavior, and the perf-smoke gate's baseline).
func Park() *Strategy { return &Strategy{Kind: KindPark} }

// ByName resolves a flag value to its strategy; the names are the
// -wait flag vocabulary.
func ByName(name string) (*Strategy, error) {
	switch name {
	case "", "adaptive":
		return Adaptive(), nil
	case "spin":
		return Spin(), nil
	case "park":
		return Park(), nil
	}
	return nil, fmt.Errorf("backoff: unknown wait strategy %q (have adaptive, spin, park)", name)
}

// Name returns the strategy's flag name; a nil strategy is the
// default "adaptive".
func (s *Strategy) Name() string {
	switch s.Mode() {
	case KindSpin:
		return "spin"
	case KindPark:
		return "park"
	}
	return "adaptive"
}

// Mode returns the kind, defaulting a nil strategy to KindAdaptive.
//
//wfq:noalloc
func (s *Strategy) Mode() Kind {
	if s == nil {
		return KindAdaptive
	}
	return s.Kind
}

// SpinBudget returns the phase-1 bound (default DefaultMaxSpin).
//
//wfq:noalloc
func (s *Strategy) SpinBudget() int {
	if s == nil || s.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return s.MaxSpin
}

// YieldBudget returns the phase-2 bound (default DefaultMaxYields).
//
//wfq:noalloc
func (s *Strategy) YieldBudget() int {
	if s == nil || s.MaxYields <= 0 {
		return DefaultMaxYields
	}
	return s.MaxYields
}

// minWakeTranche floors the default tranche size. On a small-P host
// GOMAXPROCS alone would degenerate to near-per-waiter staggering —
// O(waiters) yields inside the waker's critical path, which throttles
// the very progress the woken waiters are waiting on (a broadcast per
// freed slot turns into a stable re-park herd).
const minWakeTranche = 8

// TrancheSize returns the staggered-wake tranche size; the default is
// GOMAXPROCS sampled at wake time (one runnable waiter per P),
// floored at minWakeTranche.
//
//wfq:noalloc
func (s *Strategy) TrancheSize() int {
	if s == nil || s.WakeTranche <= 0 {
		if g := runtime.GOMAXPROCS(0); g > minWakeTranche {
			return g
		}
		return minWakeTranche
	}
	return s.WakeTranche
}

// SleepBounds returns the Backoff iterator's [base, cap] sleep window.
func (s *Strategy) SleepBounds() (base, cap time.Duration) {
	base, cap = defaultSleepBase, defaultSleepCap
	if s != nil && s.SleepBase > 0 {
		base = s.SleepBase
	}
	if s != nil && s.SleepCap > 0 {
		cap = s.SleepCap
	}
	return clampBounds(base, cap)
}

// jitterKind returns the sleep-jitter shape (nil → JitterFull).
func (s *Strategy) jitterKind() Jitter {
	if s == nil {
		return JitterFull
	}
	return s.Jitter
}

// EWMA tracks a hit rate as a fixed-point exponentially weighted
// moving average, lock-free. The zero value starts at an optimistic
// 1/2 — a fresh wait point earns a real spin phase until the evidence
// says otherwise. Racing observers may each drop an update (plain
// load/CAS, no retry loop); an estimator doesn't care.
type EWMA struct {
	// bits holds rate+1 in ewmaOne fixed point; 0 means "unseeded".
	bits atomic.Uint64
}

const (
	// ewmaOne is fixed-point 1.0.
	ewmaOne = 1 << 16
	// ewmaShift sets alpha = 1/8: ~22 observations to cross from the
	// 0.5 prior to 0.94 under all-hits, a few dozen waits to converge.
	ewmaShift = 3
)

// Observe folds one spin outcome into the rate.
//
//wfq:noalloc
func (e *EWMA) Observe(hit bool) {
	old := e.bits.Load()
	r := old - 1
	if old == 0 {
		r = ewmaOne / 2
	}
	r -= r >> ewmaShift
	if hit {
		r += ewmaOne >> ewmaShift
	}
	e.bits.CompareAndSwap(old, r+1)
}

// Decay quarters the estimate — the response to a Pyrrhic hit, a spin
// that resolved but took longer than a park round-trip would have
// (SpinHitBudget). A miss says spinning is not succeeding; a Pyrrhic
// hit says succeeding is itself unprofitable (the classic symptom of
// an oversubscribed host, where the yield phase only resolves after a
// full scheduler pass), so the estimate drops multiplicatively and
// the budget collapses within two observations instead of ~16 EWMA
// steps.
//
//wfq:noalloc
func (e *EWMA) Decay() {
	old := e.bits.Load()
	r := old - 1
	if old == 0 {
		r = ewmaOne / 2
	}
	e.bits.CompareAndSwap(old, r/4+1)
}

// rateFixed returns the current rate in [0, ewmaOne].
//
//wfq:noalloc
func (e *EWMA) rateFixed() uint64 {
	v := e.bits.Load()
	if v == 0 {
		return ewmaOne / 2
	}
	return v - 1
}

// Rate returns the current hit-rate estimate in [0, 1].
func (e *EWMA) Rate() float64 { return float64(e.rateFixed()) / ewmaOne }

// budgetFloor is the hit rate (ewmaOne fixed point) below which the
// budget collapses to zero: under ~6% of spins succeeding, spinning
// is pure waste and the waiter should park immediately.
const budgetFloor = ewmaOne / 16

// Budget maps the observed hit rate onto a spin budget in
// [0, maxSpin], monotone in the rate: full budget at rate 1, zero
// below budgetFloor.
//
//wfq:noalloc
func (e *EWMA) Budget(maxSpin int) int {
	r := e.rateFixed()
	if r < budgetFloor {
		return 0
	}
	return int(uint64(maxSpin) * r / ewmaOne)
}

// Probe reports whether a zero-budget waiter should spin anyway this
// time (one wait in 16): without occasional probes a point whose
// budget collapsed could never observe that contention has eased, and
// the EWMA would stay pinned at the floor forever.
//
//wfq:noalloc
func Probe(r *Rand) bool { return r.Next()&15 == 0 }

// ProbeSpins is the reduced phase-1 bound a probing wait uses. Probes
// spin only — no yield phase — so a collapsed point samples for eased
// contention without paying (or recording) scheduler-pass latencies.
const ProbeSpins = 8

// SpinHitBudget is the profitability bound on a spin-phase hit: a
// wait that resolves slower than this was slower than parking would
// have been (a futex wake round-trip is single-digit microseconds),
// so the adaptive controller counts it as a Decay rather than a hit.
// Without this bound an oversubscribed host looks like a spin-success
// paradise — yields eventually observe the condition — while every
// "success" costs a full scheduler pass.
const SpinHitBudget = 5 * time.Microsecond

// Backoff is an escalating idle-wait iterator for poll loops outside
// the parking lot (the open-loop harness's non-blocking paths): the
// first SpinBudget Waits are free (pure re-check), the next
// YieldBudget yield the processor, and every Wait after that sleeps a
// jittered duration within the strategy's [SleepBase, SleepCap] —
// so a briefly-blocked loop stays hot while a persistent idler stops
// burning its core. Reset after every success.
type Backoff struct {
	rng   Rand
	strat *Strategy
	n     int
	prev  time.Duration
}

// New returns a Backoff over the strategy's budgets (nil = defaults)
// with its own seeded jitter stream.
func New(strat *Strategy, seed uint64) Backoff {
	return Backoff{rng: NewRand(seed), strat: strat}
}

// Wait blocks (or doesn't) according to the current escalation level,
// then advances it.
func (b *Backoff) Wait() {
	spins := b.strat.SpinBudget()
	yields := b.strat.YieldBudget()
	switch {
	case b.n < spins:
		// Spin level: the caller's re-check is the work.
	case b.n < spins+yields:
		runtime.Gosched()
	default:
		base, cap := b.strat.SleepBounds()
		var d time.Duration
		if b.strat.jitterKind() == JitterDecorrelated {
			d = Decorrelated(&b.rng, base, cap, b.prev)
		} else {
			d = FullJitter(&b.rng, base, cap, b.n-spins-yields)
		}
		b.prev = d
		time.Sleep(d)
	}
	b.n++
}

// Reset drops the escalation back to the spin level; call it after
// the condition the loop was polling for came true.
func (b *Backoff) Reset() { b.n, b.prev = 0, 0 }
