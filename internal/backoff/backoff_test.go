package backoff

import (
	"testing"
	"time"
)

// TestFullJitterBounds: every draw stays within [base, cap] across
// attempts, including the degenerate and overflow-prone corners.
func TestFullJitterBounds(t *testing.T) {
	cases := []struct{ base, cap time.Duration }{
		{time.Microsecond, 128 * time.Microsecond},
		{time.Nanosecond, time.Nanosecond},   // base == cap
		{time.Millisecond, time.Microsecond}, // cap < base: clamped up
		{0, 50 * time.Microsecond},           // base defaulted
		{time.Microsecond, 1 << 62},          // huge cap: shift overflow guard
	}
	for _, c := range cases {
		r := NewRand(1)
		base, cap := clampBounds(c.base, c.cap)
		for attempt := 0; attempt < 70; attempt++ {
			for i := 0; i < 200; i++ {
				d := FullJitter(&r, c.base, c.cap, attempt)
				if d < base || d > cap {
					t.Fatalf("FullJitter(base=%v cap=%v attempt=%d) = %v outside [%v, %v]",
						c.base, c.cap, attempt, d, base, cap)
				}
			}
		}
		if d := FullJitter(&r, c.base, c.cap, 0); d != base {
			t.Fatalf("FullJitter attempt 0 = %v, want base %v", d, base)
		}
	}
}

// TestDecorrelatedBounds: every draw stays within [base, cap] while
// the walk feeds its own output back as prev, and a wild prev (0, or
// past cap) cannot escape the window.
func TestDecorrelatedBounds(t *testing.T) {
	r := NewRand(7)
	base, cap := time.Microsecond, 128*time.Microsecond
	prev := time.Duration(0)
	for i := 0; i < 10_000; i++ {
		d := Decorrelated(&r, base, cap, prev)
		if d < base || d > cap {
			t.Fatalf("Decorrelated draw %d = %v outside [%v, %v] (prev %v)", i, d, base, cap, prev)
		}
		prev = d
	}
	for _, prev := range []time.Duration{0, base - 1, cap, cap * 10, 1 << 62} {
		for i := 0; i < 200; i++ {
			d := Decorrelated(&r, base, cap, prev)
			if d < base || d > cap {
				t.Fatalf("Decorrelated(prev=%v) = %v outside [%v, %v]", prev, d, base, cap)
			}
		}
	}
}

// TestSeededStreamsDeterministic: the same seed replays the identical
// value and jitter sequences; different seeds diverge.
func TestSeededStreamsDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same-seed streams diverged at step %d: %d != %d", i, x, y)
		}
	}
	a, b = NewRand(42), NewRand(42)
	base, cap := time.Microsecond, 256*time.Microsecond
	prevA, prevB := time.Duration(0), time.Duration(0)
	for i := 0; i < 1000; i++ {
		if x, y := FullJitter(&a, base, cap, i%20), FullJitter(&b, base, cap, i%20); x != y {
			t.Fatalf("same-seed FullJitter diverged at step %d: %v != %v", i, x, y)
		}
		x, y := Decorrelated(&a, base, cap, prevA), Decorrelated(&b, base, cap, prevB)
		if x != y {
			t.Fatalf("same-seed Decorrelated diverged at step %d: %v != %v", i, x, y)
		}
		prevA, prevB = x, y
	}
	c, d := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("distinct seeds produced identical streams")
	}
}

// TestZeroRandUsable: the zero Rand self-seeds instead of sticking at
// xorshift's zero fixed point.
func TestZeroRandUsable(t *testing.T) {
	var r Rand
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero Rand stuck at zero")
	}
}

// observe feeds n observations with exactly hits of them hits, spread
// round-robin so every prefix has roughly the target rate.
func observe(e *EWMA, n, hits int) {
	acc := 0
	for i := 0; i < n; i++ {
		acc += hits
		hit := acc >= n
		if hit {
			acc -= n
		}
		e.Observe(hit)
	}
}

// TestEWMABudgetMonotone: after streams of increasing hit rate, both
// the rate estimate and the spin budget are nondecreasing, the
// endpoints behave (all-miss → budget 0, all-hit → full budget), and
// budgets never leave [0, maxSpin].
func TestEWMABudgetMonotone(t *testing.T) {
	const maxSpin = DefaultMaxSpin
	rates := []int{0, 10, 25, 50, 75, 90, 100}
	var prevRate float64 = -1
	prevBudget := -1
	for _, pct := range rates {
		var e EWMA
		observe(&e, 1000, pct*10)
		r, b := e.Rate(), e.Budget(maxSpin)
		if b < 0 || b > maxSpin {
			t.Fatalf("budget %d outside [0, %d] at %d%% hits", b, maxSpin, pct)
		}
		if r < prevRate {
			t.Fatalf("rate not monotone: %f at %d%% hits after %f", r, pct, prevRate)
		}
		if b < prevBudget {
			t.Fatalf("budget not monotone: %d at %d%% hits after %d", b, pct, prevBudget)
		}
		prevRate, prevBudget = r, b
	}
	var miss EWMA
	observe(&miss, 1000, 0)
	if b := miss.Budget(maxSpin); b != 0 {
		t.Fatalf("all-miss budget = %d, want 0", b)
	}
	var hit EWMA
	observe(&hit, 1000, 1000)
	if b := hit.Budget(maxSpin); b < maxSpin*9/10 {
		t.Fatalf("all-hit budget = %d, want ~%d", b, maxSpin)
	}
}

// TestEWMAZeroValueOptimistic: a fresh EWMA grants roughly half the
// budget, so new park points get a real spin phase before any
// evidence accumulates.
func TestEWMAZeroValueOptimistic(t *testing.T) {
	var e EWMA
	if r := e.Rate(); r < 0.45 || r > 0.55 {
		t.Fatalf("zero-value rate = %f, want ~0.5", r)
	}
	if b := e.Budget(DefaultMaxSpin); b < DefaultMaxSpin/3 || b > DefaultMaxSpin {
		t.Fatalf("zero-value budget = %d, want ~%d", b, DefaultMaxSpin/2)
	}
}

// TestEWMADecayCollapses: Decay is the Pyrrhic-hit response — it must
// collapse the budget within two observations from the optimistic
// prior (where plain misses take ~16 EWMA steps), and the estimate
// must stay recoverable through ordinary hits afterwards.
func TestEWMADecayCollapses(t *testing.T) {
	var e EWMA
	e.Decay()
	e.Decay()
	if b := e.Budget(DefaultMaxSpin); b != 0 {
		t.Fatalf("budget after two decays = %d, want 0 (rate %f)", b, e.Rate())
	}
	var slow EWMA
	observe(&slow, 16, 0)
	if slow.Budget(DefaultMaxSpin) != 0 {
		t.Fatalf("16 misses left budget %d; decay must not be slower than this path", slow.Budget(DefaultMaxSpin))
	}
	observe(&e, 40, 40)
	if b := e.Budget(DefaultMaxSpin); b == 0 {
		t.Fatalf("budget did not recover from collapse under all-hit observations (rate %f)", e.Rate())
	}
}

// TestStrategyByName: the flag vocabulary round-trips, nil defaults
// to adaptive, and unknown names error.
func TestStrategyByName(t *testing.T) {
	for _, name := range []string{"adaptive", "spin", "park"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := ByName(""); err != nil || s.Name() != "adaptive" {
		t.Fatalf("ByName(\"\") = %v, %v; want adaptive", s, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
	var nilStrat *Strategy
	if nilStrat.Name() != "adaptive" {
		t.Fatalf("nil strategy Name() = %q, want adaptive", nilStrat.Name())
	}
	if nilStrat.Mode() != KindAdaptive {
		t.Fatal("nil strategy Mode() != KindAdaptive")
	}
	if nilStrat.SpinBudget() != DefaultMaxSpin || nilStrat.YieldBudget() != DefaultMaxYields {
		t.Fatal("nil strategy budgets not defaulted")
	}
	if nilStrat.TrancheSize() < 1 {
		t.Fatal("nil strategy tranche size < 1")
	}
}

// TestBackoffEscalation: the iterator spins for SpinBudget waits,
// yields for YieldBudget more, sleeps after that, and Reset drops it
// back to the free spin level. Timing the spin level would be flaky;
// instead the sleep level is detected by elapsed wall clock.
func TestBackoffEscalation(t *testing.T) {
	strat := &Strategy{MaxSpin: 4, MaxYields: 2, SleepBase: time.Millisecond, SleepCap: 2 * time.Millisecond}
	b := New(strat, 1)
	t0 := time.Now()
	for i := 0; i < 6; i++ { // 4 spins + 2 yields: no sleeping yet
		b.Wait()
	}
	if free := time.Since(t0); free > 500*time.Millisecond {
		t.Fatalf("spin+yield waits took %v; a sleep leaked into the free levels", free)
	}
	t0 = time.Now()
	b.Wait() // first sleeping wait: >= SleepBase
	if slept := time.Since(t0); slept < strat.SleepBase {
		t.Fatalf("sleep-level wait returned after %v, want >= %v", slept, strat.SleepBase)
	}
	b.Reset()
	t0 = time.Now()
	b.Wait() // back at the free spin level
	if free := time.Since(t0); free > 500*time.Millisecond {
		t.Fatalf("post-Reset wait took %v; Reset did not drop the level", free)
	}
}

// TestProbeRate: Probe fires for about 1/16 of draws — enough to keep
// a collapsed budget's EWMA alive, rare enough to stay cheap.
func TestProbeRate(t *testing.T) {
	r := NewRand(3)
	fired := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		if Probe(&r) {
			fired++
		}
	}
	if fired < n/32 || fired > n/8 {
		t.Fatalf("Probe fired %d/%d times, want ~%d", fired, n, n/16)
	}
}
