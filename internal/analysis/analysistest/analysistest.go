// Package analysistest runs an analyzer over small fixture packages
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/ — one directory per
// fixture package. A line expecting a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment; several quoted regexps expect several diagnostics on the
// line. Every diagnostic must be wanted and every want must fire, so a
// fixture is simultaneously the positive case (the analyzer fires
// where expected) and the negative case (it stays silent everywhere
// else).
//
// Fixture packages are type-checked from source; their imports resolve
// first to sibling fixture directories, then to the standard library
// (also from source, so no compiled export data is needed).
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the fixture packages named by pkgpaths (directories
// under testdata/src) with a and reports any mismatch between the
// diagnostics produced and the // want comments in the fixtures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	pkgs := loadFixtures(t, testdata, pkgpaths)
	diags := analysis.Run(pkgs, []*analysis.Analyzer{a}, analysis.DefaultArchSizes())
	checkWants(t, pkgs, diags)
}

// loadFixtures parses and type-checks each fixture package.
func loadFixtures(t *testing.T, testdata string, pkgpaths []string) []*analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		testdata: testdata,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*types.Package{},
	}
	var pkgs []*analysis.Package
	for _, path := range pkgpaths {
		files, info, tpkg := imp.check(t, path)
		pkgs = append(pkgs, &analysis.Package{
			PkgPath:   path,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
			Sizes:     types.SizesFor("gc", "amd64"),
		})
	}
	return pkgs
}

// fixtureImporter resolves fixture import paths from testdata/src and
// everything else from the standard library.
type fixtureImporter struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := parseDir(fi.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: fi, Sizes: types.SizesFor("gc", "amd64")}
		pkg, err := conf.Check(path, fi.fset, files, nil)
		if err != nil {
			return nil, err
		}
		fi.pkgs[path] = pkg
		return pkg, nil
	}
	return fi.std.Import(path)
}

// check type-checks one fixture package, keeping syntax and type info.
func (fi *fixtureImporter) check(t *testing.T, path string) ([]*ast.File, *types.Info, *types.Package) {
	t.Helper()
	dir := filepath.Join(fi.testdata, "src", filepath.FromSlash(path))
	files, err := parseDir(fi.fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", path, err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fi, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	fi.pkgs[path] = tpkg
	return files, info, tpkg
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants matches produced diagnostics against // want comments.
func checkWants(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					sub := wantRe.FindStringSubmatch(c.Text)
					if sub == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, lit := range splitQuoted(t, pos, sub[1]) {
						re, err := regexp.Compile(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: lit})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}

// splitQuoted extracts the double-quoted string literals from the tail
// of a want comment.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var lits []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: want comment must hold quoted regexps, got %q", pos.Filename, pos.Line, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s:%d: unterminated want regexp in %q", pos.Filename, pos.Line, s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %q: %v", pos.Filename, pos.Line, s[:end+1], err)
		}
		lits = append(lits, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	return lits
}
