package rawatomic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rawatomic"
)

func TestRawAtomic(t *testing.T) {
	analysistest.Run(t, "testdata", rawatomic.Analyzer, "rawatomicfix", "internal/atomicx")
}
