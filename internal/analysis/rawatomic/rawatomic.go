// Package rawatomic forbids raw sync/atomic function calls —
// atomic.LoadUint64(&x), atomic.CompareAndSwapUint64(&x, ...) and
// friends — on plain words anywhere outside internal/atomicx.
//
// The repository's contract is typed atomics only: atomic.Uint64 and
// siblings, pad.* padded wrappers, and atomicx.Counter. Typed atomics
// make 32-bit alignment a property of the type system instead of a
// field-ordering convention (a plain uint64 touched with
// atomic.LoadUint64 faults on 386 unless it happens to be 8-aligned),
// and routing every F&A through atomicx.Counter is what lets the
// emulated-F&A mode (CAS loops, for the paper's CAS-only table rows)
// and the counting mode switch implementations without touching call
// sites. internal/atomicx itself is exempt: it is the one place the
// raw functions are allowed to live.
package rawatomic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags raw sync/atomic function calls outside
// internal/atomicx.
var Analyzer = &analysis.Analyzer{
	Name: "rawatomic",
	Doc:  "forbid raw sync/atomic function calls on plain words; use typed atomics, pad.*, or atomicx.Counter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/atomicx") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Methods on atomic.Uint64 etc. are the typed API; only the
			// package-level functions take raw words.
			if fn.Signature().Recv() != nil {
				return true
			}
			pass.Reportf(call.Pos(), "raw atomic.%s call on a plain word; use a typed atomic (atomic.%s, pad.*, or atomicx.Counter)",
				fn.Name(), typedSuggestion(fn.Name()))
			return true
		})
	}
	return nil
}

// typedSuggestion maps a raw function name to the typed atomic that
// replaces it, for the diagnostic text.
func typedSuggestion(raw string) string {
	for _, t := range []string{"Uintptr", "Uint32", "Uint64", "Int32", "Int64", "Pointer"} {
		if strings.HasSuffix(raw, t) {
			return t
		}
	}
	return "Uint64"
}
