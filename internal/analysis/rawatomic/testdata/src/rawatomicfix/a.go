// Package rawatomicfix exercises the rawatomic analyzer: raw
// sync/atomic function calls must fire, the typed API must not.
package rawatomicfix

import "sync/atomic"

type plain struct {
	val  uint64
	next uint32
}

type typed struct {
	val  atomic.Uint64
	flag atomic.Bool
}

func bad(p *plain) uint64 {
	atomic.StoreUint64(&p.val, 1)                  // want "raw atomic.StoreUint64 call"
	atomic.AddUint32(&p.next, 1)                   // want "raw atomic.AddUint32 call"
	if atomic.CompareAndSwapUint64(&p.val, 1, 2) { // want "raw atomic.CompareAndSwapUint64 call"
		return 2
	}
	return atomic.LoadUint64(&p.val) // want "raw atomic.LoadUint64 call"
}

func good(t *typed) uint64 {
	t.val.Store(1)
	t.flag.Store(true)
	if t.val.CompareAndSwap(1, 2) {
		return 2
	}
	return t.val.Load()
}
