// Package atomicx stands in for the real internal/atomicx: the one
// package where raw sync/atomic functions are allowed, so nothing here
// may fire.
package atomicx

import "sync/atomic"

// Add wraps the raw F&A the exemption exists for.
func Add(p *uint64, d uint64) uint64 {
	return atomic.AddUint64(p, d)
}
