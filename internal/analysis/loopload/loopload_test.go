package loopload_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/loopload"
)

func TestLoopLoad(t *testing.T) {
	analysistest.Run(t, "testdata", loopload.Analyzer, "looploadfix")
}
