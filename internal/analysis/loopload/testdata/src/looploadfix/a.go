// Package looploadfix exercises the loopload analyzer: in-loop reads
// of //wfq:stable fields fire, hoisted reads and genuinely mutable
// fields stay silent.
package looploadfix

import "sync/atomic"

type options struct {
	patience int
}

type ring struct {
	mask uint64        //wfq:stable
	opts options       //wfq:stable
	mode atomic.Uint64 //wfq:stable set once at construction
	head atomic.Uint64
	seen uint64
}

func bad(r *ring, vs []uint64) uint64 {
	var acc uint64
	for i := 0; i < len(vs); i++ {
		acc += vs[i] & r.mask                  // want "read of //wfq:stable field ring.mask inside a loop"
		for j := 0; j < r.opts.patience; j++ { // want "read of //wfq:stable field ring.opts inside a loop"
			if r.mode.Load() != 0 { // want "read of //wfq:stable field ring.mode inside a loop"
				break
			}
		}
	}
	return acc
}

func good(r *ring, vs []uint64) uint64 {
	mask := r.mask // hoisted: one load per call
	patience := r.opts.patience
	mode := r.mode.Load()
	var acc uint64
	for i := 0; i < len(vs); i++ {
		acc += vs[i] & mask
		for j := 0; j < patience; j++ {
			if mode != 0 {
				break
			}
		}
		acc += r.head.Load() // head genuinely changes: not stable, silent
		r.seen++             // plain mutable field: silent
	}
	return acc
}

func rangeExpr(r *ring) int {
	n := 0
	for range make([]byte, r.mask) { // range expression evaluates once: silent
		n++
	}
	return n
}

func write(r *ring) {
	for i := 0; i < 3; i++ {
		r.seen = uint64(i)
	}
}
