// Package loopload flags reads of //wfq:stable struct fields inside
// loops: the field never changes after construction, so reading it —
// a plain load, or an atomic .Load() on a set-once word — on every
// attempt re-fetches a loop invariant that belongs in a local.
//
// This is the class PR 4 eliminated by hand when it hoisted the
// patience loads out of the wCQ attempt loops (one field load per
// operation instead of one per attempt); loopload makes the hoisting
// discipline permanent. Head/Tail/Threshold loads are untouched: those
// fields genuinely change and are not //wfq:stable.
//
// A read is flagged when it sits in a for-loop condition, post
// statement, or body (a range expression is evaluated once and stays
// exempt). Writes are not flagged — //wfq:stable asserts they only
// happen during construction, which runs before any loop that
// matters.
package loopload

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags in-loop reads of //wfq:stable fields.
var Analyzer = &analysis.Analyzer{
	Name: "loopload",
	Doc:  "flag loop-invariant reads of //wfq:stable fields inside loops; hoist them to locals",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// span is a half-open position interval.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect the "hot zones": regions re-executed on every loop
	// iteration.
	var zones []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond != nil {
				zones = append(zones, span{n.Cond.Pos(), n.Cond.End()})
			}
			if n.Post != nil {
				zones = append(zones, span{n.Post.Pos(), n.Post.End()})
			}
			zones = append(zones, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			zones = append(zones, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	if len(zones) == 0 {
		return
	}

	// Collect write targets so `q.field = v` / `q.field++` selectors are
	// not treated as reads.
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})

	inZone := func(p token.Pos) bool {
		for _, z := range zones {
			if z.contains(p) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writes[sel] || !inZone(sel.Pos()) {
			return true
		}
		named, fieldName, ok := stableField(pass, sel)
		if !ok {
			return true
		}
		pass.Reportf(sel.Pos(), "read of //wfq:stable field %s.%s inside a loop; hoist it to a local before the loop",
			named.Origin().Obj().Name(), fieldName)
		return true
	})
}

// stableField resolves sel to a //wfq:stable field selection and
// returns the owning named struct type and field name.
func stableField(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Named, string, bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, "", false
	}
	field := selection.Obj()
	if !pass.Index.Stable(named, field.Name()) {
		return nil, "", false
	}
	return named, field.Name(), true
}
