// Package hotalloc enforces the //wfq:noalloc contract: an annotated
// function must contain no allocating construct, and may only call
// functions that themselves uphold the contract.
//
// The runtime AllocsPerRun guards prove specific benchmark paths
// allocation-free; hotalloc complements them with whole-path static
// coverage — every annotated function is checked on every build, not
// just the paths a test happens to drive.
//
// Flagged inside a //wfq:noalloc body:
//
//   - make, new, append, delete, and map writes
//   - &CompositeLit, and slice/map composite literals (plain struct
//     literals passed by value are fine — they stay on the stack)
//   - function literals (closure captures) and go statements
//   - string <-> []byte/[]rune conversions and non-constant string
//     concatenation
//   - interface boxing: passing, assigning, or returning a
//     non-pointer-shaped concrete value where an interface is expected
//   - calls to module-internal functions not annotated //wfq:noalloc
//     or //wfq:allocok, calls to external packages outside the
//     allocation-free whitelist (sync/atomic, math/bits, runtime) and
//     per-function whitelist (time.Now, time.Since — the timestamp
//     sources metrics instrumentation needs on hot paths), and calls
//     through function values
//
// Deliberately allowed:
//
//   - interface method calls (dynamic dispatch itself does not
//     allocate; the concrete implementations carry their own
//     annotations — this is how the ringcore.Handle compositions stay
//     checkable)
//   - panic(...) subtrees (the panic path is cold by definition)
//   - //wfq:allocok functions: their bodies are exempt and they are
//     callable from noalloc paths — for audited amortized or startup
//     allocation such as scratch-buffer growth
//
// An intentional exception on a single line takes a
// //wfq:ignore hotalloc <reason> suppression.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer checks //wfq:noalloc functions for allocating constructs.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs and calls to unvetted functions inside //wfq:noalloc bodies",
	Run:  run,
}

// whitelist is the set of external packages whose functions are known
// allocation-free.
var whitelist = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"runtime":     true,
}

// funcWhitelist admits individual external functions from packages
// that are not allocation-free as a whole. time.Now and time.Since
// are the timestamp sources the metrics layer samples on noalloc hot
// paths (park/wake durations, op-latency histograms); both compile to
// runtime nanotime/walltime calls and return by value.
var funcWhitelist = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective("noalloc", fd.Doc) {
				continue
			}
			w := &walker{pass: pass, decl: fd}
			w.walkStmts(fd.Body.List)
		}
	}
	return nil
}

// walker carries one function's check state.
type walker struct {
	pass *analysis.Pass
	decl *ast.FuncDecl
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, "//wfq:noalloc %s: "+format, append([]any{w.decl.Name.Name}, args...)...)
}

func (w *walker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if idx, ok := lhs.(*ast.IndexExpr); ok && w.isMap(idx.X) {
				w.reportf(lhs.Pos(), "map write")
			}
			w.walkExpr(lhs)
		}
		for i, rhs := range s.Rhs {
			w.walkExpr(rhs)
			// x = v where x is interface-typed boxes v.
			if len(s.Lhs) == len(s.Rhs) {
				if dst, ok := w.pass.TypesInfo.Types[s.Lhs[i]]; ok {
					w.checkBoxing(rhs, dst.Type)
				}
			}
		}
	case *ast.GoStmt:
		w.reportf(s.Pos(), "go statement allocates a goroutine")
	case *ast.DeferStmt:
		w.walkExpr(s.Call)
	case *ast.ReturnStmt:
		sig, _ := w.pass.TypesInfo.Defs[w.decl.Name].(*types.Func)
		for i, r := range s.Results {
			w.walkExpr(r)
			if sig != nil {
				res := sig.Signature().Results()
				if len(s.Results) == res.Len() {
					w.checkBoxing(r, res.At(i).Type())
				}
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		w.walkStmt(s.Post)
		w.walkStmt(s.Body)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.walkExpr(e)
		}
		w.walkStmts(s.Body)
	case *ast.SelectStmt:
		w.walkStmt(s.Body)
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		w.walkStmts(s.Body)
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				w.walkExpr(v)
				if i < len(vs.Names) {
					if obj := w.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
						w.checkBoxing(v, obj.Type())
					}
				}
			}
		}
	}
}

func (w *walker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.FuncLit:
		w.reportf(e.Pos(), "function literal (closure) allocates")
	case *ast.CompositeLit:
		w.checkCompositeLit(e)
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.reportf(e.Pos(), "&composite literal escapes to the heap")
			w.walkCompositeElts(cl)
			return
		}
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
		if e.Op == token.ADD {
			if tv, ok := w.pass.TypesInfo.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
				w.reportf(e.Pos(), "non-constant string concatenation allocates")
			}
		}
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.IndexListExpr:
		w.walkExpr(e.X)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	}
}

// walkCall dispatches one call expression: builtins, conversions,
// static calls, interface dispatch, and dynamic calls.
func (w *walker) walkCall(call *ast.CallExpr) {
	// Conversions: T(x).
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		w.checkConversion(call, tv.Type)
		for _, a := range call.Args {
			w.walkExpr(a)
		}
		return
	}

	switch callee := w.callee(call).(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "panic":
			return // cold path: skip the whole subtree
		case "make":
			w.reportf(call.Pos(), "make allocates")
		case "new":
			w.reportf(call.Pos(), "new allocates")
		case "append":
			w.reportf(call.Pos(), "append may grow its backing array")
		case "delete":
			w.reportf(call.Pos(), "map op")
		}
		for _, a := range call.Args {
			w.walkExpr(a)
		}
		return
	case *types.Func:
		w.checkStaticCall(call, callee)
	default:
		// No static callee: a call through a function value.
		if !w.isInterfaceDispatch(call) {
			w.reportf(call.Pos(), "call through a function value cannot be vetted; name the function and annotate it")
		}
	}

	w.walkExpr(call.Fun)
	for _, a := range call.Args {
		w.walkExpr(a)
	}
	w.checkArgBoxing(call)
}

// callee resolves the called object, if any.
func (w *walker) callee(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return w.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return w.pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			return w.pass.TypesInfo.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return w.pass.TypesInfo.Uses[id]
		}
	}
	return nil
}

// isInterfaceDispatch reports whether call is a method call through an
// interface (or type-parameter) receiver.
func (w *walker) isInterfaceDispatch(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if _, ok := recv.Underlying().(*types.Interface); ok {
		return true
	}
	_, isTypeParam := recv.(*types.TypeParam)
	return isTypeParam
}

// checkStaticCall enforces the call rule: interface dispatch is
// allowed; module-internal callees must be //wfq:noalloc or
// //wfq:allocok; external callees must be whitelisted.
func (w *walker) checkStaticCall(call *ast.CallExpr, fn *types.Func) {
	if w.isInterfaceDispatch(call) {
		return // concrete implementations carry their own annotations
	}
	if fn.Pkg() == nil {
		return // error.Error, unsafe builtins, etc.
	}
	path := fn.Pkg().Path()
	if w.sameModule(path) {
		if !w.pass.Index.Noalloc(fn) && !w.pass.Index.Allocok(fn) {
			w.reportf(call.Pos(), "calls %s, which is not annotated //wfq:noalloc or //wfq:allocok", fn.FullName())
		}
		return
	}
	if !whitelist[path] && !funcWhitelist[fn.FullName()] {
		w.reportf(call.Pos(), "calls %s; package %s is not on the allocation-free whitelist", fn.FullName(), path)
	}
}

// sameModule reports whether path belongs to the module under
// analysis, approximated by sharing the first import-path segment with
// the current package (exact for this repository, whose module path is
// the single segment "repro").
func (w *walker) sameModule(path string) bool {
	self := w.pass.Pkg.Path()
	if i := strings.IndexByte(self, '/'); i >= 0 {
		self = self[:i]
	}
	return path == self || strings.HasPrefix(path, self+"/")
}

// checkCompositeLit flags slice and map literals; plain struct (and
// array) literals by value are stack-friendly and allowed.
func (w *walker) checkCompositeLit(cl *ast.CompositeLit) {
	if tv, ok := w.pass.TypesInfo.Types[cl]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			w.reportf(cl.Pos(), "slice literal allocates")
		case *types.Map:
			w.reportf(cl.Pos(), "map literal allocates")
		}
	}
	w.walkCompositeElts(cl)
}

func (w *walker) walkCompositeElts(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		w.walkExpr(elt)
	}
}

// checkConversion flags the conversions that copy: string <-> []byte
// and []rune, and conversions into interface types (boxing).
func (w *walker) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := w.pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		w.reportf(call.Pos(), "string conversion copies")
		return
	}
	w.checkBoxing(call.Args[0], dst)
}

// checkArgBoxing flags arguments boxed into interface-typed
// parameters.
func (w *walker) checkArgBoxing(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil {
			w.checkBoxing(arg, pt)
		}
	}
}

// checkBoxing reports e if assigning it to destination type dst boxes
// a non-pointer-shaped concrete value into an interface.
func (w *walker) checkBoxing(e ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if src == types.Typ[types.UntypedNil] {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return
	}
	if isPointerShaped(src) {
		return
	}
	w.reportf(e.Pos(), "%s value boxed into %s allocates", src, dst)
}

// isMap reports whether e has map type.
func (w *walker) isMap(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t are stored directly in
// an interface word (no allocation on conversion).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
