// Package hotallocfix exercises the hotalloc analyzer: every
// allocating construct must fire inside a //wfq:noalloc body, and the
// sanctioned patterns — struct literals by value, interface dispatch,
// //wfq:allocok helpers, panic subtrees, scratch-buffer reuse — must
// stay silent.
package hotallocfix

import (
	"sync/atomic"
	"time"
	"unsafe"
)

type entry struct {
	cycle uint64
	index uint64
}

type ring struct {
	word    atomic.Uint64
	scratch []uint64
	stats   map[string]int
	sink    any
}

// pack is a leaf helper on the hot path.
//
//wfq:noalloc
func pack(e entry) uint64 { return e.cycle<<32 | e.index }

// grow is the audited amortized-allocation helper: callable from
// noalloc paths, body exempt.
//
//wfq:allocok scratch grows to ring capacity once, then is reused
func (r *ring) grow(n int) []uint64 {
	if cap(r.scratch) < n {
		r.scratch = make([]uint64, n)
	}
	return r.scratch[:n]
}

// unvetted carries no annotation, so noalloc callers must not call it.
func unvetted() {}

// allocates exercises every flagged construct.
//
//wfq:noalloc
func (r *ring) allocates(s string, xs []uint64) uint64 {
	buf := make([]uint64, 8) // want "make allocates"
	p := new(entry)          // want "new allocates"
	xs = append(xs, 1)       // want "append may grow its backing array"
	e := &entry{cycle: 1}    // want "&composite literal escapes"
	sl := []uint64{1, 2}     // want "slice literal allocates"
	m := map[string]int{}    // want "map literal allocates"
	m["k"] = 1               // want "map write"
	delete(m, "k")           // want "map op"
	f := func() {}           // want "function literal \\(closure\\) allocates"
	go f()                   // want "go statement allocates a goroutine"
	b := []byte(s)           // want "string conversion copies"
	s2 := s + "!"            // want "non-constant string concatenation allocates"
	r.sink = entry{}         // want "boxed into"
	unvetted()               // want "calls hotallocfix.unvetted, which is not annotated"
	_ = buf
	_ = p
	_ = e
	_ = sl
	_ = b
	_ = s2
	return pack(entry{cycle: 1, index: uint64(len(xs))})
}

// fast is the shape of a real fast path: typed atomics, value struct
// literals, annotated helpers, scratch reuse, and a cold panic guard.
//
//wfq:noalloc
func (r *ring) fast(n int) uint64 {
	if n < 0 {
		panic("hotallocfix: negative batch of " + itoa(n)) // cold: subtree exempt
	}
	buf := r.grow(n)
	var acc uint64
	for i := range buf {
		buf[i] = pack(entry{cycle: uint64(i)})
		acc += r.word.Load()
	}
	return acc
}

// itoa is deliberately unannotated: it is only reachable from the
// panic subtree above, which is exempt.
func itoa(n int) string { return string(rune('0' + n%10)) }

// consumer dispatches through an interface, which is allowed: the
// concrete implementations carry their own annotations.
type consumer interface {
	Consume(v uint64) bool
}

//wfq:noalloc
func drain(c consumer, vs []uint64) int {
	kept := 0
	for _, v := range vs {
		if c.Consume(v) {
			kept++
		}
	}
	return kept
}

// external calls must stay inside the whitelist.
//
//wfq:noalloc
func whitelisted(p *atomic.Uint64) uint64 {
	return p.Add(1)
}

// timestamped is the metrics-instrumentation shape: time.Now and
// time.Since are individually whitelisted (the rest of package time is
// not), so a noalloc path can sample durations into a histogram.
//
//wfq:noalloc
func timestamped(p *atomic.Uint64) {
	t := time.Now()
	p.Add(uint64(time.Since(t)))
	time.Sleep(0)               // want "calls time.Sleep; package time is not on the allocation-free whitelist"
	p.Add(uint64(t.UnixNano())) // want "calls \\(time.Time\\).UnixNano; package time is not on the allocation-free whitelist"
}

// jittered is the backoff-primitive shape: a xorshift step feeding a
// bounded jitter draw, pure arithmetic end to end, so the whole spin
// path vets allocation-free.
//
//wfq:noalloc
func jittered(state *uint64, base, span uint64) uint64 {
	x := *state
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*state = x
	if span == 0 {
		return base
	}
	return base + x%(span+1)
}

// xferWaiter is the transfer-cell handoff shape: an untyped cell
// pointer published by a plain store ordered before an atomic state
// store, claimed by CAS, written through with a typed pointer
// conversion. Pure stores and atomics end to end — the direct-handoff
// fast path must vet allocation-free.
type xferWaiter struct {
	state atomic.Uint32
	cell  unsafe.Pointer
}

//wfq:noalloc
func (w *xferWaiter) arm(cell unsafe.Pointer) {
	w.cell = cell
	w.state.Store(1)
}

//wfq:noalloc
func publish(w *xferWaiter, v uint64) bool {
	if !w.state.CompareAndSwap(1, 2) {
		return false
	}
	*(*uint64)(w.cell) = v
	w.state.Store(3)
	return true
}

// leakyArm is the trap the fixture exists to catch: a cell allocated
// per handoff instead of living in the owner's handle defeats the
// zero-alloc fast path, and the analyzer must say so.
//
//wfq:noalloc
func leakyArm(w *xferWaiter) {
	c := new(uint64) // want "new allocates"
	w.arm(unsafe.Pointer(c))
}

// suppressed shows the escape hatch for an audited one-off.
//
//wfq:noalloc
func suppressed() *entry {
	return &entry{} //wfq:ignore hotalloc constructed once at registration
}
