package analysis

import (
	"go/ast"
	"go/types"
)

// Index is the cross-package annotation table. Analyzers that follow
// calls across package boundaries (hotalloc's "a //wfq:noalloc
// function may only call noalloc/allocok functions" rule) need to see
// annotations on functions defined in OTHER packages — including
// module packages that the current run loads only as compiled export
// data, which carries no comments. The index is therefore built
// syntactically, from parsed source alone, and keyed by strings of the
// form "<pkgpath>:<Recv>.<name>" ("<pkgpath>:.<name>" for plain
// functions); the lookup side derives the same key from a *types.Func,
// so source-checked and export-data views of one function agree.
type Index struct {
	// noalloc holds keys of functions annotated //wfq:noalloc.
	noalloc map[string]bool
	// allocok holds keys of functions annotated //wfq:allocok.
	allocok map[string]bool
	// stable holds "<pkgpath>:<Type>.<field>" keys for struct fields
	// annotated //wfq:stable (never written after construction).
	stable map[string]bool
}

// BuildIndex scans every loaded package's declarations — including
// syntax-only packages loaded just for their annotations — for //wfq:
// directives that other packages' passes must see.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{
		noalloc: map[string]bool{},
		allocok: map[string]bool{},
		stable:  map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc == nil {
						continue
					}
					key := funcKey(pkg.PkgPath, recvTypeName(d), d.Name.Name)
					if HasDirective("noalloc", d.Doc) {
						idx.noalloc[key] = true
					}
					if HasDirective("allocok", d.Doc) {
						idx.allocok[key] = true
					}
				case *ast.GenDecl:
					idx.indexStableFields(pkg.PkgPath, d)
				}
			}
		}
	}
	return idx
}

// recvTypeName extracts the receiver's base type name ("" for plain
// functions), stripping pointers and type parameters.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// indexStableFields records //wfq:stable fields of every struct type
// declared in d.
func (idx *Index) indexStableFields(pkgPath string, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !HasDirective("stable", field.Doc, field.Comment) {
				continue
			}
			for _, name := range field.Names {
				idx.stable[fieldKey(pkgPath, ts.Name.Name, name.Name)] = true
			}
		}
	}
}

func funcKey(pkgPath, recvName, funcName string) string {
	return pkgPath + ":" + recvName + "." + funcName
}

func fieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + ":" + typeName + "." + fieldName
}

// keyOf derives the index key for a resolved function object.
func keyOf(fn *types.Func) string {
	fn = fn.Origin()
	recvName := ""
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName = named.Origin().Obj().Name()
		}
	}
	return funcKey(fn.Pkg().Path(), recvName, fn.Name())
}

// Noalloc reports whether fn is annotated //wfq:noalloc.
func (idx *Index) Noalloc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && idx.noalloc[keyOf(fn)]
}

// Allocok reports whether fn is annotated //wfq:allocok.
func (idx *Index) Allocok(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && idx.allocok[keyOf(fn)]
}

// Stable reports whether the named field of the named struct type is
// annotated //wfq:stable. named must be the (possibly instantiated)
// defined type owning the field.
func (idx *Index) Stable(named *types.Named, fieldName string) bool {
	if named == nil {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	return idx.stable[fieldKey(obj.Pkg().Path(), obj.Name(), fieldName)]
}
