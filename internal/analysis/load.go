package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	ForTest    string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
	Match      []string
}

// Load enumerates the packages matching patterns with the go tool,
// parses the matched (non-dependency) packages from source, and
// type-checks them against their dependencies' compiled export data —
// the same substrate go/packages provides, built on `go list -export`
// so it works without network access or external modules.
//
// The target GOARCH is whatever the `go` subprocess resolves (so
// running wfqvet with GOARCH=386 in the environment analyzes the
// 32-bit build, as the CI cross-compile job does).
func Load(dir string, patterns ...string) ([]*Package, error) {
	goarch, err := goEnv(dir, "GOARCH")
	if err != nil {
		return nil, err
	}
	sizes := types.SizesFor("gc", goarch)
	if sizes == nil {
		return nil, fmt.Errorf("analysis: unknown GOARCH %q", goarch)
	}

	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets, annotOnly []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo (unsupported)", p.ImportPath)
		}
		// Targets are the pattern matches themselves. Non-standard
		// dependencies outside the pattern (module packages pulled in via
		// -deps) are parsed syntax-only so their //wfq: annotations reach
		// the cross-package index: export data carries no comments.
		if p.DepOnly {
			annotOnly = append(annotOnly, &p)
		} else {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    sizes,
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   p.ImportPath,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
			Sizes:     sizes,
		})
	}
	for _, p := range annotOnly {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath,
			Fset:    fset,
			Syntax:  files,
		})
	}
	return pkgs, nil
}

// newInfo allocates a types.Info with every map analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goEnv reads one `go env` variable.
func goEnv(dir, name string) (string, error) {
	cmd := exec.Command("go", "env", name)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env %s: %v", name, err)
	}
	return strings.TrimSpace(string(out)), nil
}
