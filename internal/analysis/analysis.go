// Package analysis is the repository's static-analysis framework: the
// substrate under cmd/wfqvet and the internal/analysis/* analyzers
// that statically enforce the concurrency invariants the compiler
// cannot see (cache-line layout, typed seq-cst atomics, allocation-free
// hot paths, hoisted loop-invariant loads).
//
// It deliberately mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, analysistest-style fixtures) so that the
// analyzers read idiomatically and a future migration onto the real
// multichecker is mechanical. The build environment for this repository
// has no module proxy access, so the framework is built on the standard
// library alone: packages are enumerated and compiled with
// `go list -export`, dependencies are imported from their gc export
// data, and target packages are type-checked from source — the same
// strategy go/packages uses, minus the dependency.
//
// # Directives
//
// Analyzers are driven by //wfq: directives (which godoc hides, like
// any //tool:directive comment):
//
//	//wfq:noalloc            func: allocation-free contract (hotalloc)
//	//wfq:allocok <reason>   func: audited amortized/startup allocation;
//	                         callable from noalloc paths, body exempt
//	//wfq:stable             field: never written after construction;
//	                         loopload flags in-loop reads (hoist them)
//	//wfq:isolate            struct: hot atomic words must sit a full
//	                         cache line apart (falseshare, amd64 + 386)
//	//wfq:hot                field: include a plain field in the
//	                         falseshare hot set (frequently written)
//	//wfq:cold               field: exclude an atomic field (rarely
//	                         touched; sharing a line is fine)
//	//wfq:padded             type: size must be a multiple of the cache
//	                         line on amd64 AND 386 (falseshare)
//	//wfq:ignore <analyzer> [reason]   line suppression
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one repo-specific check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //wfq:ignore suppressions.
	Name string
	// Doc is the one-paragraph description `wfqvet -help` prints.
	Doc string
	// Run executes the analyzer over one type-checked package,
	// reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and the
// sinks to report against, mirroring analysis.Pass.
type Pass struct {
	// Analyzer is the analyzer this pass executes.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files holds the package's parsed syntax (with comments).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Sizes gives the target architecture's sizing (the GOARCH the
	// load ran under); ArchSizes lists every architecture a layout
	// check must hold on.
	Sizes types.Sizes
	// ArchSizes maps architecture name to its sizing model. Layout
	// analyzers (falseshare) check every entry so an amd64 run still
	// guards the 386 layout.
	ArchSizes map[string]types.Sizes
	// Index exposes the cross-package annotation index built over
	// every loaded package (hotalloc's whole-path call rule needs to
	// see annotations on callees in other packages).
	Index *Index

	diags   *[]Diagnostic
	ignores ignoreMap
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that fired.
	Analyzer string
	// Message describes the finding.
	Message string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a //wfq:ignore suppression
// for this analyzer sits on the same line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreMap records, per file and line, which analyzers are suppressed
// by a //wfq:ignore comment on that line.
type ignoreMap map[string]map[int]map[string]bool

var ignoreRe = regexp.MustCompile(`^//wfq:ignore\s+(\S+)`)

// buildIgnores scans every comment in the files for //wfq:ignore
// directives.
func buildIgnores(fset *token.FileSet, files []*ast.File) ignoreMap {
	m := ignoreMap{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sub := ignoreRe.FindStringSubmatch(c.Text)
				if sub == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := m[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					m[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				names[sub[1]] = true
			}
		}
	}
	return m
}

func (m ignoreMap) suppressed(pos token.Position, analyzer string) bool {
	names := m[pos.Filename][pos.Line]
	return names[analyzer] || names["all"]
}

// A Package is one loaded target package ready for analysis, or — when
// Types is nil — a syntax-only package loaded just so its //wfq:
// annotations reach the cross-package Index (analyzers do not run over
// syntax-only packages).
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Fset maps positions for Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files (with comments).
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds the checker's results.
	TypesInfo *types.Info
	// Sizes is the sizing model the package was checked under.
	Sizes types.Sizes
}

// Run executes every analyzer over every package against the shared
// annotation index and returns all findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, archSizes map[string]types.Sizes) []Diagnostic {
	index := BuildIndex(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue // annotation-only: indexed above, never analyzed
		}
		ignores := buildIgnores(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Sizes:     pkg.Sizes,
				ArchSizes: archSizes,
				Index:     index,
				diags:     &diags,
				ignores:   ignores,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.PkgPath},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// DefaultArchSizes returns the sizing models every layout invariant
// must hold on: 64-bit amd64 and 32-bit 386 (the CI cross-compile
// targets with distinct alignment rules).
func DefaultArchSizes() map[string]types.Sizes {
	return map[string]types.Sizes{
		"amd64": types.SizesFor("gc", "amd64"),
		"386":   types.SizesFor("gc", "386"),
	}
}

// Directive is one parsed //wfq: directive.
type Directive struct {
	// Name is the directive verb ("noalloc", "stable", ...).
	Name string
	// Arg is everything after the verb (a reason, an analyzer name).
	Arg string
}

var directiveRe = regexp.MustCompile(`^//wfq:(\S+)\s*(.*)$`)

// ParseDirectives extracts the //wfq: directives from a doc comment
// group and an optional trailing line comment.
func ParseDirectives(groups ...*ast.CommentGroup) []Directive {
	var ds []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if sub := directiveRe.FindStringSubmatch(c.Text); sub != nil {
				ds = append(ds, Directive{Name: sub[1], Arg: strings.TrimSpace(sub[2])})
			}
		}
	}
	return ds
}

// HasDirective reports whether any of the comment groups carries the
// named //wfq: directive.
func HasDirective(name string, groups ...*ast.CommentGroup) bool {
	for _, d := range ParseDirectives(groups...) {
		if d.Name == name {
			return true
		}
	}
	return false
}
