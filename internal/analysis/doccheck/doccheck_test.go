package doccheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/doccheck"
)

func TestDocCheck(t *testing.T) {
	analysistest.Run(t, "testdata", doccheck.Analyzer, "doccheckfix")
}
