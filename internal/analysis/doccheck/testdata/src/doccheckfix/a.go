// Package doccheckfix exercises the doccheck analyzer.
package doccheckfix

// Documented carries the doc comment the contract requires.
type Documented struct{}

type Bare struct { // want "exported type Bare is missing a doc comment"
	f int
}

// Grouped constants are satisfied by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const LoneConst = 3 // documented by this line comment

var Naked = func() int { // want "exported Naked is missing a doc comment"
	return 0
}()

// Method has a doc comment.
func (Documented) Method() {}

func (Documented) Undocumented() {} // want "exported method Undocumented is missing a doc comment"

func Function() {} // want "exported function Function is missing a doc comment"

// methods on unexported types are exempt plumbing.
type plumbing struct{}

func (plumbing) Exported() {}
