// Package doccheck enforces the repository's godoc contract: every
// exported top-level identifier (type, function, method, var, const)
// in every non-test file must carry a doc comment. It is the analyzer
// behind the ARCHITECTURE.md/godoc audit, absorbed into wfqvet from
// the original standalone doccheck command so one invocation runs
// every repo-specific check.
//
// A const or var group is satisfied by a doc comment on the group or
// on the individual spec. Methods on unexported types are internal
// plumbing and exempt.
package doccheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags exported identifiers without doc comments.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc:  "require a doc comment on every exported top-level identifier",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
					pass.Reportf(d.Pos(), "exported %s %s is missing a doc comment", kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							pass.Reportf(s.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						// A group comment covers all specs; otherwise each
						// exported spec needs its own doc or line comment.
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								pass.Reportf(n.Pos(), "exported %s is missing a doc comment", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// kindOf distinguishes methods from functions in the diagnostic.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether a method's receiver type is itself
// exported (methods on unexported types are internal plumbing and
// exempt). Plain functions always count.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
