// Package falsesharefix exercises the falseshare analyzer's
// //wfq:padded and //wfq:isolate checks, including layouts that only
// break on one architecture.
package falsesharefix

import "sync/atomic"

// line is correctly padded on both architectures.
//
//wfq:padded
type line struct {
	v atomic.Uint32
	_ [60]byte
}

// overPadded is the PR 1 pad.Bool bug class: a pad sized as if the
// payload were zero bytes.
//
//wfq:padded
type overPadded struct { // want "overPadded is 68 bytes on 386" "overPadded is 68 bytes on amd64"
	v atomic.Uint32
	_ [64]byte
}

// pointerPadded is 64 bytes on amd64 but only 60 on 386, because the
// pointer shrinks: exactly the divergence the dual-arch check exists
// for.
//
//wfq:padded
type pointerPadded struct { // want "pointerPadded is 60 bytes on 386"
	p atomic.Pointer[int]
	_ [56]byte
}

// shared places two hot counters on one cache line.
//
//wfq:isolate
type shared struct { // want "tail \\(offset 0\\) and head \\(offset 8\\) are 8 bytes apart on 386" "are 8 bytes apart on amd64"
	tail atomic.Uint64
	head atomic.Uint64
}

// isolated separates its counters with a full line of padding.
//
//wfq:isolate
type isolated struct {
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
	_    [64]byte
}

// coldStats shares a line between a hot counter and a diagnostics
// counter that is explicitly out of the hot set.
//
//wfq:isolate
type coldStats struct {
	tail  atomic.Uint64
	stats atomic.Uint64 //wfq:cold diagnostics only
	_     [48]byte
}

// hotPlain marks a frequently-written plain field hot, so sharing a
// line with the atomic fires.
//
//wfq:isolate
type hotPlain struct { // want "tail \\(offset 0\\) and cursor \\(offset 8\\)" "are 8 bytes apart on amd64"
	tail   atomic.Uint64
	cursor uint64 //wfq:hot written every dequeue
}

// archShared keeps its counters a full line apart on amd64 but lets
// them collide on 386, where the uintptr spacer halves.
//
//wfq:isolate
type archShared struct { // want "are 40 bytes apart on 386"
	tail atomic.Uint64
	_    [7]uintptr
	head atomic.Uint64
}
