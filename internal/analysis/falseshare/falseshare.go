// Package falseshare is the static, cross-architecture mirror of
// pad_test.go's size pins: it checks annotated struct layouts with
// go/types Sizes for BOTH amd64 and 386, so a field reorder or a
// mis-sized pad fails vet before it ever reaches a benchmark.
//
// Two directives drive it:
//
//   - //wfq:padded on a type: its size must be a multiple of the
//     64-byte cache line on every checked architecture. This is the
//     check that would have caught PR 1's 68-byte pad.Bool.
//
//   - //wfq:isolate on a struct: its hot fields must start at least a
//     full cache line apart on every checked architecture, so no two
//     of them can ever share a line (regardless of the allocation's
//     base alignment). Hot fields are the atomic-typed ones —
//     sync/atomic types, atomicx.Counter, the pad.* wrappers — plus
//     any plain field marked //wfq:hot (frequently written); an
//     atomic field marked //wfq:cold (rarely touched, e.g. a
//     diagnostics counter) is excluded.
//
// Checking both architectures from one run matters because field sizes
// diverge: atomic.Pointer and uintptr are 8 bytes on amd64 but 4 on
// 386, so a layout that pads correctly on the host can still false-
// share on the 32-bit build.
package falseshare

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// cacheLine is the line size every layout invariant is stated
// against (pad.CacheLineSize, restated here so analyzing internal/pad
// itself has no import cycle).
const cacheLine = 64

// Analyzer checks //wfq:padded sizes and //wfq:isolate layouts under
// every architecture in Pass.ArchSizes.
var Analyzer = &analysis.Analyzer{
	Name: "falseshare",
	Doc:  "check //wfq:padded type sizes and //wfq:isolate hot-field spacing under amd64 and 386 layouts",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// A single ungrouped spec's doc lands on the GenDecl.
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if analysis.HasDirective("padded", doc, ts.Comment) {
					checkPadded(pass, ts)
				}
				if analysis.HasDirective("isolate", doc, ts.Comment) {
					checkIsolate(pass, ts)
				}
			}
		}
	}
	return nil
}

// archNames returns the checked architectures in stable order.
func archNames(pass *analysis.Pass) []string {
	names := make([]string, 0, len(pass.ArchSizes))
	for name := range pass.ArchSizes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sizeof computes Sizeof, absorbing the panic go/types raises on
// unsizable types (type parameters of uninstantiated generics).
func sizeof(sizes types.Sizes, t types.Type) (n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return sizes.Sizeof(t), nil
}

// offsetsof computes Offsetsof with the same panic absorption.
func offsetsof(sizes types.Sizes, fields []*types.Var) (offs []int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return sizes.Offsetsof(fields), nil
}

// checkPadded verifies the type's size is a multiple of the cache line
// on every architecture.
func checkPadded(pass *analysis.Pass, ts *ast.TypeSpec) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	for _, arch := range archNames(pass) {
		n, err := sizeof(pass.ArchSizes[arch], obj.Type())
		if err != nil {
			pass.Reportf(ts.Name.Pos(), "//wfq:padded type %s: cannot compute %s size (%v); instantiate the generic or drop the directive", ts.Name.Name, arch, err)
			return
		}
		if n%cacheLine != 0 {
			pass.Reportf(ts.Name.Pos(), "//wfq:padded type %s is %d bytes on %s, not a multiple of the %d-byte cache line", ts.Name.Name, n, arch, cacheLine)
		}
	}
}

// checkIsolate verifies every pair of hot fields starts at least a
// cache line apart on every architecture.
func checkIsolate(pass *analysis.Pass, ts *ast.TypeSpec) {
	stAst, ok := ts.Type.(*ast.StructType)
	if !ok {
		pass.Reportf(ts.Name.Pos(), "//wfq:isolate on non-struct type %s", ts.Name.Name)
		return
	}
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	// Map each types.Struct field index to hot/cold, walking the AST
	// field list in parallel (one AST field may declare several names).
	hot := make([]bool, st.NumFields())
	idx := 0
	for _, field := range stAst.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		isHot := analysis.HasDirective("hot", field.Doc, field.Comment)
		isCold := analysis.HasDirective("cold", field.Doc, field.Comment)
		for i := 0; i < n && idx < st.NumFields(); i++ {
			fv := st.Field(idx)
			hot[idx] = !isCold && (isHot || isAtomicType(fv.Type()))
			idx++
		}
	}

	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	for _, arch := range archNames(pass) {
		offs, err := offsetsof(pass.ArchSizes[arch], fields)
		if err != nil {
			pass.Reportf(ts.Name.Pos(), "//wfq:isolate struct %s: cannot compute %s layout (%v); instantiate the generic or drop the directive", ts.Name.Name, arch, err)
			return
		}
		prev := -1
		for i := range fields {
			if !hot[i] {
				continue
			}
			if prev >= 0 && offs[i]-offs[prev] < cacheLine {
				pass.Reportf(ts.Name.Pos(), "//wfq:isolate struct %s: hot fields %s (offset %d) and %s (offset %d) are %d bytes apart on %s; need >= %d (insert pad.Line or mark one //wfq:cold)",
					ts.Name.Name, fields[prev].Name(), offs[prev], fields[i].Name(), offs[i], offs[i]-offs[prev], arch, cacheLine)
			}
			prev = i
		}
	}
}

// isAtomicType reports whether t is one of the repository's recognized
// atomic word types: anything from sync/atomic, atomicx.Counter, or a
// pad.* padded wrapper.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	switch {
	case path == "sync/atomic":
		return true
	case strings.HasSuffix(path, "internal/atomicx") && name == "Counter":
		return true
	case strings.HasSuffix(path, "internal/pad") && (name == "Uint64" || name == "Int64" || name == "Bool"):
		return true
	}
	return false
}
