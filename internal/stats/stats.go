// Package stats provides the summary statistics the paper's benchmark
// reports: per-point mean throughput over repeated runs and the
// coefficient of variation used to argue measurement stability
// ("the coefficient of variation ... is small (< 0.01)").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	CV     float64 // Std/Mean; 0 when Mean == 0
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Mean != 0 {
		s.CV = s.Std / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// String renders "mean ± std (cv=...)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (cv=%.3f)", s.Mean, s.Std, s.CV)
}

// Mops converts an operation count and elapsed seconds to millions of
// operations per second.
func Mops(ops int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds / 1e6
}
