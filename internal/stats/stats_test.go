package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Mean, 5) {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("min/max/n %v %v %v", s.Min, s.Max, s.N)
	}
	if !almostEq(s.Median, 4.5) {
		t.Fatalf("median %v", s.Median)
	}
	// Sample std of that classic set is sqrt(32/7).
	if !almostEq(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("std %v", s.Std)
	}
	if !almostEq(s.CV, s.Std/5) {
		t.Fatalf("cv %v", s.CV)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.CV != 0 || s.Median != 3.5 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestSummarizeZeroMean(t *testing.T) {
	s := Summarize([]float64{-1, 1})
	if s.CV != 0 {
		t.Fatalf("cv with zero mean: %v", s.CV)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMops(t *testing.T) {
	if got := Mops(2_000_000, 2); !almostEq(got, 1) {
		t.Fatalf("Mops = %v", got)
	}
	if Mops(100, 0) != 0 {
		t.Fatal("Mops with zero time must be 0")
	}
}
