package harness

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/ringcore"
	"repro/internal/stats"
)

// Figure h1 is the direct-handoff A/B: the same blocking workload as
// b1/w1, but with the producer:consumer role split pinned explicitly
// and swept from receiver-heavy (where senders find parked receivers
// and the rendezvous fast path fires constantly) to sender-heavy
// (where the symmetric takeover path carries the load), crossed with
// the handoff setting on vs off. Each point reports throughput, the
// blocking-wait ladder (the wakeup-latency axis a landed handoff
// shortens), and the handoff hit rate — the fraction of attempts that
// moved a value past the ring.
var (
	handoffQueues = []string{"Chan", "ChanSharded"}
	// handoffSplits sweeps the imbalance at 8 total goroutines: 1:7 and
	// 2:6 are receiver-heavy (the rendezvous sweet spot), 4:4 balanced,
	// 6:2 sender-heavy (the takeover side).
	handoffSplits   = [][2]int{{1, 7}, {2, 6}, {4, 4}, {6, 2}}
	handoffSettings = []string{"on", "off"}
)

// handoffRingCap pins h1's ring nearly shut: the figure is about
// rendezvous at the empty/full boundaries, and with only a handful of
// slots every transferred value interacts with a boundary — parked
// peers on both sides, which is exactly the regime the handoff path
// exists for. A deeper ring (w1's 64, say) lets the workload cruise
// through the buffer in ring-only bursts and the A/B degenerates to
// noise vs noise. The sharded queue gets double: its capacity divides
// across shards, and each shard ring needs at least two slots.
func handoffRingCap(queue string) uint64 {
	if queue == "ChanSharded" {
		return 1 << 3
	}
	return 1 << 2
}

// runHandoff executes a handoff figure: for each queue, sweep the
// explicit producer:consumer splits crossed with the handoff settings.
// Like w1, each point gets a fresh metrics sink regardless of
// RunOpts.Metrics — the hit rate and wait ladder ARE the figure — with
// the sink accumulating across reps.
//
// Two measurement-hygiene rules keep the A/B honest on a noisy host.
// First, the settings are interleaved: cells are ordered split-major
// with the on/off pair adjacent, and every rep cycle contributes one
// run to every cell, so slow drift (thermal, another tenant, GC
// pacing) lands on both arms equally instead of biasing whichever arm
// runs first. Second, each queue gets one untimed warmup run before
// the timed reps: the first runs in a fresh process land 10-15% low
// (heap growth, scheduler warmup), and without the warmup that
// penalty falls entirely on whichever cell happens to run first.
func (f Figure) runHandoff(opts RunOpts, qs []string) []Point {
	type cell struct {
		pt   Point
		cfg  queues.Config
		sink *metrics.Sink
		mops []float64
	}
	var pts []Point
	for _, name := range qs {
		var cells []*cell
		for _, split := range f.Splits {
			producers, consumers := split[0], split[1]
			total := producers + consumers
			if opts.MaxThreads > 0 && total > opts.MaxThreads {
				continue
			}
			for _, hname := range f.Handoffs {
				mode, merr := ringcore.HandoffByName(hname)
				cl := &cell{pt: Point{Queue: name, Threads: total,
					Producers: producers, Consumers: consumers, Handoff: hname}}
				if merr != nil {
					cl.pt.Err = merr
					cells = append(cells, cl)
					continue
				}
				cl.sink = metrics.New()
				cl.cfg = queues.Config{
					Capacity:   handoffRingCap(name),
					MaxThreads: total + 1,
					Mode:       f.Mode,
					Shards:     opts.Shards,
					Ring:       opts.Ring,
					Core:       opts.Core,
					Metrics:    cl.sink,
					Handoff:    mode,
				}
				if opts.Capacity > 0 {
					cl.cfg.Capacity = opts.Capacity
				}
				if opts.Emulate {
					cl.cfg.Mode = atomicx.EmulatedFAA
				}
				cl.mops = make([]float64, 0, opts.Reps)
				cells = append(cells, cl)
			}
		}
		for _, cl := range cells {
			if cl.pt.Err == nil {
				// Throwaway sink: the warmup must not pollute the first
				// cell's hit rate or wait ladder.
				wcfg := cl.cfg
				wcfg.Metrics = metrics.New()
				runBlockingOnce(name, wcfg, PointOpts{
					Threads:   cl.pt.Threads,
					Ops:       opts.Ops,
					Producers: cl.pt.Producers,
					Consumers: cl.pt.Consumers,
				})
				break
			}
		}
		for rep := 0; rep < opts.Reps; rep++ {
			for _, cl := range cells {
				if cl.pt.Err != nil {
					continue
				}
				m, _, fp, err := runBlockingOnce(name, cl.cfg, PointOpts{
					Threads:   cl.pt.Threads,
					Ops:       opts.Ops,
					Producers: cl.pt.Producers,
					Consumers: cl.pt.Consumers,
				})
				if err != nil {
					cl.pt.Err = err
					continue
				}
				cl.mops = append(cl.mops, m)
				if fp > cl.pt.FootprintMB {
					cl.pt.FootprintMB = fp
				}
			}
		}
		for _, cl := range cells {
			if cl.pt.Err == nil {
				cl.pt.Mops = stats.Summarize(cl.mops)
				snap := cl.sink.Snapshot()
				cl.pt.Latency = snap.Parked
				cl.pt.HandoffRate = snap.HandoffRate()
			}
			pts = append(pts, cl.pt)
		}
	}
	return pts
}

// FormatHandoffPoints renders a handoff figure in long format: one row
// per (queue, handoff setting, split) with throughput, the blocking
// wait ladder in microseconds, and the handoff hit rate. Reading an
// on/off row pair top to bottom is the A/B: throughput up, wait ladder
// down, hit rate only meaningful on the "on" rows.
func FormatHandoffPoints(pts []Point) string {
	out := "queue\thandoff\tsplit\tMops/s\twait p50(µs)\tp99(µs)\tmax(µs)\thit-rate\n"
	for _, p := range pts {
		out += fmt.Sprintf("%s\t%s\t%d:%d", p.Queue, p.Handoff, p.Producers, p.Consumers)
		if p.Err != nil {
			out += "\tn/a\tn/a\tn/a\tn/a\tn/a\n"
			continue
		}
		out += fmt.Sprintf("\t%.3f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			p.Mops.Mean,
			float64(p.Latency.Quantile(0.50))/1e3,
			float64(p.Latency.Quantile(0.99))/1e3,
			float64(p.Latency.Max)/1e3,
			p.HandoffRate)
	}
	return out
}
