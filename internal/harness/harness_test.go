package harness

import (
	"strings"
	"testing"

	"repro/internal/atomicx"
	"repro/internal/queues"
)

func smallOpts(threads int) PointOpts {
	return PointOpts{Threads: threads, Ops: 4000, Reps: 2}
}

func TestRunPointAllQueuesAllWorkloads(t *testing.T) {
	for _, name := range append(queues.RealQueues(), "FAA") {
		for _, w := range []Workload{Pairwise, Mixed, EmptyDeq} {
			name, w := name, w
			t.Run(name+"/"+w.String(), func(t *testing.T) {
				cfg := queues.Config{Capacity: 1 << 10, MaxThreads: 8}
				pt := RunPoint(name, cfg, w, smallOpts(3))
				if pt.Err != nil {
					t.Fatalf("point error: %v", pt.Err)
				}
				if pt.Mops.Mean <= 0 {
					t.Fatalf("non-positive throughput: %+v", pt.Mops)
				}
			})
		}
	}
}

func TestRunPointMemoryProbe(t *testing.T) {
	cfg := queues.Config{Capacity: 1 << 10, MaxThreads: 8}
	pt := RunPoint("wCQ", cfg, Mixed, PointOpts{Threads: 2, Ops: 4000, Reps: 1, Delays: true, Memory: true})
	if pt.Err != nil {
		t.Fatal(pt.Err)
	}
	if pt.MemoryMB <= 0 {
		t.Fatal("wCQ memory probe reported zero (static footprint must show)")
	}
}

func TestLCRQUnavailableProducesErrPoint(t *testing.T) {
	cfg := queues.Config{Capacity: 1 << 10, MaxThreads: 8, Mode: atomicx.EmulatedFAA}
	pt := RunPoint("LCRQ", cfg, Pairwise, smallOpts(2))
	if pt.Err == nil {
		t.Fatal("expected error point for LCRQ under emulation")
	}
}

func TestFiguresComplete(t *testing.T) {
	figs := Figures()
	if len(figs) != 16 {
		t.Fatalf("have %d figures, want 16 (10a-12c + s1,s2 + b1 + u1 + p2 + l1 + w1 + h1)", len(figs))
	}
	want := []string{"10a", "10b", "11a", "11b", "11c", "12a", "12b", "12c", "s1", "s2", "b1", "u1", "p2", "l1", "w1", "h1"}
	for i, f := range figs {
		if f.ID != want[i] {
			t.Fatalf("figure %d is %q, want %q", i, f.ID, want[i])
		}
		if len(f.Threads) == 0 || len(f.Queues) == 0 {
			t.Fatalf("figure %s underspecified", f.ID)
		}
	}
	// PowerPC figures must use emulation and exclude LCRQ.
	for _, id := range []string{"12a", "12b", "12c"} {
		f, err := FigureByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Mode != atomicx.EmulatedFAA {
			t.Fatalf("figure %s not emulated", id)
		}
		for _, q := range f.Queues {
			if q == "LCRQ" {
				t.Fatalf("figure %s includes LCRQ", id)
			}
		}
	}
	if _, err := FigureByID("99z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureRunAndRender(t *testing.T) {
	f, err := FigureByID("11b")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Ops: 2000, Reps: 1, MaxThreads: 2, Queues: []string{"wCQ", "SCQ"}}
	pts := f.Run(opts)
	if len(pts) != 4 { // 2 queues x threads {1,2}
		t.Fatalf("got %d points", len(pts))
	}
	var sb strings.Builder
	f.Render(&sb, pts, opts)
	out := sb.String()
	if !strings.Contains(out, "Figure 11b") || !strings.Contains(out, "wCQ") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + title + 2 thread rows
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestRunPointBatched(t *testing.T) {
	// The batched loop must work for a native Batcher (Sharded) and
	// for fallback queues alike, on every workload.
	for _, name := range []string{"Sharded", "wCQ"} {
		for _, w := range []Workload{Pairwise, Mixed, EmptyDeq} {
			name, w := name, w
			t.Run(name+"/"+w.String(), func(t *testing.T) {
				cfg := queues.Config{Capacity: 1 << 10, MaxThreads: 8}
				opts := smallOpts(3)
				opts.Batch = 16
				pt := RunPoint(name, cfg, w, opts)
				if pt.Err != nil {
					t.Fatalf("point error: %v", pt.Err)
				}
				if pt.Mops.Mean <= 0 {
					t.Fatalf("non-positive throughput: %+v", pt.Mops)
				}
			})
		}
	}
}

func TestScaleOutFigures(t *testing.T) {
	for _, id := range []string{"s1", "s2"} {
		f, err := FigureByID(id)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, q := range f.Queues {
			if q == "Sharded" {
				found = true
			}
		}
		if !found {
			t.Fatalf("figure %s missing the Sharded queue", id)
		}
	}
}

func TestBurstFigure(t *testing.T) {
	f, err := FigureByID("u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Bursts) == 0 {
		t.Fatal("figure u1 has no burst sweep")
	}
	for _, name := range []string{"LSCQ", "UWCQ", "ChanUnbounded"} {
		found := false
		for _, q := range f.Queues {
			if q == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("figure u1 missing %s", name)
		}
	}
	// A scaled-down run: small bursts over small rings must still
	// report positive throughput and a live memory axis.
	cfg := queues.Config{Capacity: 64, MaxThreads: 8}
	for _, name := range f.Queues {
		name := name
		t.Run(name, func(t *testing.T) {
			mops, memMB, fpMB, err := runBurstOnce(name, cfg, 2048, PointOpts{Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if mops <= 0 {
				t.Fatal("no throughput measured")
			}
			if memMB <= 0 {
				t.Fatal("no peak footprint measured (unbounded Footprint must be live)")
			}
			if fpMB <= 0 {
				t.Fatal("no post-drain footprint measured")
			}
		})
	}
}

func TestBurstFigureRunAndRender(t *testing.T) {
	f, err := FigureByID("u1")
	if err != nil {
		t.Fatal(err)
	}
	f.Bursts = []int{256, 512} // scale the sweep down for CI
	opts := RunOpts{Reps: 1, Queues: []string{"LSCQ"}, Capacity: 16}
	pts := f.Run(opts)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("%s/%d: %v", pt.Queue, pt.Burst, pt.Err)
		}
		if pt.Burst == 0 || pt.MemoryMB <= 0 {
			t.Fatalf("burst point underfilled: %+v", pt)
		}
	}
	var sb strings.Builder
	f.Render(&sb, pts, opts)
	out := sb.String()
	if !strings.Contains(out, "Figure u1") || !strings.Contains(out, "peakMB") || !strings.Contains(out, "256") {
		t.Fatalf("burst render malformed:\n%s", out)
	}
}

func TestBatchFigure(t *testing.T) {
	f, err := FigureByID("p2")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Batches) == 0 {
		t.Fatal("figure p2 has no batch sweep")
	}
	if f.Batches[0] != 1 {
		t.Fatal("figure p2 must include the scalar baseline (batch 1)")
	}
	for _, name := range []string{"wCQ", "SCQ", "Sharded", "UWCQ"} {
		found := false
		for _, q := range f.Queues {
			if q == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("figure p2 missing %s", name)
		}
	}
}

func TestBatchFigureRunAndRender(t *testing.T) {
	f, err := FigureByID("p2")
	if err != nil {
		t.Fatal(err)
	}
	f.Batches = []int{1, 8} // scale the sweep down for CI
	opts := RunOpts{Ops: 4000, Reps: 1, Queues: []string{"wCQ"}, Capacity: 1 << 10}
	pts := f.Run(opts)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("%s/%d: %v", pt.Queue, pt.Batch, pt.Err)
		}
		if pt.Batch == 0 || pt.Mops.Mean <= 0 {
			t.Fatalf("batch point underfilled: %+v", pt)
		}
	}
	var sb strings.Builder
	f.Render(&sb, pts, opts)
	out := sb.String()
	if !strings.Contains(out, "Figure p2") || !strings.Contains(out, "batch") || !strings.Contains(out, "wCQ") {
		t.Fatalf("batch render malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 batch rows
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestBurstSplit(t *testing.T) {
	for _, c := range []struct{ threads, p, c int }{
		{1, 1, 1}, {2, 1, 1}, {4, 2, 2}, {7, 3, 4},
	} {
		p, cons := BurstSplit(c.threads)
		if p != c.p || cons != c.c {
			t.Fatalf("BurstSplit(%d) = (%d, %d), want (%d, %d)", c.threads, p, cons, c.p, c.c)
		}
	}
}

func TestBlockingSplit(t *testing.T) {
	for _, c := range []struct{ threads, p, c int }{
		{1, 1, 1}, {2, 1, 1}, {4, 1, 3}, {8, 2, 6}, {72, 18, 54},
	} {
		p, cons := BlockingSplit(c.threads)
		if p != c.p || cons != c.c {
			t.Fatalf("BlockingSplit(%d) = (%d, %d), want (%d, %d)", c.threads, p, cons, c.p, c.c)
		}
	}
}

func TestBlockingFigure(t *testing.T) {
	f, err := FigureByID("b1")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Blocking {
		t.Fatal("figure b1 not marked blocking")
	}
	opts := RunOpts{Ops: 4000, Reps: 1, MaxThreads: 2}
	pts := f.Run(opts)
	if len(pts) != len(f.Queues) {
		t.Fatalf("got %d points, want %d", len(pts), len(f.Queues))
	}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("%s: %v", pt.Queue, pt.Err)
		}
		if pt.Mops.Mean <= 0 {
			t.Fatalf("%s: no throughput measured", pt.Queue)
		}
	}
}

func TestBlockingPointRejectsNonBlockingQueue(t *testing.T) {
	pt := RunPoint("wCQ", queues.Config{Capacity: 256}, Pairwise, PointOpts{
		Threads: 2, Ops: 100, Reps: 1, Blocking: true,
	})
	if pt.Err == nil {
		t.Fatal("blocking point over a nonblocking queue did not error")
	}
}

func TestWakeupLatency(t *testing.T) {
	for _, name := range queues.BlockingQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			hist, err := WakeupLatency(name, queues.Config{Capacity: 256}, 8)
			if err != nil {
				t.Fatal(err)
			}
			if hist.Count != 8 || hist.Mean() <= 0 {
				t.Fatalf("latency histogram count %d mean %f", hist.Count, hist.Mean())
			}
			if hist.Quantile(0.999) > hist.Max || hist.Quantile(0.5) == 0 {
				t.Fatalf("latency percentiles implausible: p50 %d p99.9 %d max %d",
					hist.Quantile(0.5), hist.Quantile(0.999), hist.Max)
			}
		})
	}
}

func TestWakeupLatencyRejectsNonBlockingQueue(t *testing.T) {
	if _, err := WakeupLatency("wCQ", queues.Config{Capacity: 256}, 2); err == nil {
		t.Fatal("WakeupLatency over a nonblocking queue did not error")
	}
}

func TestFormatPointsNA(t *testing.T) {
	pts := []Point{{Queue: "LCRQ", Threads: 1, Err: errFake}}
	out := FormatPoints(pts, []int{1}, []string{"LCRQ"}, false)
	if !strings.Contains(out, "n/a") {
		t.Fatalf("missing n/a cell: %q", out)
	}
}

var errFake = errStr("unavailable")

type errStr string

func (e errStr) Error() string { return string(e) }

func TestXorshiftNonDegenerate(t *testing.T) {
	seen := map[uint64]bool{}
	x := uint64(1)
	for i := 0; i < 1000; i++ {
		x = xorshift(x)
		if seen[x] {
			t.Fatalf("cycle after %d steps", i)
		}
		seen[x] = true
	}
}

func TestSortPoints(t *testing.T) {
	pts := []Point{{Queue: "b", Threads: 2}, {Queue: "a", Threads: 4}, {Queue: "a", Threads: 1}}
	SortPoints(pts)
	if pts[0].Queue != "a" || pts[0].Threads != 1 || pts[2].Queue != "b" {
		t.Fatalf("bad order: %+v", pts)
	}
}
