package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/queueapi"
	"repro/internal/queues"
	"repro/internal/stats"
)

// BlockingSplit derives the producer/consumer role split for the
// blocking workload from a total goroutine count: one producer per
// four goroutines (minimum one of each), so consumers outnumber
// producers 3:1 — the imbalance the nonblocking workloads cannot
// express, because idle consumers park instead of spin-polling.
func BlockingSplit(threads int) (producers, consumers int) {
	producers = threads / 4
	if producers < 1 {
		producers = 1
	}
	consumers = threads - producers
	if consumers < 1 {
		consumers = 1
	}
	return producers, consumers
}

// runBlockingOnce builds a fresh blocking queue and drives one timed
// run: producers Send (parking on full), the queue is closed when
// they finish, and consumers Recv until the drain completes. Each
// transferred value counts as two operations (send + recv), keeping
// Mops comparable with the pairwise workload.
func runBlockingOnce(name string, cfg queues.Config, opts PointOpts) (mops, memMB, fpMB float64, err error) {
	producers, consumers := opts.Producers, opts.Consumers
	if producers <= 0 || consumers <= 0 {
		producers, consumers = BlockingSplit(opts.Threads)
	}
	if cfg.MaxThreads < producers+consumers+1 {
		cfg.MaxThreads = producers + consumers + 1
	}
	q, err := queues.New(name, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	closer, ok := q.(queueapi.Closer)
	if !ok {
		return 0, 0, 0, fmt.Errorf("harness: %s is not a blocking queue (no Close)", name)
	}

	perProducer := opts.Ops / (2 * producers)
	if perProducer == 0 {
		perProducer = 1
	}

	var prod, cons sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	errs := make(chan error, producers+consumers)
	for p := 0; p < producers; p++ {
		w, herr := queueapi.WaitableHandle(q)
		if herr != nil {
			return 0, 0, 0, herr
		}
		prod.Add(1)
		go func(seed uint64, w queueapi.Waitable) {
			defer prod.Done()
			barrier.Wait()
			rng := seed*2654435761 + 1
			for i := 0; i < perProducer; i++ {
				rng = xorshift(rng)
				if serr := w.Send(rng); serr != nil {
					errs <- serr
					return
				}
			}
		}(uint64(p)+1, w)
	}
	for c := 0; c < consumers; c++ {
		w, herr := queueapi.WaitableHandle(q)
		if herr != nil {
			return 0, 0, 0, herr
		}
		cons.Add(1)
		go func(w queueapi.Waitable) {
			defer cons.Done()
			barrier.Wait()
			for {
				if _, rerr := w.Recv(); rerr != nil {
					if !errors.Is(rerr, queueapi.ErrClosed) {
						errs <- rerr
					}
					return
				}
			}
		}(w)
	}

	start := time.Now()
	barrier.Done()
	prod.Wait()
	if cerr := closer.Close(); cerr != nil {
		return 0, 0, 0, cerr
	}
	cons.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case werr := <-errs:
		return 0, 0, 0, werr
	default:
	}
	return stats.Mops(2*producers*perProducer, elapsed), 0, footprintMB(q), nil
}

// WakeupLatency measures the blocking facade's parked-wakeup latency:
// a consumer blocks on Recv, the producer gives it time to park, then
// timestamps the moment of Send inside the payload itself; the sample
// is the delay until Recv returns with that payload. This is the
// latency cost of parking instead of spin-polling (figure b1's
// companion metric).
//
// Samples come back as a log-bucketed histogram in nanoseconds, so
// callers report tail percentiles (p99, p99.9, max) rather than a
// mean — wakeup latency is tail-dominated, and a mean over a few
// slow scheduler round-trips hides exactly the samples that matter.
func WakeupLatency(name string, cfg queues.Config, samples int) (metrics.HistogramSnapshot, error) {
	var zero metrics.HistogramSnapshot
	if cfg.MaxThreads < 3 {
		cfg.MaxThreads = 3
	}
	if cfg.Metrics == nil {
		// The park counter below is how each Send waits for the
		// consumer to actually be parked, so the measurement needs a
		// sink even when the caller didn't ask for one.
		cfg.Metrics = metrics.New()
	}
	q, err := queues.New(name, cfg)
	if err != nil {
		return zero, err
	}
	closer, ok := q.(queueapi.Closer)
	if !ok {
		return zero, fmt.Errorf("harness: %s is not a blocking queue", name)
	}
	sender, err := queueapi.WaitableHandle(q)
	if err != nil {
		return zero, err
	}
	receiver, err := queueapi.WaitableHandle(q)
	if err != nil {
		return zero, err
	}

	hist := metrics.NewHistogram()
	nanos := make(chan uint64, samples)
	done := make(chan error, 1)
	go func() {
		for {
			v, rerr := receiver.Recv()
			if rerr != nil {
				if errors.Is(rerr, queueapi.ErrClosed) {
					rerr = nil
				}
				done <- rerr
				return
			}
			// The payload is the send timestamp (UnixNano).
			nanos <- uint64(time.Now().UnixNano() - int64(v))
		}
	}()
	// Each Send must land while the consumer is parked — that is the
	// latency being measured. Instead of sleeping a fixed interval and
	// hoping (flaky on a loaded host: too short measures a spin-path
	// wake, too long wastes wall clock), watch the queue's own park
	// counter: it increments exactly when the consumer registers on the
	// empty-side park point, so "count advanced past the last sample's
	// baseline" is the event "consumer is parked again". The deadline
	// bounds a pathological scheduler stall; queues that somehow lack a
	// Statser fall back to the old fixed settle sleep.
	statser, hasStats := q.(queueapi.Statser)
	lastParks := uint64(0)
	for i := 0; i < samples; i++ {
		if hasStats {
			deadline := time.Now().Add(100 * time.Millisecond)
			for statser.Stats().Counts[metrics.Park] <= lastParks && time.Now().Before(deadline) {
				runtime.Gosched()
			}
			lastParks = statser.Stats().Counts[metrics.Park]
		} else {
			time.Sleep(200 * time.Microsecond)
		}
		if serr := sender.Send(uint64(time.Now().UnixNano())); serr != nil {
			return zero, serr
		}
	}
	for n := 0; n < samples; n++ {
		hist.Record(<-nanos)
	}
	if cerr := closer.Close(); cerr != nil {
		return zero, cerr
	}
	if werr := <-done; werr != nil {
		return zero, werr
	}
	return hist.Snapshot(), nil
}
