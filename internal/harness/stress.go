// Production-readiness stress tier: long-horizon scenarios that hunt
// the failure modes figure tables can't show — lost or duplicated
// values under sustained concurrency, footprint creep across
// fill/drain cycles, and livelock under maximum-frequency contention.
// The scenarios run three ways: scaled-down in the regular test suite,
// full-length behind the soak build tag (CI's soak-smoke job), and
// on demand via cmd/wcqstressd -scenario.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queueapi"
	"repro/internal/queues"
)

// StressOpts sizes one stress scenario.
type StressOpts struct {
	// Threads is the total goroutine count (split half/half into
	// producers and consumers by OpenLoopSplit; minimum one of each).
	Threads int
	// Duration is how long the scenario sustains load.
	Duration time.Duration
	// Burst overrides the per-cycle fill size of memory_stress
	// (default: the queue's capacity for bounded queues, 4096 for
	// unbounded ones).
	Burst int
}

func (o StressOpts) withDefaults() StressOpts {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	return o
}

// StressResult summarizes a completed stress scenario.
type StressResult struct {
	// Transfers is the number of values that made the full
	// enqueue→dequeue round trip.
	Transfers uint64
	// Cycles counts completed fill/drain cycles (memory_stress only).
	Cycles int
	// BaselineMB is the queue's Footprint() after the first drain —
	// the steady state the leak check holds every later drain to
	// (memory_stress only).
	BaselineMB float64
	// FootprintMB is the queue's Footprint() at the end of the run.
	FootprintMB float64
	// Elapsed is the measured scenario duration.
	Elapsed time.Duration
}

// StressScenarioNames lists the production-readiness scenarios in
// display order — the keys accepted by RunStress and by
// cmd/wcqstressd -scenario.
func StressScenarioNames() []string {
	return []string{"concurrent_stress", "memory_stress", "high_frequency"}
}

// RunStress dispatches a named stress scenario against a queue.
func RunStress(scenario, name string, cfg queues.Config, opts StressOpts) (StressResult, error) {
	switch scenario {
	case "concurrent_stress":
		return ConcurrentStress(name, cfg, opts)
	case "memory_stress":
		return MemoryStress(name, cfg, opts)
	case "high_frequency":
		return HighFrequency(name, cfg, opts)
	}
	return StressResult{}, fmt.Errorf("harness: unknown stress scenario %q (want one of %v)",
		scenario, StressScenarioNames())
}

// deadlineMask throttles deadline/stop polls in the stress hot loops:
// the check runs once per 256 iterations, cheap enough to vanish into
// the workload while bounding overshoot to microseconds.
const deadlineMask = 255

// stressConfig applies the shared scenario plumbing to a queue config:
// a default capacity and a thread budget covering every worker handle.
func stressConfig(cfg queues.Config, defaultCap uint64, threads int) queues.Config {
	if cfg.Capacity == 0 {
		cfg.Capacity = defaultCap
	}
	if cfg.MaxThreads < threads+2 {
		cfg.MaxThreads = threads + 2
	}
	return cfg
}

// ConcurrentStress hammers one queue with sustained mixed traffic —
// scalar and batched enqueues/dequeues from every goroutine at once —
// and verifies conservation when the dust settles: every value
// enqueued is dequeued exactly once. Counts and wrapping sums must
// both match, so neither loss nor duplication nor substitution can
// hide.
func ConcurrentStress(name string, cfg queues.Config, opts StressOpts) (StressResult, error) {
	opts = opts.withDefaults()
	producers, consumers := OpenLoopSplit(opts.Threads)
	q, err := queues.New(name, stressConfig(cfg, 1<<12, opts.Threads))
	if err != nil {
		return StressResult{}, err
	}

	var produced, producedSum, consumed, consumedSum atomic.Uint64
	var prodDone atomic.Bool
	var prod, cons sync.WaitGroup
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()

	for p := 0; p < producers; p++ {
		h, herr := q.Handle()
		if herr != nil {
			return StressResult{}, herr
		}
		prod.Add(1)
		go func(h queueapi.Handle, seed uint64) {
			defer prod.Done()
			rng := seed*2654435761 + 1
			batch := make([]uint64, 16)
			var count, sum uint64
			for i := 0; ; i++ {
				if i&deadlineMask == 0 && time.Now().After(deadline) {
					break
				}
				rng = xorshift(rng)
				if rng&7 == 0 {
					// Batched path every eighth round: a random-length
					// chunk through the native reservation (or the
					// scalar fallback), retried until fully in.
					n := int(rng>>8&7) + 2
					for j := 0; j < n; j++ {
						rng = xorshift(rng)
						batch[j] = rng
						sum += rng
					}
					for off := 0; off < n; {
						k := queueapi.EnqueueBatch(h, batch[off:n])
						if k == 0 {
							runtime.Gosched()
						}
						off += k
					}
					count += uint64(n)
					continue
				}
				for !h.Enqueue(rng) {
					runtime.Gosched()
				}
				count++
				sum += rng
			}
			produced.Add(count)
			producedSum.Add(sum)
		}(h, uint64(p)+1)
	}
	for c := 0; c < consumers; c++ {
		h, herr := q.Handle()
		if herr != nil {
			return StressResult{}, herr
		}
		cons.Add(1)
		go func(h queueapi.Handle, seed uint64) {
			defer cons.Done()
			rng := seed*2654435761 + 1
			batch := make([]uint64, 16)
			for {
				rng = xorshift(rng)
				got := 0
				if rng&7 == 0 {
					n := int(rng>>8&7) + 2
					got = queueapi.DequeueBatch(h, batch[:n])
					for j := 0; j < got; j++ {
						consumedSum.Add(batch[j])
					}
					consumed.Add(uint64(got))
				} else if v, ok := h.Dequeue(); ok {
					consumedSum.Add(v)
					consumed.Add(1)
					got = 1
				}
				if got > 0 {
					continue
				}
				// Queue looked empty. Producers publish their counts
				// before prodDone flips, so once the live consumed
				// total catches the final produced total there is
				// nothing left in flight anywhere.
				if prodDone.Load() && consumed.Load() >= produced.Load() {
					return
				}
				runtime.Gosched()
			}
		}(h, uint64(c)+101)
	}

	prod.Wait()
	prodDone.Store(true)
	cons.Wait()
	elapsed := time.Since(start)

	if produced.Load() != consumed.Load() || producedSum.Load() != consumedSum.Load() {
		return StressResult{}, fmt.Errorf(
			"harness: %s conservation violated: produced %d (sum %#x), consumed %d (sum %#x)",
			name, produced.Load(), producedSum.Load(), consumed.Load(), consumedSum.Load())
	}
	return StressResult{
		Transfers:   consumed.Load(),
		FootprintMB: footprintMB(q),
		Elapsed:     elapsed,
	}, nil
}

// MemoryStress drives repeated fill/drain cycles and holds every
// post-drain Footprint() to the steady state observed after the FIRST
// drain: a queue that retains memory proportionally to traffic (an
// outer-list leak in the unbounded compositions, an unfreed segment
// chain) walks through the bound within a few cycles, while one-time
// warm-up allocation is tolerated by construction.
func MemoryStress(name string, cfg queues.Config, opts StressOpts) (StressResult, error) {
	opts = opts.withDefaults()
	producers, consumers := OpenLoopSplit(opts.Threads)
	q, err := queues.New(name, stressConfig(cfg, 1<<10, opts.Threads))
	if err != nil {
		return StressResult{}, err
	}
	burst := opts.Burst
	if burst <= 0 {
		burst = int(q.Cap())
		if burst == 0 {
			burst = 4096 // unbounded: deep enough to grow the outer list
		}
	}

	// Handles are allocated once and reused across cycles (sequential
	// reuse is safe; the census is per-handle, not per-goroutine).
	prodHandles := make([]queueapi.Handle, producers)
	consHandles := make([]queueapi.Handle, consumers)
	for p := range prodHandles {
		if prodHandles[p], err = q.Handle(); err != nil {
			return StressResult{}, err
		}
	}
	for c := range consHandles {
		if consHandles[c], err = q.Handle(); err != nil {
			return StressResult{}, err
		}
	}

	res := StressResult{}
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	for cycle := 0; cycle == 0 || !time.Now().After(deadline); cycle++ {
		var filled, drained atomic.Uint64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			share := burst / producers
			if p == 0 {
				share += burst % producers
			}
			wg.Add(1)
			go func(h queueapi.Handle, share int, seed uint64) {
				defer wg.Done()
				rng := seed*2654435761 + 1
				for i := 0; i < share; i++ {
					rng = xorshift(rng)
					if !h.Enqueue(rng) {
						break // bounded queue full: this cycle's fill is done
					}
					filled.Add(1)
				}
			}(prodHandles[p], share, uint64(cycle*producers+p)+1)
		}
		wg.Wait()
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func(h queueapi.Handle) {
				defer wg.Done()
				for drained.Load() < filled.Load() {
					if _, ok := h.Dequeue(); ok {
						drained.Add(1)
						continue
					}
					runtime.Gosched()
				}
			}(consHandles[c])
		}
		wg.Wait()
		res.Transfers += drained.Load()
		res.Cycles++
		fp := footprintMB(q)
		if cycle == 0 {
			res.BaselineMB = fp
			continue
		}
		// The leak bound: a stable queue's post-drain footprint stays
		// within 2x the first-drain steady state, plus a quarter-MB
		// absolute floor so near-zero baselines don't divide away the
		// tolerance.
		if limit := res.BaselineMB*2 + 0.25; fp > limit {
			return res, fmt.Errorf(
				"harness: %s leaked: post-drain footprint %.3f MB after cycle %d, baseline %.3f MB (limit %.3f)",
				name, fp, cycle, res.BaselineMB, limit)
		}
	}
	res.FootprintMB = footprintMB(q)
	res.Elapsed = time.Since(start)
	return res, nil
}

// HighFrequency sustains maximum-rate pairwise traffic through a
// deliberately tiny ring — the regime where full/empty transitions
// dominate and every operation contends — and watches forward progress
// in fixed windows: two consecutive windows without a single completed
// transfer means livelock and fails the scenario.
func HighFrequency(name string, cfg queues.Config, opts StressOpts) (StressResult, error) {
	opts = opts.withDefaults()
	producers, consumers := OpenLoopSplit(opts.Threads)
	q, err := queues.New(name, stressConfig(cfg, 64, opts.Threads))
	if err != nil {
		return StressResult{}, err
	}

	var transfers atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		h, herr := q.Handle()
		if herr != nil {
			return StressResult{}, herr
		}
		wg.Add(1)
		go func(h queueapi.Handle, seed uint64) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			for i := 0; ; i++ {
				if i&deadlineMask == 0 && stop.Load() {
					return
				}
				rng = xorshift(rng)
				if !h.Enqueue(rng) {
					runtime.Gosched()
				}
			}
		}(h, uint64(p)+1)
	}
	for c := 0; c < consumers; c++ {
		h, herr := q.Handle()
		if herr != nil {
			return StressResult{}, herr
		}
		wg.Add(1)
		go func(h queueapi.Handle) {
			defer wg.Done()
			for i := 0; ; i++ {
				if i&deadlineMask == 0 && stop.Load() {
					return
				}
				if _, ok := h.Dequeue(); ok {
					transfers.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}(h)
	}

	// The watchdog: sample the transfer counter in fixed windows. The
	// window is generous (an eighth of the run, at least 50ms) so a
	// scheduler hiccup on a loaded CI host doesn't masquerade as
	// livelock; only two consecutive silent windows fail.
	window := opts.Duration / 8
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	start := time.Now()
	last := uint64(0)
	var stalled time.Duration
	for time.Since(start) < opts.Duration {
		time.Sleep(window)
		now := transfers.Load()
		if now == last {
			stalled += window
			if stalled >= 2*window {
				stop.Store(true)
				wg.Wait()
				return StressResult{}, fmt.Errorf(
					"harness: %s livelocked: no transfers for %v at high frequency (total %d)",
					name, stalled, now)
			}
		} else {
			stalled = 0
		}
		last = now
	}
	stop.Store(true)
	wg.Wait()
	return StressResult{
		Transfers:   transfers.Load(),
		FootprintMB: footprintMB(q),
		Elapsed:     time.Since(start),
	}, nil
}
