package harness

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/stats"
)

// Figure w1 compares blocking-wait strategies under waiter pressure:
// the same 1:3 send/recv blocking workload as b1, swept over the
// TOTAL goroutine count (far past GOMAXPROCS, so "waiters" is the
// honest axis name) with one line per wait strategy. Each point
// reports throughput, the blocking-wait latency ladder (spin-phase
// hits and futex parks share one histogram, so strategies are
// directly comparable), and the spin-hit rate the adaptive budget
// converged to.
var (
	waitQueues     = []string{"Chan", "ChanSharded"}
	waiterCounts   = []int{8, 64, 256, 1024}
	waitStrategies = []string{"park", "adaptive"}
	// waitRingCap keeps w1's rings small: the figure is about waiting,
	// not buffering, and a small ring makes the full/empty transitions
	// (hence the waits) frequent at every waiter count. At 4096 slots a
	// short run barely blocks at all and the wait ladder degenerates to
	// a handful of close-drain samples.
	waitRingCap = uint64(1 << 6)
)

// runWaiters executes a wait-strategy figure: for each queue and
// strategy, sweep the waiter count. Each point gets a fresh metrics
// sink (regardless of RunOpts.Metrics — the spin-hit rate and wait
// ladder ARE the figure) and a fresh queue per rep; the sink
// accumulates across reps, like the open-loop latency merge.
func (f Figure) runWaiters(opts RunOpts, qs []string) []Point {
	waiters := f.Waiters
	if len(opts.Waiters) > 0 {
		waiters = opts.Waiters
	}
	var pts []Point
	for _, name := range qs {
		for _, wname := range f.Waits {
			strat, serr := backoff.ByName(wname)
			for _, n := range waiters {
				if opts.MaxThreads > 0 && n > opts.MaxThreads {
					continue
				}
				pt := Point{Queue: name, Threads: n, Wait: wname}
				if serr != nil {
					pt.Err = serr
					pts = append(pts, pt)
					continue
				}
				sink := metrics.New()
				cfg := queues.Config{
					Capacity:   waitRingCap,
					MaxThreads: n + 1,
					Mode:       f.Mode,
					Shards:     opts.Shards,
					Ring:       opts.Ring,
					Core:       opts.Core,
					Metrics:    sink,
					Wait:       strat,
					Handoff:    opts.Handoff,
				}
				if opts.Capacity > 0 {
					cfg.Capacity = opts.Capacity
				}
				if opts.Emulate {
					cfg.Mode = atomicx.EmulatedFAA
				}
				mops := make([]float64, 0, opts.Reps)
				for rep := 0; rep < opts.Reps; rep++ {
					m, _, fp, err := runBlockingOnce(name, cfg, PointOpts{Threads: n, Ops: opts.Ops})
					if err != nil {
						pt.Err = err
						break
					}
					mops = append(mops, m)
					if fp > pt.FootprintMB {
						pt.FootprintMB = fp
					}
				}
				if pt.Err == nil {
					pt.Mops = stats.Summarize(mops)
					snap := sink.Snapshot()
					pt.Latency = snap.Parked
					hits := snap.Counts[metrics.SpinHit]
					if total := hits + snap.Counts[metrics.SpinMiss]; total > 0 {
						pt.SpinHitRate = float64(hits) / float64(total)
					}
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts
}

// FormatWaiterPoints renders a wait-strategy figure in long format:
// one row per (queue, strategy, waiter count) with throughput, the
// blocking-wait ladder in microseconds, and the spin-hit rate. The
// ladder includes spin-phase hits, so a spin-heavy strategy shows its
// win as a lower p50/p99, not as missing samples.
func FormatWaiterPoints(pts []Point) string {
	out := "queue\twait\twaiters\tMops/s\twait p50(µs)\tp99(µs)\tmax(µs)\tspin-hit\n"
	for _, p := range pts {
		out += fmt.Sprintf("%s\t%s\t%d", p.Queue, p.Wait, p.Threads)
		if p.Err != nil {
			out += "\tn/a\tn/a\tn/a\tn/a\tn/a\n"
			continue
		}
		out += fmt.Sprintf("\t%.3f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			p.Mops.Mean,
			float64(p.Latency.Quantile(0.50))/1e3,
			float64(p.Latency.Quantile(0.99))/1e3,
			float64(p.Latency.Max)/1e3,
			p.SpinHitRate)
	}
	return out
}
