package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/queues"
)

// stressDuration scales the scenarios for the regular suite: a quick
// pulse under -short, a substantial slice otherwise. The full-length
// tier lives in soak_test.go behind the soak build tag.
func stressDuration(t *testing.T) time.Duration {
	t.Helper()
	if testing.Short() {
		return 100 * time.Millisecond
	}
	return 300 * time.Millisecond
}

func TestStressScenarioNamesDispatch(t *testing.T) {
	names := StressScenarioNames()
	if len(names) != 3 {
		t.Fatalf("have %d scenarios, want 3", len(names))
	}
	for _, s := range names {
		s := s
		t.Run(s, func(t *testing.T) {
			res, err := RunStress(s, "wCQ", queues.Config{Capacity: 256}, StressOpts{
				Threads: 2, Duration: 50 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Transfers == 0 {
				t.Fatal("scenario moved no values")
			}
		})
	}
	if _, err := RunStress("fork_bomb", "wCQ", queues.Config{}, StressOpts{}); err == nil {
		t.Fatal("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "concurrent_stress") {
		t.Fatalf("error does not list the valid scenarios: %v", err)
	}
}

func TestConcurrentStressConservation(t *testing.T) {
	// The conservation check must hold on the bare rings, the sharded
	// composition, an unbounded queue, and a blocking facade's
	// nonblocking surface alike.
	for _, name := range []string{"wCQ", "SCQ", "Sharded", "UWCQ", "Chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := ConcurrentStress(name, queues.Config{Capacity: 512}, StressOpts{
				Threads: 4, Duration: stressDuration(t),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Transfers == 0 || res.Elapsed <= 0 {
				t.Fatalf("underfilled result: %+v", res)
			}
		})
	}
}

func TestMemoryStressHoldsFootprintBaseline(t *testing.T) {
	// The unbounded queues are the ones with something to leak: their
	// footprint is live (outer-list segments), so a retained segment
	// chain would break the post-drain baseline bound.
	for _, name := range []string{"UWCQ", "LSCQ", "ChanUnbounded", "wCQ"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := MemoryStress(name, queues.Config{Capacity: 128}, StressOpts{
				Threads: 2, Duration: stressDuration(t),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles < 2 {
				t.Fatalf("only %d fill/drain cycles completed", res.Cycles)
			}
			if res.FootprintMB > res.BaselineMB*2+0.25 {
				t.Fatalf("final footprint %.3f MB above baseline %.3f MB bound", res.FootprintMB, res.BaselineMB)
			}
		})
	}
}

func TestHighFrequencyMakesProgress(t *testing.T) {
	for _, name := range []string{"wCQ", "SCQ", "Chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := HighFrequency(name, queues.Config{}, StressOpts{
				Threads: 4, Duration: stressDuration(t),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Transfers == 0 {
				t.Fatal("no transfers at high frequency")
			}
		})
	}
}
