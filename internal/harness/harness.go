// Package harness reproduces the wCQ paper's benchmark framework
// (§6, originally the YMC test framework extended with SCQ, CRTurn and
// wCQ): workload generators, thread sweeps, throughput and memory
// measurement, and one runner per figure of the evaluation.
//
// Differences from the paper's testbed are confined to this package
// and documented in ARCHITECTURE.md: goroutines instead of pinned pthreads,
// runtime heap sampling + cumulative allocation accounting instead of
// malloc probes, and an emulated-F&A mode standing in for PowerPC.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/queueapi"
	"repro/internal/queues"
	"repro/internal/stats"
)

// Workload enumerates the paper's benchmark loops.
type Workload uint8

const (
	// Pairwise: each thread alternates Enqueue and Dequeue in a tight
	// loop (Figs. 11b, 12b).
	Pairwise Workload = iota
	// Mixed: each op is Enqueue or Dequeue with probability 1/2
	// (Figs. 10b, 11c, 12c).
	Mixed
	// EmptyDeq: Dequeue in a tight loop on an empty queue (Figs. 11a,
	// 12a).
	EmptyDeq
)

// String names the workload as the figure tables do.
func (w Workload) String() string {
	switch w {
	case Pairwise:
		return "pairwise"
	case Mixed:
		return "50/50"
	case EmptyDeq:
		return "empty-dequeue"
	}
	return "?"
}

// PointOpts sizes one measurement point.
type PointOpts struct {
	Threads int
	Ops     int  // total operations across all threads
	Reps    int  // repetitions (the paper uses 10)
	Delays  bool // tiny random delays between ops (memory test)
	Memory  bool // sample heap usage
	// Batch > 1 drives the workload through queueapi.EnqueueBatch /
	// DequeueBatch in chunks of this size (native Batcher when the
	// queue has one, generic fallback otherwise). One batched call
	// counts as Batch operations.
	Batch int
	// Blocking drives the point through the blocking Send/Recv/Close
	// surface instead of the workload loop: Threads is split into
	// producers and consumers by BlockingSplit, producers send,
	// consumers drain until close. Requires a queue whose handles
	// implement queueapi.Waitable. Delays/Memory/Batch are ignored.
	Blocking bool
	// Producers/Consumers, when both positive, pin the blocking role
	// split explicitly instead of deriving it from Threads via
	// BlockingSplit — the handoff figure h1 sweeps this imbalance.
	Producers int
	Consumers int
}

// Point is one (queue, thread-count) measurement. Burst figures key
// points by (queue, burst size) and batch figures by (queue, batch
// size) instead, at a fixed thread count.
type Point struct {
	Queue    string
	Threads  int
	Burst    int // burst size (burst figures only; 0 otherwise)
	Batch    int // batch size (batch figures only; 0 otherwise)
	Mops     stats.Summary
	MemoryMB float64 // peak memory consumed (cumulative static + heap)
	// FootprintMB is the queue's own Footprint() at the end of a run:
	// the construction-time allocation for the bounded queues (summed
	// over shards for the sharded compositions) and the post-run live
	// retention for the unbounded ones. Unlike MemoryMB it needs no
	// heap sampling, so every point carries it.
	FootprintMB float64
	// Load is the offered-load fraction of the queue's calibrated
	// closed-loop capacity (open-loop figure l1 only; 0 otherwise).
	Load float64
	// OfferedMops is the open-loop arrival rate Load resolved to, in
	// millions of transfers per second (l1 only).
	OfferedMops float64
	// Latency is the coordinated-omission-safe end-to-end latency
	// distribution in nanoseconds, merged across reps (l1 only; zero
	// Count otherwise), or the blocking-wait ladder (w1). For l1, Mops
	// summarizes the ACHIEVED transfer rate in Mtransfers/s rather
	// than the closed-loop op rate.
	Latency metrics.HistogramSnapshot
	// Wait names the blocking-wait strategy this point ran under
	// (wait-strategy figure w1 only; "" otherwise).
	Wait string
	// SpinHitRate is the fraction of blocking waits resolved in the
	// spin/yield phases without parking, in [0, 1] (w1 only, and only
	// meaningful for strategies with a spin phase).
	SpinHitRate float64
	// Producers/Consumers record the explicit blocking role split
	// (handoff figure h1 only; 0 otherwise — the split is then the
	// BlockingSplit derivation from Threads).
	Producers int
	Consumers int
	// Handoff names the direct-handoff setting this point ran under
	// ("on"/"off"; h1 only, "" otherwise).
	Handoff string
	// HandoffRate is the fraction of handoff attempts that delivered a
	// value past the ring, in [0, 1] (h1 only).
	HandoffRate float64
	Err         error // non-nil when the queue is unavailable (e.g. LCRQ under emulation)
}

// RunPoint measures one queue at one thread count.
func RunPoint(name string, cfg queues.Config, w Workload, opts PointOpts) Point {
	pt := Point{Queue: name, Threads: opts.Threads}
	if opts.Reps <= 0 {
		opts.Reps = 1
	}
	mops := make([]float64, 0, opts.Reps)
	for rep := 0; rep < opts.Reps; rep++ {
		m, mem, fp, err := runOnce(name, cfg, w, opts)
		if err != nil {
			pt.Err = err
			return pt
		}
		mops = append(mops, m)
		if mem > pt.MemoryMB {
			pt.MemoryMB = mem
		}
		if fp > pt.FootprintMB {
			pt.FootprintMB = fp
		}
	}
	pt.Mops = stats.Summarize(mops)
	return pt
}

// footprintMB converts a queue's Footprint to the figure unit.
func footprintMB(q queueapi.Queue) float64 { return float64(q.Footprint()) / (1 << 20) }

// runOnce builds a fresh queue and drives one timed run.
func runOnce(name string, cfg queues.Config, w Workload, opts PointOpts) (mops, memMB, fpMB float64, err error) {
	if opts.Blocking {
		return runBlockingOnce(name, cfg, opts)
	}
	if cfg.MaxThreads < opts.Threads+1 {
		cfg.MaxThreads = opts.Threads + 1
	}
	q, err := queues.New(name, cfg)
	if err != nil {
		return 0, 0, 0, err
	}

	var baseline runtime.MemStats
	var sampler *memSampler
	if opts.Memory {
		runtime.GC()
		runtime.ReadMemStats(&baseline)
		sampler = startMemSampler()
	}

	perThread := opts.Ops / opts.Threads
	if perThread == 0 {
		perThread = 1
	}
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	for t := 0; t < opts.Threads; t++ {
		h, herr := q.Handle()
		if herr != nil {
			return 0, 0, 0, herr
		}
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			barrier.Wait()
			rng := seed*2654435761 + 1
			if opts.Batch > 1 {
				runBatched(h, w, perThread, opts, rng)
				return
			}
			for i := 0; i < perThread; i++ {
				switch w {
				case Pairwise:
					h.Enqueue(rng)
					h.Dequeue()
					i++ // a pair is two operations
				case Mixed:
					rng = xorshift(rng)
					if rng&1 == 0 {
						h.Enqueue(rng)
					} else {
						h.Dequeue()
					}
				case EmptyDeq:
					h.Dequeue()
				}
				if opts.Delays {
					rng = xorshift(rng)
					spin(int(rng % 64))
				}
			}
		}(uint64(t) + 1)
	}
	start := time.Now()
	barrier.Done()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	if opts.Memory {
		peak := sampler.stop()
		var heapMB float64
		if peak > baseline.HeapAlloc {
			heapMB = float64(peak-baseline.HeapAlloc) / (1 << 20)
		}
		// Cumulative static/ring allocation (wCQ/SCQ: fixed; LCRQ/YMC:
		// grows with closed rings / segments) plus dynamic heap growth.
		memMB = float64(q.Footprint())/(1<<20) + heapMB
	}
	return stats.Mops(opts.Ops, elapsed), memMB, footprintMB(q), nil
}

// runBatched is the batched twin of the scalar workload loop: the
// same op mix, issued in chunks of opts.Batch through the queueapi
// batch helpers. Operations are counted like the scalar loop counts
// attempts: each transferred value is one op, and a batch call that
// moves nothing (queue empty/full) still counts as one probe — so
// batched and scalar Mops stay comparable on the empty-heavy
// workloads.
func runBatched(h queueapi.Handle, w Workload, perThread int, opts PointOpts, rng uint64) {
	in := make([]uint64, opts.Batch)
	out := make([]uint64, opts.Batch)
	for i := range in {
		rng = xorshift(rng)
		in[i] = rng
	}
	for i := 0; i < perThread; {
		switch w {
		case Pairwise:
			i += max(queueapi.EnqueueBatch(h, in), 1)
			i += max(queueapi.DequeueBatch(h, out), 1)
		case Mixed:
			rng = xorshift(rng)
			if rng&1 == 0 {
				i += max(queueapi.EnqueueBatch(h, in), 1)
			} else {
				i += max(queueapi.DequeueBatch(h, out), 1)
			}
		case EmptyDeq:
			i += max(queueapi.DequeueBatch(h, out), 1)
		}
		if opts.Delays {
			rng = xorshift(rng)
			spin(int(rng % 64))
		}
	}
}

// xorshift is a tiny per-thread PRNG (no allocation, no locks).
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// spin busy-loops for n iterations — the paper's "tiny random delays".
//
//go:noinline
func spin(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

// memSampler polls HeapAlloc in the background during a run.
type memSampler struct {
	stopc chan struct{}
	done  chan struct{}
	peak  atomic.Uint64
}

func startMemSampler() *memSampler {
	s := &memSampler{stopc: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak.Load() {
					s.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return s
}

func (s *memSampler) stop() uint64 {
	close(s.stopc)
	<-s.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak.Load() {
		s.peak.Store(ms.HeapAlloc)
	}
	return s.peak.Load()
}

// FormatPoints renders a figure's results as the table the paper plots:
// one row per thread count, one column per queue.
func FormatPoints(pts []Point, threads []int, queueNames []string, memory bool) string {
	cell := func(p Point) string {
		if p.Err != nil {
			return "n/a"
		}
		if memory {
			return fmt.Sprintf("%.2f", p.MemoryMB)
		}
		return fmt.Sprintf("%.3f", p.Mops.Mean)
	}
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%d", p.Queue, p.Threads)] = p
	}
	out := "threads"
	for _, q := range queueNames {
		out += fmt.Sprintf("\t%s", q)
	}
	out += "\n"
	for _, t := range threads {
		out += fmt.Sprintf("%d", t)
		for _, q := range queueNames {
			out += "\t" + cell(byKey[fmt.Sprintf("%s/%d", q, t)])
		}
		out += "\n"
	}
	return out
}
