package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queueapi"
	"repro/internal/queues"
	"repro/internal/stats"
)

// BurstSplit derives the producer/consumer role split for the burst
// workload: half the goroutines produce, half consume (minimum one of
// each), since both phases run the full population.
func BurstSplit(threads int) (producers, consumers int) {
	producers = threads / 2
	if producers < 1 {
		producers = 1
	}
	consumers = threads - producers
	if consumers < 1 {
		consumers = 1
	}
	return producers, consumers
}

// runBurstOnce drives one burst/drain cycle against a fresh queue:
// producers enqueue `burst` values as fast as they can (an unbounded
// queue absorbs all of them; a bounded one would shed), the peak
// Footprint is sampled at the top of the burst, and consumers then
// drain the queue empty. Each transferred value counts as two
// operations (enqueue + dequeue), keeping Mops comparable with the
// pairwise workload. This is the figure u1 engine: it measures the
// trade the unbounded queues make — absorb any burst, pay for it in
// live ring memory — and how the ring pool caps the cost once the
// burst drains.
func runBurstOnce(name string, cfg queues.Config, burst int, opts PointOpts) (mops, memMB, fpMB float64, err error) {
	producers, consumers := BurstSplit(opts.Threads)
	if cfg.MaxThreads < producers+consumers+1 {
		cfg.MaxThreads = producers + consumers + 1
	}
	q, err := queues.New(name, cfg)
	if err != nil {
		return 0, 0, 0, err
	}

	perProducer := burst / producers
	if perProducer == 0 {
		perProducer = 1
	}
	total := perProducer * producers

	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	for p := 0; p < producers; p++ {
		h, herr := q.Handle()
		if herr != nil {
			return 0, 0, 0, herr
		}
		wg.Add(1)
		go func(seed uint64, h queueapi.Handle) {
			defer wg.Done()
			barrier.Wait()
			rng := seed*2654435761 + 1
			for i := 0; i < perProducer; i++ {
				rng = xorshift(rng)
				for !h.Enqueue(rng) {
					// Unbounded queues never take this branch; it keeps
					// the workload honest for bounded comparators.
					runtime.Gosched()
				}
			}
		}(uint64(p)+1, h)
	}
	start := time.Now()
	barrier.Done()
	wg.Wait() // burst fully buffered

	// The whole burst is live right now: this is the figure's memory
	// axis — peak retained bytes as a function of burst size.
	memMB = float64(q.Footprint()) / (1 << 20)

	var dg sync.WaitGroup
	var drained atomic.Int64
	for c := 0; c < consumers; c++ {
		h, herr := q.Handle()
		if herr != nil {
			return 0, 0, 0, herr
		}
		dg.Add(1)
		go func(h queueapi.Handle) {
			defer dg.Done()
			for drained.Load() < int64(total) {
				if _, ok := h.Dequeue(); ok {
					drained.Add(1)
					continue
				}
				runtime.Gosched()
			}
		}(h)
	}
	dg.Wait()
	elapsed := time.Since(start).Seconds()
	// Post-drain retention: with the burst gone, Footprint shows what
	// the ring pool keeps — the bounded-memory half of the story.
	return stats.Mops(2*total, elapsed), memMB, footprintMB(q), nil
}

// FormatBurstPoints renders a burst figure's results: one row per
// burst size, and per queue a throughput and a peak-memory column —
// both axes of the absorb-vs-retain trade in one table.
func FormatBurstPoints(pts []Point, bursts []int, queueNames []string) string {
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%d", p.Queue, p.Burst)] = p
	}
	out := "burst"
	for _, q := range queueNames {
		out += fmt.Sprintf("\t%s Mops\t%s peakMB", q, q)
	}
	out += "\n"
	for _, b := range bursts {
		out += fmt.Sprintf("%d", b)
		for _, q := range queueNames {
			p, ok := byKey[fmt.Sprintf("%s/%d", q, b)]
			if !ok || p.Err != nil {
				out += "\tn/a\tn/a"
				continue
			}
			out += fmt.Sprintf("\t%.3f\t%.3f", p.Mops.Mean, p.MemoryMB)
		}
		out += "\n"
	}
	return out
}
