// Open-loop workload engine (figure l1).
//
// The closed-loop figures measure capacity: every thread issues its
// next operation the instant the previous one returns, so a slow queue
// simply slows the load down with it and latency degenerates to
// 1/throughput. The open-loop engine measures what a deployed queue's
// clients actually see: arrivals follow their own schedule (Poisson or
// fixed-rate), whether or not the queue keeps up, and each transfer's
// latency is charged from the moment the schedule INTENDED it to
// start — not from the moment a backlogged producer finally got to
// issue it. That intended-time rule is the coordinated-omission guard:
// a queue that stalls for 10ms under load accumulates a 10ms-deep tail
// in the histogram instead of silently thinning the sample stream.
package harness

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/queueapi"
	"repro/internal/queues"
)

// Arrival selects the open-loop inter-arrival process.
type Arrival uint8

const (
	// DefaultArrival defers to the figure's configured process
	// (RunOpts.Arrival only overrides when set to something else).
	DefaultArrival Arrival = iota
	// Poisson draws exponential inter-arrival times — the memoryless
	// arrival stream of an M/x/x system, and the default for figure l1
	// because bursty arrivals are what expose queueing delay.
	Poisson
	// FixedRate spaces arrivals exactly 1/rate apart: a deterministic
	// schedule with no burstiness, isolating the queue's own jitter.
	FixedRate
)

// String names the arrival process for figure headers and flags.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case FixedRate:
		return "fixed"
	}
	return "default"
}

// ParseArrival maps a -arrival flag value to its Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "fixed":
		return FixedRate, nil
	}
	return DefaultArrival, fmt.Errorf("harness: unknown arrival process %q (want poisson or fixed)", s)
}

// schedule generates one producer's intended arrival offsets. The
// sequence depends only on (arrival, rate, seed) — never on the wall
// clock — which is the whole coordinated-omission discipline in one
// place: falling behind cannot re-anchor the schedule, so the delay a
// backlogged producer accumulates is charged to every subsequent
// operation until it genuinely catches up.
type schedule struct {
	arrival Arrival
	mean    float64 // mean inter-arrival in nanoseconds
	next    time.Duration
	rng     uint64
}

func newSchedule(arrival Arrival, rate float64, seed uint64) *schedule {
	return &schedule{arrival: arrival, mean: 1e9 / rate, rng: seed*2654435761 + 1}
}

// advance steps the schedule and returns the next intended arrival
// offset (relative to the run's start instant).
func (s *schedule) advance() time.Duration {
	d := s.mean
	if s.arrival == Poisson {
		// Inverse-CDF exponential draw: -ln(1-U) * mean, with U uniform
		// in [0,1) from the top 53 bits of the xorshift state.
		s.rng = xorshift(s.rng)
		u := float64(s.rng>>11) / (1 << 53)
		d = -math.Log(1-u) * s.mean
	}
	s.next += time.Duration(d)
	return s.next
}

// waitUntil pauses until the wall clock reaches start+intended: coarse
// sleeps while far ahead of schedule, yields inside the final
// millisecond so the wake lands close to the intended instant without
// monopolizing a CPU the consumers need. When the caller is already
// past the intended time it returns immediately — it never re-anchors.
func waitUntil(start time.Time, intended time.Duration) {
	for {
		ahead := intended - time.Since(start)
		if ahead <= 0 {
			return
		}
		if ahead > time.Millisecond {
			time.Sleep(ahead - 500*time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// OpenLoopSplit derives the producer/consumer split for the open-loop
// engine from a total goroutine count: half produce, half consume
// (minimum one of each), mirroring the pairwise closed-loop workload
// the capacity calibration runs.
func OpenLoopSplit(threads int) (producers, consumers int) {
	producers = threads / 2
	if producers < 1 {
		producers = 1
	}
	consumers = threads - producers
	if consumers < 1 {
		consumers = 1
	}
	return producers, consumers
}

// OpenLoopOpts sizes one open-loop measurement.
type OpenLoopOpts struct {
	// Producers and Consumers set the goroutine split (each must be at
	// least 1; OpenLoopSplit derives them from a thread count).
	Producers int
	Consumers int
	// Ops is the total number of transfers across all producers.
	Ops int
	// Rate is the offered load in transfers per second across all
	// producers; each producer runs an independent schedule at
	// Rate/Producers.
	Rate float64
	// Arrival picks the inter-arrival process; DefaultArrival means
	// Poisson.
	Arrival Arrival
}

// OpenLoopResult is one open-loop measurement: the offered and
// achieved rates plus the end-to-end latency distribution.
type OpenLoopResult struct {
	// OfferedMops is the scheduled arrival rate in millions of
	// transfers per second.
	OfferedMops float64
	// AchievedMops is the completed rate in millions of transfers per
	// second, measured from the start instant to the last dequeue.
	// Below saturation it tracks OfferedMops; past the knee it pins at
	// the queue's capacity while latency grows without bound.
	AchievedMops float64
	// Latency is the merged per-consumer latency histogram in
	// nanoseconds, recorded under the intended-time rule.
	Latency metrics.HistogramSnapshot
	// FootprintMB is the queue's Footprint() after the run.
	FootprintMB float64
}

// RunOpenLoop builds a fresh queue and drives one open-loop run.
// Producers march their intended-time schedules, stamping each payload
// with its intended offset; consumers charge every transfer
// now-minus-intended into a per-consumer histogram. Queues whose
// handles implement queueapi.Waitable run through the parking
// Send/Recv surface (closed to end the drain); the rest run the
// nonblocking Enqueue/Dequeue with a yield loop.
func RunOpenLoop(name string, cfg queues.Config, opts OpenLoopOpts) (OpenLoopResult, error) {
	var zero OpenLoopResult
	if opts.Producers < 1 || opts.Consumers < 1 {
		return zero, fmt.Errorf("harness: open loop needs at least one producer and one consumer (got %d/%d)",
			opts.Producers, opts.Consumers)
	}
	if opts.Rate <= 0 {
		return zero, fmt.Errorf("harness: open loop needs a positive offered rate (got %f)", opts.Rate)
	}
	if cfg.MaxThreads < opts.Producers+opts.Consumers+2 {
		cfg.MaxThreads = opts.Producers + opts.Consumers + 2
	}
	q, err := queues.New(name, cfg)
	if err != nil {
		return zero, err
	}
	probe, err := q.Handle()
	if err != nil {
		return zero, err
	}
	_, blocking := probe.(queueapi.Waitable)

	perProducer := opts.Ops / opts.Producers
	if perProducer == 0 {
		perProducer = 1
	}
	total := perProducer * opts.Producers
	perRate := opts.Rate / float64(opts.Producers)
	arrival := opts.Arrival
	if arrival == DefaultArrival {
		arrival = Poisson
	}

	var prod, cons sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	errs := make(chan error, opts.Producers+opts.Consumers)
	var consumed atomic.Uint64
	var prodDone atomic.Bool
	hists := make([]*metrics.Histogram, opts.Consumers)
	var start time.Time // written before the barrier drops, read after

	for p := 0; p < opts.Producers; p++ {
		h, herr := q.Handle()
		if herr != nil {
			return zero, herr
		}
		sc := newSchedule(arrival, perRate, uint64(p)+1)
		prod.Add(1)
		go func(h queueapi.Handle, sc *schedule, seed uint64) {
			defer prod.Done()
			barrier.Wait()
			w, _ := h.(queueapi.Waitable)
			// Full-queue retries escalate through the shared backoff
			// primitive (spin, then jittered yields, then jittered
			// sleeps) instead of a raw Gosched spin, so a saturated run
			// does not have every backlogged producer hammering the
			// scheduler in lockstep.
			bo := backoff.New(nil, seed)
			for i := 0; i < perProducer; i++ {
				intended := sc.advance()
				waitUntil(start, intended)
				if blocking {
					if serr := w.Send(uint64(intended)); serr != nil {
						errs <- serr
						return
					}
					continue
				}
				for !h.Enqueue(uint64(intended)) {
					bo.Wait()
				}
				bo.Reset()
			}
		}(h, sc, uint64(p)+1)
	}
	for c := 0; c < opts.Consumers; c++ {
		h, herr := q.Handle()
		if herr != nil {
			return zero, herr
		}
		hist := metrics.NewHistogram()
		hists[c] = hist
		cons.Add(1)
		go func(h queueapi.Handle, hist *metrics.Histogram, seed uint64) {
			defer cons.Done()
			barrier.Wait()
			if blocking {
				w := h.(queueapi.Waitable)
				for {
					v, rerr := w.Recv()
					if rerr != nil {
						if !errors.Is(rerr, queueapi.ErrClosed) {
							errs <- rerr
						}
						return
					}
					hist.RecordElapsed(time.Since(start) - time.Duration(v))
				}
			}
			// Idle waits escalate through the backoff primitive rather
			// than a raw Gosched spin: an empty-queue consumer yields a
			// few times, then sleeps with jitter, so idle consumers do
			// not synchronize into a polling herd.
			bo := backoff.New(nil, seed)
			for {
				if v, ok := h.Dequeue(); ok {
					hist.RecordElapsed(time.Since(start) - time.Duration(v))
					consumed.Add(1)
					bo.Reset()
					continue
				}
				if prodDone.Load() && consumed.Load() >= uint64(total) {
					return
				}
				bo.Wait()
			}
		}(h, hist, uint64(c)+101)
	}

	start = time.Now()
	barrier.Done()
	prod.Wait()
	prodDone.Store(true)
	if blocking {
		if cerr := q.(queueapi.Closer).Close(); cerr != nil {
			return zero, cerr
		}
	}
	cons.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case werr := <-errs:
		return zero, werr
	default:
	}

	var merged metrics.HistogramSnapshot
	for _, h := range hists {
		merged.Merge(h.Snapshot())
	}
	return OpenLoopResult{
		OfferedMops:  opts.Rate / 1e6,
		AchievedMops: float64(total) / elapsed / 1e6,
		Latency:      merged,
		FootprintMB:  footprintMB(q),
	}, nil
}

// CalibrateCapacity measures a queue's closed-loop pairwise transfer
// capacity (transfers per second) at the given thread count — the
// denominator the l1 load fractions are expressed against, so the same
// fractions land on comparable points of every queue's latency curve
// regardless of host speed. Queues with a blocking surface calibrate
// through it (the same path the open-loop run uses); both conventions
// count a transfer as two Mops, hence the /2.
func CalibrateCapacity(name string, cfg queues.Config, threads, ops int, blocking bool) (float64, error) {
	pt := RunPoint(name, cfg, Pairwise, PointOpts{
		Threads: threads, Ops: ops, Reps: 1, Blocking: blocking,
	})
	if pt.Err != nil {
		return 0, pt.Err
	}
	capacity := pt.Mops.Mean * 1e6 / 2
	if capacity <= 0 {
		return 0, fmt.Errorf("harness: %s calibrated to zero capacity", name)
	}
	return capacity, nil
}

// queueIsBlocking reports whether name's handles expose the parking
// Send/Recv surface, deciding which engine path an open-loop point
// takes. It probes a throwaway two-slot instance so the real run's
// thread budget is untouched.
func queueIsBlocking(name string, cfg queues.Config) bool {
	cfg.MaxThreads = 2
	q, err := queues.New(name, cfg)
	if err != nil {
		return false
	}
	h, err := q.Handle()
	if err != nil {
		return false
	}
	_, ok := h.(queueapi.Waitable)
	return ok
}
