package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/queues"
)

func TestOpenLoopSplit(t *testing.T) {
	for _, c := range []struct{ threads, p, c int }{
		{1, 1, 1}, {2, 1, 1}, {4, 2, 2}, {7, 3, 4},
	} {
		p, cons := OpenLoopSplit(c.threads)
		if p != c.p || cons != c.c {
			t.Fatalf("OpenLoopSplit(%d) = (%d, %d), want (%d, %d)", c.threads, p, cons, c.p, c.c)
		}
	}
}

func TestParseArrival(t *testing.T) {
	for s, want := range map[string]Arrival{"poisson": Poisson, "fixed": FixedRate} {
		got, err := ParseArrival(s)
		if err != nil || got != want {
			t.Fatalf("ParseArrival(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestScheduleFixedRateIsExact(t *testing.T) {
	// 1M arrivals/sec: the k-th intended offset is exactly k µs.
	sc := newSchedule(FixedRate, 1e6, 1)
	for k := 1; k <= 100; k++ {
		got := sc.advance()
		if got != time.Duration(k)*time.Microsecond {
			t.Fatalf("arrival %d at %v, want %dµs", k, got, k)
		}
	}
}

func TestSchedulePoissonMeanAndMonotone(t *testing.T) {
	const rate = 1e6
	sc := newSchedule(Poisson, rate, 3)
	const n = 200_000
	prev := time.Duration(0)
	for i := 0; i < n; i++ {
		next := sc.advance()
		if next < prev {
			t.Fatalf("arrival %d at %v before predecessor %v", i, next, prev)
		}
		prev = next
	}
	// Mean inter-arrival over n exponential draws concentrates around
	// 1/rate: the sample mean's relative error is ~1/sqrt(n) ≈ 0.2%,
	// so a 5% band is deterministic in practice for a fixed seed.
	mean := float64(prev) / n
	if rel := math.Abs(mean-1e3) / 1e3; rel > 0.05 {
		t.Fatalf("mean inter-arrival %f ns, want 1000 ±5%%", mean)
	}
}

func TestScheduleIgnoresWallClock(t *testing.T) {
	// The coordinated-omission guard: the intended sequence is a pure
	// function of (arrival, rate, seed). Wall-clock delays between
	// draws — a stalled producer — must not shift a single arrival.
	a := newSchedule(Poisson, 1e6, 7)
	b := newSchedule(Poisson, 1e6, 7)
	for i := 0; i < 50; i++ {
		va := a.advance()
		if i == 10 {
			time.Sleep(5 * time.Millisecond) // the "stall"
		}
		if vb := b.advance(); va != vb {
			t.Fatalf("arrival %d: stalled schedule %v, undisturbed %v", i, va, vb)
		}
	}
}

func TestRunOpenLoopBothEnginePaths(t *testing.T) {
	// Chan exercises the parking Send/Recv path, wCQ the nonblocking
	// yield path; both must record every transfer exactly once.
	for _, name := range []string{"Chan", "wCQ"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := queues.Config{Capacity: 1 << 12}
			r, err := RunOpenLoop(name, cfg, OpenLoopOpts{
				Producers: 2, Consumers: 2, Ops: 2000, Rate: 2e6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Latency.Count != 2000 {
				t.Fatalf("recorded %d latencies, want one per transfer (2000)", r.Latency.Count)
			}
			if r.AchievedMops <= 0 || r.OfferedMops != 2.0 {
				t.Fatalf("rates implausible: achieved %f, offered %f", r.AchievedMops, r.OfferedMops)
			}
			if r.Latency.Quantile(0.999) > r.Latency.Max {
				t.Fatalf("p99.9 %d above max %d", r.Latency.Quantile(0.999), r.Latency.Max)
			}
		})
	}
}

func TestRunOpenLoopRejectsBadOpts(t *testing.T) {
	cfg := queues.Config{Capacity: 64}
	if _, err := RunOpenLoop("Chan", cfg, OpenLoopOpts{Producers: 0, Consumers: 1, Ops: 10, Rate: 1e6}); err == nil {
		t.Fatal("zero producers accepted")
	}
	if _, err := RunOpenLoop("Chan", cfg, OpenLoopOpts{Producers: 1, Consumers: 1, Ops: 10}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestRunOpenLoopChargesBacklogDelay(t *testing.T) {
	// The coordinated-omission acceptance test: offer load far past
	// capacity through a tiny ring, so producers stall on a full queue
	// while the schedule marches on. Under the intended-time rule the
	// i-th transfer's latency is roughly its drain position, so the
	// MEAN latency must be a large fraction of the whole run's
	// duration. An engine that (wrongly) stamped actual send time
	// would report only the constant ring-depth delay — a tiny
	// fraction of the run — and fail this bound.
	const ops = 4000
	r, err := RunOpenLoop("Chan", queues.Config{Capacity: 64}, OpenLoopOpts{
		Producers: 1, Consumers: 1, Ops: ops, Rate: 1e9, Arrival: FixedRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsedNS := float64(ops) / (r.AchievedMops * 1e6) * 1e9
	if mean := r.Latency.Mean(); mean < 0.2*elapsedNS {
		t.Fatalf("mean latency %.0f ns under overload, want ≥20%% of the %.0f ns run (backlog not charged)",
			mean, elapsedNS)
	}
}

func TestLoadFigure(t *testing.T) {
	f, err := FigureByID("l1")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Loads) < 4 {
		t.Fatalf("figure l1 sweeps %d loads, want at least 4", len(f.Loads))
	}
	if f.Arrival != Poisson {
		t.Fatal("figure l1 must default to Poisson arrivals")
	}
	if len(f.Queues) < 5 {
		t.Fatalf("figure l1 has %d queues, want at least 5", len(f.Queues))
	}
	sawKnee := false
	for _, load := range f.Loads {
		if load > 1 {
			sawKnee = true
		}
	}
	if !sawKnee {
		t.Fatal("figure l1 never crosses the saturation knee (no load > 1.0)")
	}
	for _, name := range []string{"Chan", "wCQ", "SCQ"} {
		found := false
		for _, q := range f.Queues {
			if q == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("figure l1 missing %s", name)
		}
	}
}

func TestLoadFigureRunAndRender(t *testing.T) {
	f, err := FigureByID("l1")
	if err != nil {
		t.Fatal(err)
	}
	f.Loads = []float64{0.5} // scale the sweep down for CI
	opts := RunOpts{Ops: 3000, Reps: 1, Queues: []string{"Chan", "wCQ"}}
	pts := f.Run(opts)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("%s: %v", pt.Queue, pt.Err)
		}
		if pt.Load != 0.5 || pt.OfferedMops <= 0 {
			t.Fatalf("load point underfilled: %+v", pt)
		}
		if pt.Latency.Count == 0 || pt.Mops.Mean <= 0 {
			t.Fatalf("%s: no latency recorded", pt.Queue)
		}
	}
	var sb strings.Builder
	f.Render(&sb, pts, opts)
	out := sb.String()
	if !strings.Contains(out, "Figure l1") || !strings.Contains(out, "p99") ||
		!strings.Contains(out, "poisson") || !strings.Contains(out, "0.50") {
		t.Fatalf("load render malformed:\n%s", out)
	}
}

func TestCalibrateCapacityPositive(t *testing.T) {
	c, err := CalibrateCapacity("wCQ", queues.Config{Capacity: 1 << 10}, 2, 4000, false)
	if err != nil || c <= 0 {
		t.Fatalf("capacity %f, err %v", c, err)
	}
	cb, err := CalibrateCapacity("Chan", queues.Config{Capacity: 1 << 10}, 2, 4000, true)
	if err != nil || cb <= 0 {
		t.Fatalf("blocking capacity %f, err %v", cb, err)
	}
}

func TestQueueIsBlocking(t *testing.T) {
	cfg := queues.Config{Capacity: 64}
	if !queueIsBlocking("Chan", cfg) {
		t.Fatal("Chan facade not detected as blocking")
	}
	if queueIsBlocking("wCQ", cfg) {
		t.Fatal("bare wCQ detected as blocking")
	}
}
