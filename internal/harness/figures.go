package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/atomicx"
	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/ringcore"
	"repro/internal/stats"
)

// Figure describes one plot of the paper's evaluation (§6) and how to
// regenerate it.
type Figure struct {
	ID       string // e.g. "11b"
	Title    string
	Workload Workload
	Threads  []int
	Mode     atomicx.Mode
	Queues   []string
	Delays   bool // tiny random delays (memory test)
	Memory   bool // report MB instead of Mops
	Blocking bool // drive the blocking Send/Recv/Close surface (Chan facades)
	// Bursts makes this a burst/drain figure (u1): the sweep axis is
	// burst size at a fixed thread count (Threads[0]), and every point
	// reports throughput AND peak live Footprint.
	Bursts []int
	// Batches makes this a batch-sweep figure (p2): the sweep axis is
	// batch size at a fixed thread count (Threads[0]). Batch size 1 is
	// the scalar loop; larger sizes drive the native batch reservation
	// path. Mops stays per-element, so the column reads directly as
	// the amortization win.
	Batches []int
	// Loads makes this an open-loop latency figure (l1): the sweep axis
	// is offered load as a fraction of each queue's calibrated
	// closed-loop capacity, at a fixed thread count (Threads[0]).
	// Points carry the CO-safe latency ladder; the knee sits at 1.0 by
	// construction, so the same fractions are comparable across queues
	// and hosts of any speed.
	Loads []float64
	// Arrival is the inter-arrival process for open-loop figures.
	Arrival Arrival
	// Waiters makes this a wait-strategy figure (w1): the sweep axis is
	// the total blocking-goroutine count (1:3 send/recv split), crossed
	// with one line per strategy in Waits. Points carry the blocking
	// wait ladder and the spin-hit rate.
	Waiters []int
	// Waits lists the wait-strategy names a Waiters figure sweeps
	// ("park", "adaptive", "spin" — backoff.ByName vocabulary).
	Waits []string
	// Splits makes this a handoff figure (h1): the sweep axis is the
	// explicit {producers, consumers} blocking role split, crossed with
	// one line per handoff setting in Handoffs. Points carry the
	// blocking wait ladder and the handoff hit rate.
	Splits [][2]int
	// Handoffs lists the handoff settings a Splits figure sweeps ("on",
	// "off" — ringcore.HandoffByName vocabulary).
	Handoffs []string
}

// Thread sweeps from the paper: x86 peaks at one 18-core socket then
// oversubscribes; PowerPC uses 64 logical cores.
var (
	x86Threads = []int{1, 2, 4, 8, 18, 36, 72, 144}
	ppcThreads = []int{1, 2, 4, 8, 16, 32, 64}
)

// x86Queues is the Fig. 10/11 line-up; ppcQueues drops LCRQ (needs
// CAS2), exactly as the paper does for PowerPC. scaleQueues is the
// post-paper scale-out line-up: the single-ring queues against their
// sharded composition, with FAA as the throughput ceiling.
// blockingQueues is the figure b1 line-up: the Chan facade over each
// supported backend. blockingThreads starts at 2 so every point has
// at least one producer and one consumer.
// burstSizes and burstRingCap shape figure u1: bursts from 4x to
// 256x the ring capacity, so every point exercises real outer-list
// turnover and the memory axis spans two orders of magnitude.
var (
	x86Queues       = []string{"FAA", "wCQ", "YMC", "CCQueue", "SCQ", "CRTurn", "MSQueue", "LCRQ"}
	ppcQueues       = []string{"FAA", "wCQ", "YMC", "CCQueue", "SCQ", "CRTurn", "MSQueue"}
	scaleQueues     = []string{"FAA", "wCQ", "SCQ", "Sharded"}
	blockingQueues  = queues.BlockingQueues() // keep the b1 line-up in lockstep with the registry
	blockingThreads = []int{2, 4, 8, 18, 36, 72}
	unboundedQueues = queues.UnboundedQueues() // keep the u1 line-up in lockstep with the registry
	burstSizes      = []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	burstRingCap    = uint64(1 << 10)
	// batchQueues and batchSizes shape figure p2: every core with a
	// native single-F&A batch reservation, swept from the scalar loop
	// (batch 1) to far past the amortization knee.
	batchQueues = []string{"wCQ", "SCQ", "Sharded", "UWCQ"}
	batchSizes  = []int{1, 8, 32, 128}
	// openLoopQueues and loadFractions shape figure l1: every blocking
	// facade (their parked consumers are what open-loop latency is
	// about) plus the bare wCQ and SCQ rings on the nonblocking engine
	// path, swept from a quarter of calibrated capacity to just past
	// the saturation knee at 1.0.
	openLoopQueues = append(queues.BlockingQueues(), "wCQ", "SCQ")
	loadFractions  = []float64{0.25, 0.5, 0.75, 0.9, 1.1}
)

// Figures returns every figure of the evaluation in paper order.
func Figures() []Figure {
	return []Figure{
		{ID: "10a", Title: "Memory usage, x86 (MB)", Workload: Mixed, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: x86Queues, Delays: true, Memory: true},
		{ID: "10b", Title: "Memory test throughput, x86 (Mops/s)", Workload: Mixed, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: x86Queues, Delays: true},
		{ID: "11a", Title: "Empty dequeue, x86 (Mops/s)", Workload: EmptyDeq, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: x86Queues},
		{ID: "11b", Title: "Pairwise enqueue-dequeue, x86 (Mops/s)", Workload: Pairwise, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: x86Queues},
		{ID: "11c", Title: "50%/50% enqueue-dequeue, x86 (Mops/s)", Workload: Mixed, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: x86Queues},
		{ID: "12a", Title: "Empty dequeue, emulated PowerPC (Mops/s)", Workload: EmptyDeq, Threads: ppcThreads,
			Mode: atomicx.EmulatedFAA, Queues: ppcQueues},
		{ID: "12b", Title: "Pairwise enqueue-dequeue, emulated PowerPC (Mops/s)", Workload: Pairwise, Threads: ppcThreads,
			Mode: atomicx.EmulatedFAA, Queues: ppcQueues},
		{ID: "12c", Title: "50%/50% enqueue-dequeue, emulated PowerPC (Mops/s)", Workload: Mixed, Threads: ppcThreads,
			Mode: atomicx.EmulatedFAA, Queues: ppcQueues},
		// Beyond the paper: the sharded composition against the
		// single-ring queues it is built from (use -shards / -batch to
		// sweep the new dimensions).
		{ID: "s1", Title: "Sharded scale-out, pairwise (Mops/s)", Workload: Pairwise, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: scaleQueues},
		{ID: "s2", Title: "Sharded scale-out, 50%/50% (Mops/s)", Workload: Mixed, Threads: x86Threads,
			Mode: atomicx.NativeFAA, Queues: scaleQueues},
		// Blocking facade: throughput under a 1:3 producer:consumer
		// imbalance where idle consumers park instead of spinning
		// (cmd/wcqbench -blocking also reports wakeup latency).
		{ID: "b1", Title: "Blocking Chan, imbalanced 1:3 send/recv (Mops/s)", Workload: Pairwise, Threads: blockingThreads,
			Mode: atomicx.NativeFAA, Queues: blockingQueues, Blocking: true},
		// Unbounded burst absorption: enqueue a burst, sample the peak
		// live Footprint, drain. Sweeps burst size (not threads) and
		// reports both throughput and peak memory per point.
		{ID: "u1", Title: "Unbounded burst/drain: throughput and peak footprint vs burst size", Workload: Pairwise,
			Threads: []int{4}, Mode: atomicx.NativeFAA, Queues: unboundedQueues, Bursts: burstSizes},
		// Native batch reservation: per-element throughput vs batch
		// size. Batch 1 is the scalar path; the larger sizes pay one
		// Head/Tail F&A per batch instead of one per element.
		{ID: "p2", Title: "Native batch reservation: per-element throughput vs batch size (Mops/s)", Workload: Pairwise,
			Threads: []int{4}, Mode: atomicx.NativeFAA, Queues: batchQueues, Batches: batchSizes},
		// Open-loop latency vs offered load: Poisson arrivals at a
		// fraction of each queue's calibrated capacity, latency charged
		// from intended send time (coordinated-omission-safe). The p99
		// inflection as load crosses 1.0 is the saturation knee.
		{ID: "l1", Title: "Open-loop latency vs offered load (µs, CO-safe)", Workload: Pairwise,
			Threads: []int{4}, Mode: atomicx.NativeFAA, Queues: openLoopQueues,
			Loads: loadFractions, Arrival: Poisson},
		// Wait strategies under waiter pressure: immediate park vs
		// adaptive spin-then-park, from a handful of goroutines to deep
		// oversubscription, with the blocking-wait ladder and spin-hit
		// rate per point.
		{ID: "w1", Title: "Wait strategies vs waiter count: throughput, wait ladder, spin-hit rate", Workload: Pairwise,
			Threads: []int{8}, Mode: atomicx.NativeFAA, Queues: waitQueues, Blocking: true,
			Waiters: waiterCounts, Waits: waitStrategies},
		// Direct handoff A/B: the same blocking workload swept over the
		// producer:consumer imbalance, with the rendezvous fast path on
		// vs off. Points carry the wait ladder (wakeup latency) and the
		// handoff hit rate.
		{ID: "h1", Title: "Direct handoff on/off vs producer:consumer imbalance: throughput, wait ladder, hit rate", Workload: Pairwise,
			Threads: []int{8}, Mode: atomicx.NativeFAA, Queues: handoffQueues, Blocking: true,
			Splits: handoffSplits, Handoffs: handoffSettings},
	}
}

// FigureByID looks a figure up ("10a" ... "12c").
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: unknown figure %q", id)
}

// RunOpts scales a figure run. The paper uses 10M ops x 10 reps per
// point; the defaults here are sized for a small machine and can be
// raised via flags.
type RunOpts struct {
	Ops        int
	Reps       int
	MaxThreads int // truncate the sweep (0 = full paper sweep)
	Queues     []string
	Shards     int           // shard count for the sharded compositions (0 = default)
	Ring       ringcore.Kind // ring kind inside the sharded compositions
	Batch      int           // batch size; > 1 drives the batched workload loop
	Capacity   uint64        // ring capacity (0 = the paper's 2^16)
	Emulate    bool          // force CAS-emulated F&A regardless of the figure's mode
	Core       *ringcore.Options
	// Metrics gives each point's queue a live metrics sink, so runs
	// measure the instrumented configuration (the overhead acceptance
	// check compares a figure with and without this set). Each point
	// gets a fresh sink; the ring-based queues record into it, the
	// external baselines ignore it.
	Metrics bool
	// Loads overrides an open-loop figure's load-fraction sweep
	// (cmd/wcqbench -loads).
	Loads []float64
	// Arrival overrides an open-loop figure's inter-arrival process
	// when not DefaultArrival (cmd/wcqbench -arrival).
	Arrival Arrival
	// Waiters overrides a wait-strategy figure's goroutine-count sweep
	// (cmd/wcqbench -waiters) — how CI runs a miniature w1.
	Waiters []int
	// Handoff forces the Chan facades' direct-handoff setting for
	// every figure (cmd/wcqbench -handoff). The handoff figure h1
	// ignores it — the on/off cross IS that figure's sweep.
	Handoff ringcore.HandoffMode
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Ops <= 0 {
		o.Ops = 200_000
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	return o
}

// Run executes the figure and returns all points (in queue-major
// order). Unavailable queues (LCRQ under emulation) produce points
// with Err set, rendered as "n/a" like the missing LCRQ lines in the
// paper's PowerPC plots.
func (f Figure) Run(opts RunOpts) []Point {
	opts = opts.withDefaults()
	qs := f.Queues
	if len(opts.Queues) > 0 {
		qs = intersect(f.Queues, opts.Queues)
	}
	if len(f.Bursts) > 0 {
		return f.runBursts(opts, qs)
	}
	if len(f.Batches) > 0 {
		return f.runBatches(opts, qs)
	}
	if len(f.Loads) > 0 {
		return f.runLoads(opts, qs)
	}
	if len(f.Waiters) > 0 {
		return f.runWaiters(opts, qs)
	}
	if len(f.Splits) > 0 {
		return f.runHandoff(opts, qs)
	}
	var pts []Point
	for _, name := range qs {
		for _, th := range f.Threads {
			if opts.MaxThreads > 0 && th > opts.MaxThreads {
				continue
			}
			cfg := queues.Config{
				Capacity:   1 << 16, // the paper's ring size for wCQ/SCQ
				MaxThreads: th + 1,
				Mode:       f.Mode,
				Shards:     opts.Shards,
				Ring:       opts.Ring,
				Core:       opts.Core,
				Handoff:    opts.Handoff,
			}
			if opts.Capacity > 0 {
				cfg.Capacity = opts.Capacity
			}
			if opts.Emulate {
				cfg.Mode = atomicx.EmulatedFAA
			}
			if opts.Metrics {
				cfg.Metrics = metrics.New()
			}
			pts = append(pts, RunPoint(name, cfg, f.Workload, PointOpts{
				Threads:  th,
				Ops:      opts.Ops,
				Reps:     opts.Reps,
				Delays:   f.Delays,
				Memory:   f.Memory,
				Batch:    opts.Batch,
				Blocking: f.Blocking,
			}))
		}
	}
	return pts
}

// fixedThreads is the fixed thread count a burst or batch figure runs
// at: Threads[0], clamped by -maxthreads. Run and Render share it so
// the header never mislabels a truncated run.
func (f Figure) fixedThreads(opts RunOpts) int {
	threads := f.Threads[0]
	if opts.MaxThreads > 0 && threads > opts.MaxThreads {
		threads = opts.MaxThreads
	}
	return threads
}

// runBursts executes a burst figure: the sweep axis is burst size at
// a fixed thread count, and each point reports throughput plus the
// peak live Footprint sampled at the top of the burst.
func (f Figure) runBursts(opts RunOpts, qs []string) []Point {
	threads := f.fixedThreads(opts)
	var pts []Point
	for _, name := range qs {
		for _, burst := range f.Bursts {
			cfg := queues.Config{
				Capacity:   burstRingCap, // per-ring for the unbounded line-up
				MaxThreads: threads + 1,
				Mode:       f.Mode,
				Shards:     opts.Shards,
				Ring:       opts.Ring,
				Core:       opts.Core,
			}
			if opts.Capacity > 0 {
				cfg.Capacity = opts.Capacity
			}
			if opts.Emulate {
				cfg.Mode = atomicx.EmulatedFAA
			}
			if opts.Metrics {
				cfg.Metrics = metrics.New()
			}
			pt := Point{Queue: name, Threads: threads, Burst: burst}
			reps := opts.Reps
			mops := make([]float64, 0, reps)
			for rep := 0; rep < reps; rep++ {
				m, mem, fp, err := runBurstOnce(name, cfg, burst, PointOpts{Threads: threads})
				if err != nil {
					pt.Err = err
					break
				}
				mops = append(mops, m)
				if mem > pt.MemoryMB {
					pt.MemoryMB = mem
				}
				if fp > pt.FootprintMB {
					pt.FootprintMB = fp
				}
			}
			if pt.Err == nil {
				pt.Mops = stats.Summarize(mops)
			}
			pts = append(pts, pt)
		}
	}
	return pts
}

// runBatches executes a batch-sweep figure: the sweep axis is batch
// size at a fixed thread count. Batch 1 drives the scalar loop (the
// baseline); larger sizes drive the native batch reservation through
// queueapi's Batcher fast path. Mops counts transferred elements, so
// points are directly comparable across batch sizes.
func (f Figure) runBatches(opts RunOpts, qs []string) []Point {
	threads := f.fixedThreads(opts)
	var pts []Point
	for _, name := range qs {
		for _, batch := range f.Batches {
			cfg := queues.Config{
				Capacity:   1 << 16,
				MaxThreads: threads + 1,
				Mode:       f.Mode,
				Shards:     opts.Shards,
				Ring:       opts.Ring,
				Core:       opts.Core,
			}
			if opts.Capacity > 0 {
				cfg.Capacity = opts.Capacity
			}
			if opts.Emulate {
				cfg.Mode = atomicx.EmulatedFAA
			}
			if opts.Metrics {
				cfg.Metrics = metrics.New()
			}
			pt := RunPoint(name, cfg, f.Workload, PointOpts{
				Threads: threads,
				Ops:     opts.Ops,
				Reps:    opts.Reps,
				Batch:   batch,
			})
			pt.Batch = batch
			pts = append(pts, pt)
		}
	}
	return pts
}

// loadSweep resolves an open-loop figure's effective sweep after
// RunOpts overrides. Run and Render share it so the rendered rows
// always match the points actually measured.
func (f Figure) loadSweep(opts RunOpts) ([]float64, Arrival) {
	loads := f.Loads
	if len(opts.Loads) > 0 {
		loads = opts.Loads
	}
	arrival := f.Arrival
	if opts.Arrival != DefaultArrival {
		arrival = opts.Arrival
	}
	if arrival == DefaultArrival {
		arrival = Poisson
	}
	return loads, arrival
}

// runLoads executes an open-loop figure: calibrate each queue's
// closed-loop capacity once, then sweep offered load as a fraction of
// it. Reps merge into one latency histogram per point (tails want
// samples, not averaging) while achieved throughput is summarized
// across reps like every other figure.
func (f Figure) runLoads(opts RunOpts, qs []string) []Point {
	threads := f.fixedThreads(opts)
	producers, consumers := OpenLoopSplit(threads)
	loads, arrival := f.loadSweep(opts)
	var pts []Point
	for _, name := range qs {
		cfg := queues.Config{
			Capacity:   1 << 16,
			MaxThreads: threads + 2,
			Mode:       f.Mode,
			Shards:     opts.Shards,
			Ring:       opts.Ring,
			Core:       opts.Core,
			Handoff:    opts.Handoff,
		}
		if opts.Capacity > 0 {
			cfg.Capacity = opts.Capacity
		}
		if opts.Emulate {
			cfg.Mode = atomicx.EmulatedFAA
		}
		if opts.Metrics {
			cfg.Metrics = metrics.New()
		}
		blocking := queueIsBlocking(name, cfg)
		capacity, err := CalibrateCapacity(name, cfg, threads, opts.Ops, blocking)
		for _, load := range loads {
			pt := Point{Queue: name, Threads: threads, Load: load}
			if err != nil {
				pt.Err = err
				pts = append(pts, pt)
				continue
			}
			achieved := make([]float64, 0, opts.Reps)
			for rep := 0; rep < opts.Reps; rep++ {
				r, rerr := RunOpenLoop(name, cfg, OpenLoopOpts{
					Producers: producers,
					Consumers: consumers,
					Ops:       opts.Ops,
					Rate:      load * capacity,
					Arrival:   arrival,
				})
				if rerr != nil {
					pt.Err = rerr
					break
				}
				pt.OfferedMops = r.OfferedMops
				pt.Latency.Merge(r.Latency)
				achieved = append(achieved, r.AchievedMops)
				if r.FootprintMB > pt.FootprintMB {
					pt.FootprintMB = r.FootprintMB
				}
			}
			if pt.Err == nil {
				pt.Mops = stats.Summarize(achieved)
			}
			pts = append(pts, pt)
		}
	}
	return pts
}

// FormatLoadPoints renders an open-loop figure: one row per load
// fraction, two columns per queue — the p99 latency in microseconds
// (the knee axis) and the achieved transfer rate that goes flat once
// the queue saturates.
func FormatLoadPoints(pts []Point, loads []float64, queueNames []string) string {
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%.3f", p.Queue, p.Load)] = p
	}
	out := "load"
	for _, q := range queueNames {
		out += fmt.Sprintf("\t%s p99(µs)\t%s Mxfer/s", q, q)
	}
	out += "\n"
	for _, load := range loads {
		out += fmt.Sprintf("%.2f", load)
		for _, q := range queueNames {
			p, ok := byKey[fmt.Sprintf("%s/%.3f", q, load)]
			if !ok || p.Err != nil || p.Latency.Count == 0 {
				out += "\tn/a\tn/a"
				continue
			}
			out += fmt.Sprintf("\t%.1f\t%.3f", float64(p.Latency.Quantile(0.99))/1e3, p.Mops.Mean)
		}
		out += "\n"
	}
	return out
}

// FormatBatchPoints renders a batch figure's results: one row per
// batch size, one throughput column per queue — the per-element
// amortization curve of the native reservation path.
func FormatBatchPoints(pts []Point, batches []int, queueNames []string) string {
	byKey := map[string]Point{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s/%d", p.Queue, p.Batch)] = p
	}
	out := "batch"
	for _, q := range queueNames {
		out += fmt.Sprintf("\t%s", q)
	}
	out += "\n"
	for _, b := range batches {
		out += fmt.Sprintf("%d", b)
		for _, q := range queueNames {
			p, ok := byKey[fmt.Sprintf("%s/%d", q, b)]
			if !ok || p.Err != nil {
				out += "\tn/a"
				continue
			}
			out += fmt.Sprintf("\t%.3f", p.Mops.Mean)
		}
		out += "\n"
	}
	return out
}

// Render writes the figure header and table to w.
func (f Figure) Render(w io.Writer, pts []Point, opts RunOpts) {
	opts = opts.withDefaults()
	threads := f.Threads
	if opts.MaxThreads > 0 {
		threads = nil
		for _, t := range f.Threads {
			if t <= opts.MaxThreads {
				threads = append(threads, t)
			}
		}
	}
	qs := f.Queues
	if len(opts.Queues) > 0 {
		qs = intersect(f.Queues, opts.Queues)
	}
	if len(f.Bursts) > 0 {
		fmt.Fprintf(w, "Figure %s: %s (%d threads, %s)\n", f.ID, f.Title, f.fixedThreads(opts), f.Mode)
		io.WriteString(w, FormatBurstPoints(pts, f.Bursts, qs))
		return
	}
	if len(f.Batches) > 0 {
		fmt.Fprintf(w, "Figure %s: %s (%d threads, %s workload, %s)\n", f.ID, f.Title, f.fixedThreads(opts), f.Workload, f.Mode)
		io.WriteString(w, FormatBatchPoints(pts, f.Batches, qs))
		return
	}
	if len(f.Loads) > 0 {
		loads, arrival := f.loadSweep(opts)
		producers, consumers := OpenLoopSplit(f.fixedThreads(opts))
		fmt.Fprintf(w, "Figure %s: %s (%d producers / %d consumers, %s arrivals, %s)\n",
			f.ID, f.Title, producers, consumers, arrival, f.Mode)
		io.WriteString(w, FormatLoadPoints(pts, loads, qs))
		return
	}
	if len(f.Waiters) > 0 {
		fmt.Fprintf(w, "Figure %s: %s (1:3 send/recv split, %s)\n", f.ID, f.Title, f.Mode)
		io.WriteString(w, FormatWaiterPoints(pts))
		return
	}
	if len(f.Splits) > 0 {
		fmt.Fprintf(w, "Figure %s: %s (%s)\n", f.ID, f.Title, f.Mode)
		io.WriteString(w, FormatHandoffPoints(pts))
		return
	}
	fmt.Fprintf(w, "Figure %s: %s (%s workload, %s)\n", f.ID, f.Title, f.Workload, f.Mode)
	io.WriteString(w, FormatPoints(pts, threads, qs, f.Memory))
}

func intersect(all, wanted []string) []string {
	set := map[string]bool{}
	for _, w := range wanted {
		set[w] = true
	}
	var out []string
	for _, a := range all {
		if set[a] {
			out = append(out, a)
		}
	}
	return out
}

// SortPoints orders points by (queue, threads) for stable output.
func SortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Queue != pts[j].Queue {
			return pts[i].Queue < pts[j].Queue
		}
		return pts[i].Threads < pts[j].Threads
	})
}
