//go:build soak

package harness

import (
	"testing"
	"time"

	"repro/internal/queues"
)

// The soak tier: full-length production-readiness scenarios, built
// only with -tags soak (CI's soak-smoke job runs them under -race).
// Durations are sized so the whole file is a ~30-second miniature of a
// production soak; raise them locally for a real one.

// soakQueues is the production line-up: the paper's ring, its sharded
// composition, an unbounded composition, and a blocking facade.
var soakQueues = []string{"wCQ", "Sharded", "UWCQ", "Chan"}

func TestSoakConcurrentStress(t *testing.T) {
	for _, name := range soakQueues {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := ConcurrentStress(name, queues.Config{Capacity: 1 << 10}, StressOpts{
				Threads: 8, Duration: 3 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d transfers in %v", name, res.Transfers, res.Elapsed)
		})
	}
}

func TestSoakMemoryStress(t *testing.T) {
	for _, name := range soakQueues {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := MemoryStress(name, queues.Config{Capacity: 256}, StressOpts{
				Threads: 4, Duration: 3 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			// The job's headline assertion: after the final drain the
			// footprint is back at the first-drain baseline (within the
			// documented 2x + 0.25MB band).
			if res.FootprintMB > res.BaselineMB*2+0.25 {
				t.Fatalf("footprint did not return to baseline after drain: final %.3f MB, baseline %.3f MB",
					res.FootprintMB, res.BaselineMB)
			}
			t.Logf("%s: %d cycles, baseline %.3f MB, final %.3f MB", name, res.Cycles, res.BaselineMB, res.FootprintMB)
		})
	}
}
