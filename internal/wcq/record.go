package wcq

import (
	"sync/atomic"

	"repro/internal/pad"
)

// phase2rec is the second-phase help request (Fig. 4, phase2rec_t).
// A thread publishes it — by packing its thread index into the global
// Head/Tail word — while it tentatively increments that global counter;
// any other thread can then complete the increment on its behalf.
//
// The seq1/seq2 pair frames the record: it is valid only when
// seq1 == seq2 (seq1 is bumped first when a new request is prepared,
// seq2 last).
type phase2rec struct {
	seq1  atomic.Uint64
	local atomic.Pointer[atomic.Uint64] // the request's localTail or localHead
	cnt   atomic.Uint64
	seq2  atomic.Uint64
}

// record is the per-thread state (Fig. 4, thrdrec_t). Private fields
// are touched only by the owning thread; shared fields communicate
// help requests. seq1 starts at 1 and seq2 at 0 so that a fresh record
// never looks like an active request (a request is active only while
// seq1 == seq2 and pending is set).
type record struct {
	// Private fields.
	tid       int
	nextCheck int
	nextTid   int

	// Shared fields.
	phase2    phase2rec
	seq1      atomic.Uint64
	enqueue   atomic.Bool
	pending   atomic.Bool
	localTail atomic.Uint64
	initTail  atomic.Uint64
	localHead atomic.Uint64
	initHead  atomic.Uint64
	index     atomic.Uint64
	seq2      atomic.Uint64

	_ pad.Line // keep adjacent records off each other's lines
}

func (r *record) init(tid, helpDelay int) {
	r.tid = tid
	r.nextCheck = helpDelay
	r.nextTid = (tid + 1) // first helping scan starts at our neighbour
	r.seq1.Store(1)
	r.seq2.Store(0)
}

// Handle is a registered thread's capability to operate on a Ring.
// Each concurrent goroutine must use its own Handle; a Handle must not
// be used from two goroutines at once (its record's private fields are
// unsynchronized, exactly like the paper's per-thread state).
type Handle struct {
	q *Ring
	r *record
}

// Ring returns the ring this handle operates on.
func (h *Handle) Ring() *Ring { return h.q }
