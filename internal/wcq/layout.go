// Package wcq implements wCQ — the wait-free circular queue of
// Nikolaev & Ravindran (SPAA '22) — the primary contribution this
// repository reproduces.
//
// wCQ extends the lock-free SCQ ring with a helping-based slow path so
// that EVERY thread completes every operation in a bounded number of
// steps, while allocating no memory after construction (the paper's
// thesis: bounded memory is a precondition of true wait-freedom).
//
// # Word layout (the no-DWCAS substitution)
//
// The paper updates ring entries with double-width CAS over the pair
// {Note, Value{Cycle, IsSafe, Enq, Index}}. Go has no 128-bit CAS, so —
// following the reduced-width scheme the paper itself proposes for
// LL/SC architectures (§4) — we pack the entire pair into one 64-bit
// word (o = log2(2n), w = (62-o)/2 bits per cycle field):
//
//	bits [0, o)            Index   (⊥ = 2n-2, ⊥c = 2n-1)
//	bit  o                 Enq     (two-step insertion marker)
//	bit  o+1               IsSafe
//	bits [o+2, o+2+w)      Value.Cycle  (truncated to w bits)
//	bits [o+2+w, o+2+2w)   Note         (a cycle; 0 = "no note")
//
// A single-word CAS atomically covers both halves, which is strictly
// stronger than the paper's CAS2. The price is cycle truncation: the
// queue supports ~2^(w+o) operations before a cycle field could wrap
// (>= 2^39 ≈ 5·10^11 operations for the paper's 2^16-entry ring, far
// beyond any benchmark in the paper). Capacity is capped so that w >= 16.
//
// The global Head and Tail are {counter, phase2-pointer} pairs in the
// paper; we pack them as a 48-bit counter plus a 16-bit thread index
// (0 = null), exactly the substitution §4 recommends.
//
// Thread-local head/tail values carry two flag bits above the 48-bit
// counter: INC (increment in phase 1) and FIN (request finished).
package wcq

import "fmt"

const (
	// cntBits is the width of the packed global Head/Tail counter.
	cntBits = 48
	// cntMask extracts the counter from a packed global word or a
	// thread-local head/tail value.
	cntMask = (uint64(1) << cntBits) - 1
	// flagINC marks a thread-local counter whose global increment is in
	// phase 1 (tentative).
	flagINC = uint64(1) << 62
	// flagFIN marks a finished help request; it stops all helpers.
	flagFIN = uint64(1) << 63
	// tidShift positions the thread-index (+1) in a global word.
	tidShift = cntBits
	// MaxThreads is the largest registrable thread census (the thread
	// index must fit in 16 bits, with 0 reserved for "null").
	MaxThreads = 1<<16 - 1
	// minCycleBits is the smallest tolerated cycle-field width.
	minCycleBits = 16
)

// packGlobal builds a global Head/Tail word from a counter and a
// phase2 thread index (tidp = tid+1; 0 means "no request").
//
//wfq:noalloc
func packGlobal(cnt, tidp uint64) uint64 { return tidp<<tidShift | cnt&cntMask }

// globalCnt extracts the counter component.
//
//wfq:noalloc
func globalCnt(w uint64) uint64 { return w & cntMask }

// globalTidp extracts the thread-index-plus-one component.
//
//wfq:noalloc
func globalTidp(w uint64) uint64 { return w >> tidShift }

// layout holds the per-ring bit-field geometry.
type layout struct {
	order     uint   // log2(nSlots)
	nSlots    uint64 // 2n
	posMask   uint64 // nSlots-1
	idxMask   uint64 // index field mask (== posMask)
	enqBit    uint64 // 1 << order
	safeBit   uint64 // 1 << (order+1)
	cycBits   uint   // w
	cycMask   uint64 // (1<<w)-1
	vcShift   uint   // order+2
	noteShift uint   // order+2+w
	bottom    uint64 // ⊥
	bottomC   uint64 // ⊥c
}

func newLayout(capacity uint64) (layout, error) {
	if capacity < 2 {
		return layout{}, fmt.Errorf("wcq: capacity %d must be >= 2", capacity)
	}
	if capacity&(capacity-1) != 0 {
		return layout{}, fmt.Errorf("wcq: capacity %d must be a power of two", capacity)
	}
	nSlots := 2 * capacity
	var order uint
	for uint64(1)<<order < nSlots {
		order++
	}
	w := (62 - order) / 2
	if w < minCycleBits {
		return layout{}, fmt.Errorf("wcq: capacity %d too large (cycle field %d bits < %d)", capacity, w, minCycleBits)
	}
	l := layout{
		order:     order,
		nSlots:    nSlots,
		posMask:   nSlots - 1,
		idxMask:   nSlots - 1,
		enqBit:    1 << order,
		safeBit:   1 << (order + 1),
		cycBits:   w,
		cycMask:   (uint64(1) << w) - 1,
		vcShift:   order + 2,
		noteShift: order + 2 + w,
		bottom:    nSlots - 2,
		bottomC:   nSlots - 1,
	}
	return l, nil
}

// entry is the unpacked view of a slot word.
type entry struct {
	note  uint64 // cycle recorded by "avert" operations; 0 = none
	cycle uint64 // Value.Cycle
	safe  bool
	enq   bool
	index uint64
}

// pack assembles the slot word.
//
//wfq:noalloc
func (l *layout) pack(e entry) uint64 {
	w := e.note<<l.noteShift | e.cycle<<l.vcShift | e.index
	if e.safe {
		w |= l.safeBit
	}
	if e.enq {
		w |= l.enqBit
	}
	return w
}

// unpack splits a slot word.
//
//wfq:noalloc
func (l *layout) unpack(w uint64) entry {
	return entry{
		note:  w >> l.noteShift & l.cycMask,
		cycle: w >> l.vcShift & l.cycMask,
		safe:  w&l.safeBit != 0,
		enq:   w&l.enqBit != 0,
		index: w & l.idxMask,
	}
}

// withNote returns w with only the Note field replaced — the paper's
// "avert" CAS2 that keeps Value intact.
//
//wfq:noalloc
func (l *layout) withNote(w, note uint64) uint64 {
	return w&^(l.cycMask<<l.noteShift) | note<<l.noteShift
}

// cycleOf maps a Head/Tail counter value to its (truncated) ring cycle.
//
//wfq:noalloc
func (l *layout) cycleOf(c uint64) uint64 { return c >> l.order & l.cycMask }

// initialWord is the slot state at construction: {Note: none,
// Cycle 0, IsSafe, Enq, Index ⊥}.
func (l *layout) initialWord() uint64 {
	return l.pack(entry{note: 0, cycle: 0, safe: true, enq: true, index: l.bottom})
}
