package wcq

import (
	"fmt"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/metrics"
	"repro/internal/pad"
	"repro/internal/ring"
)

// Defaults match the paper's evaluation (§6) — patience 16/64 makes the
// slow path "relatively infrequent" — and bounded catchup (§3.2).
const (
	DefaultEnqPatience = 16
	DefaultDeqPatience = 64
	DefaultHelpDelay   = 16
	MaxCatchup         = 64
)

// Options tune a Ring. The zero value selects the paper's defaults and
// native F&A.
type Options struct {
	// Mode selects native or CAS-emulated F&A (the Fig. 12 PowerPC
	// configuration).
	Mode atomicx.Mode
	// EnqPatience / DeqPatience are the MAX_PATIENCE bounds on the
	// fast path before falling back to the wait-free slow path.
	EnqPatience int
	DeqPatience int
	// HelpDelay is the number of operations between help_threads scans.
	HelpDelay int
	// Metrics, when non-nil, counts slow-path entries, threshold
	// resets and batch degradations. nil (the default) records
	// nothing; each site pays one predictable nil-check branch.
	Metrics *metrics.Sink
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.EnqPatience <= 0 {
		v.EnqPatience = DefaultEnqPatience
	}
	if v.DeqPatience <= 0 {
		v.DeqPatience = DefaultDeqPatience
	}
	if v.HelpDelay <= 0 {
		v.HelpDelay = DefaultHelpDelay
	}
	return v
}

// Ring is a bounded wait-free MPMC queue of indices in [0, Cap()).
// All memory is allocated at construction; operations never allocate.
//
//wfq:isolate
type Ring struct {
	lay     layout  //wfq:stable
	n       uint64  //wfq:stable usable capacity
	thresh3 int64   //wfq:stable 3n-1
	emulate bool    //wfq:stable
	opts    Options //wfq:stable

	_         pad.Line
	tail      atomicx.Counter // packed {cnt, phase2 tid+1}
	_         pad.Line
	head      atomicx.Counter // packed {cnt, phase2 tid+1}
	_         pad.Line
	threshold atomic.Int64
	_         pad.Line

	entries []atomic.Uint64

	recs      []record
	nextRec   atomic.Int64 //wfq:cold registration only
	maxThread int
}

// NewRing returns an empty wait-free ring holding up to capacity
// indices in [0, capacity), usable by at most maxThreads registered
// handles. capacity must be a power of two >= 2.
func NewRing(capacity uint64, maxThreads int, opts *Options) (*Ring, error) {
	lay, err := newLayout(capacity)
	if err != nil {
		return nil, err
	}
	if maxThreads < 1 || maxThreads > MaxThreads {
		return nil, fmt.Errorf("wcq: maxThreads %d out of range [1, %d]", maxThreads, MaxThreads)
	}
	o := opts.withDefaults()
	q := &Ring{
		lay:       lay,
		n:         capacity,
		thresh3:   int64(3*capacity - 1),
		emulate:   o.Mode.Emulated(),
		opts:      o,
		entries:   make([]atomic.Uint64, lay.nSlots),
		recs:      make([]record, maxThreads),
		maxThread: maxThreads,
	}
	q.tail.Init(o.Mode, lay.nSlots) // start at cycle 1
	q.head.Init(o.Mode, lay.nSlots)
	q.threshold.Store(-1)
	w := lay.initialWord()
	for i := range q.entries {
		q.entries[i].Store(w)
	}
	for i := range q.recs {
		q.recs[i].init(i, o.HelpDelay)
	}
	return q, nil
}

// NewFullRing returns a Ring pre-filled with indices 0..capacity-1, the
// initial state of a free-index ring.
func NewFullRing(capacity uint64, maxThreads int, opts *Options) (*Ring, error) {
	q, err := NewRing(capacity, maxThreads, opts)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < capacity; i++ {
		for { // single-threaded: first fast-path attempt always succeeds
			if _, ok := q.tryEnqueue(i); ok {
				break
			}
		}
	}
	return q, nil
}

// Register allocates a per-thread record and returns a Handle bound to
// it. It fails once maxThreads handles exist. Records are never
// recycled (the paper's NUM_THRDS census is fixed for the life of the
// queue).
func (q *Ring) Register() (*Handle, error) {
	id := q.nextRec.Add(1) - 1
	if id >= int64(q.maxThread) {
		q.nextRec.Add(-1)
		return nil, fmt.Errorf("wcq: thread census exhausted (maxThreads=%d)", q.maxThread)
	}
	return &Handle{q: q, r: &q.recs[id]}, nil
}

// Cap returns the usable capacity n.
//
//wfq:noalloc
func (q *Ring) Cap() uint64 { return q.n }

// Footprint returns the statically allocated byte size of the ring
// (entries + thread records + control words), for the Fig. 10a
// memory-usage reproduction.
//
//wfq:noalloc
func (q *Ring) Footprint() uint64 {
	const recSize = 192 // unsafe.Sizeof(record{}) rounded to lines
	return uint64(len(q.entries))*8 + uint64(len(q.recs))*recSize + 6*pad.CacheLineSize
}

// tailCnt / headCnt read the counter component of the packed globals.
//
//wfq:noalloc
func (q *Ring) tailCnt() uint64 { return globalCnt(q.tail.Load()) }

//wfq:noalloc
func (q *Ring) headCnt() uint64 { return globalCnt(q.head.Load()) }

// thresholdFAA adds d to Threshold and returns the previous value.
//
//wfq:noalloc
func (q *Ring) thresholdFAA(d int64) int64 {
	if !q.emulate {
		return q.threshold.Add(d) - d
	}
	for {
		old := q.threshold.Load()
		if q.threshold.CompareAndSwap(old, old+d) {
			return old
		}
	}
}

// entryOr ORs bits into a slot word (consume's atomic OR; emulated via
// CAS in the PowerPC configuration, §3.3).
//
//wfq:noalloc
func (q *Ring) entryOr(e *atomic.Uint64, bits uint64) {
	if !q.emulate {
		e.Or(bits)
		return
	}
	for {
		old := e.Load()
		if old&bits == bits {
			return
		}
		if e.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// consume marks the slot at position h consumed (Fig. 5). When the
// entry was produced by a slow-path enqueuer and is still in its
// two-step window (Enq=0), the dequeuer first finalizes that helping
// request so the producer's helpers stop. selfTid < 0 means "not a
// registered thread" (only used single-threaded).
//
//wfq:noalloc
func (q *Ring) consume(h uint64, e *atomic.Uint64, w uint64, selfTid int) {
	if w&q.lay.enqBit == 0 {
		q.finalizeRequest(h, selfTid)
	}
	q.entryOr(e, q.lay.bottomC|q.lay.enqBit)
}

// finalizeRequest sets FIN on the localTail of the (unique) enqueue
// request whose current position is h (Fig. 5, finalize_request). The
// caller's own record is skipped: a dequeuing thread cannot be the
// pending enqueuer.
//
//wfq:noalloc
func (q *Ring) finalizeRequest(h uint64, selfTid int) {
	for i := range q.recs {
		if i == selfTid {
			continue
		}
		r := &q.recs[i]
		if lt := r.localTail.Load(); lt&cntMask == h {
			r.localTail.CompareAndSwap(h, h|flagFIN)
			return
		}
	}
}

// enqueueAt runs the per-slot half of try_enq for an already-reserved
// Tail ticket t: the slot examination and the entry CAS, without the
// F&A and without the threshold reset (the callers own both, so the
// batch path can amortize them across a whole reservation).
//
//wfq:noalloc
func (q *Ring) enqueueAt(t, index uint64) bool {
	l := &q.lay
	tCycle := l.cycleOf(t)
	e := &q.entries[ring.Remap(t&l.posMask, l.order)]
	for {
		w := e.Load()
		ent := l.unpack(w)
		if cycLess(ent.cycle, tCycle) &&
			(ent.index == l.bottom || ent.index == l.bottomC) &&
			(ent.safe || q.headCnt() <= t) {
			nw := l.pack(entry{note: ent.note, cycle: tCycle, safe: true, enq: true, index: index})
			if !e.CompareAndSwap(w, nw) {
				continue
			}
			return true
		}
		return false
	}
}

// resetThreshold performs the post-enqueue threshold reset (the load
// avoids a shared write when the threshold is already pegged, which
// also keeps the reset counter to genuine re-arms).
//
//wfq:noalloc
func (q *Ring) resetThreshold() {
	if q.threshold.Load() != q.thresh3 {
		q.threshold.Store(q.thresh3)
		q.opts.Metrics.Inc(metrics.ThresholdReset)
	}
}

// Metrics returns the sink this ring records into (nil when disabled).
//
//wfq:noalloc
func (q *Ring) Metrics() *metrics.Sink { return q.opts.Metrics }

// tryEnqueue is the fast path (try_enq, Fig. 3, with the Enq bit set in
// one step and the Note field preserved). On failure it returns the
// consumed Tail ticket to seed the slow path.
//
//wfq:noalloc
func (q *Ring) tryEnqueue(index uint64) (ticket uint64, ok bool) {
	t := globalCnt(q.tail.Add(1))
	if q.enqueueAt(t, index) {
		q.resetThreshold()
		return 0, true
	}
	return t, false
}

// counterRef aliases the packed global counter type used by slow.go.
type counterRef = atomicx.Counter

type deqStatus uint8

const (
	deqRetry deqStatus = iota
	deqGot
	deqEmpty
)

// dequeueAt runs the per-slot half of try_deq for an already-reserved
// Head ticket h: the consume attempt, the slot transition that keeps a
// passed position safe from late enqueuers, and the emptiness
// accounting. Every reserved Head ticket MUST pass through here —
// abandoning one without the slot transition would let a late
// enqueuer of the same cycle publish a value at a position Head has
// already passed, losing it.
//
//wfq:noalloc
func (q *Ring) dequeueAt(h uint64, selfTid int) (index uint64, st deqStatus) {
	l := &q.lay
	hCycle := l.cycleOf(h)
	e := &q.entries[ring.Remap(h&l.posMask, l.order)]
	for {
		w := e.Load()
		ent := l.unpack(w)
		if ent.cycle == hCycle {
			q.consume(h, e, w, selfTid)
			return ent.index, deqGot
		}
		var nw uint64
		if ent.index == l.bottom || ent.index == l.bottomC {
			nw = l.pack(entry{note: ent.note, cycle: hCycle, safe: ent.safe, enq: true, index: l.bottom})
		} else {
			nw = l.pack(entry{note: ent.note, cycle: ent.cycle, safe: false, enq: ent.enq, index: ent.index})
		}
		if cycLess(ent.cycle, hCycle) {
			if !e.CompareAndSwap(w, nw) {
				continue
			}
		}
		t := q.tailCnt()
		if t <= h+1 {
			q.catchup(t, h+1)
			q.thresholdFAA(-1)
			return 0, deqEmpty
		}
		if q.thresholdFAA(-1) <= 0 {
			return 0, deqEmpty
		}
		return 0, deqRetry
	}
}

// tryDequeue is the fast path (try_deq, Fig. 3 adapted per Fig. 5:
// consume finalizes Enq=0 producers; Note and Enq are preserved by the
// transition CASes).
//
//wfq:noalloc
func (q *Ring) tryDequeue(selfTid int) (ticket, index uint64, st deqStatus) {
	h := globalCnt(q.head.Add(1))
	index, st = q.dequeueAt(h, selfTid)
	return h, index, st
}

// catchup advances the Tail counter to head when dequeuers overran all
// enqueuers, preserving the packed phase2 component. Bounded per §3.2.
//
//wfq:noalloc
func (q *Ring) catchup(tail, head uint64) {
	for i := 0; i < MaxCatchup; i++ {
		tw := q.tail.Load()
		cnt := globalCnt(tw)
		if cnt != tail {
			tail = cnt
			head = q.headCnt()
			if tail >= head {
				return
			}
		}
		if q.tail.CompareAndSwap(tw, packGlobal(head, globalTidp(tw))) {
			return
		}
	}
}

// cycLess compares two truncated cycle values. Cycles are monotonic and
// far from wrapping in any supported run (see package comment), so a
// plain comparison is used, as in the paper.
//
//wfq:noalloc
func cycLess(a, b uint64) bool { return a < b }

// Drained reports whether the head counter has caught the tail
// counter (every enqueue ticket examined).
//
//wfq:noalloc
func (q *Ring) Drained() bool { return q.headCnt() >= q.tailCnt() }

// Enqueue inserts index. It is wait-free: after EnqPatience fast-path
// attempts it switches to the helped slow path, which completes in a
// bounded number of steps. Like the paper's Enqueue_wCQ it assumes at
// most Cap() live indices (aq/fq usage) and so never reports "full".
//
//wfq:noalloc
func (h *Handle) Enqueue(index uint64) {
	q, r := h.q, h.r
	q.helpThreads(r)
	var ticket uint64
	patience := q.opts.EnqPatience // hoisted: one field load per op, not per attempt
	for i := 0; i < patience; i++ {
		t, ok := q.tryEnqueue(index)
		if ok {
			return
		}
		ticket = t
	}
	// Slow path: publish a help request and run it ourselves.
	q.opts.Metrics.Inc(metrics.EnqSlowPath)
	seq := r.seq1.Load()
	r.localTail.Store(ticket)
	r.initTail.Store(ticket)
	r.index.Store(index)
	r.enqueue.Store(true)
	r.seq2.Store(seq)
	r.pending.Store(true)
	q.enqueueSlow(ticket, index, r, seq, r)
	r.pending.Store(false)
	r.seq1.Store(seq + 1)
}

// Dequeue removes and returns the oldest index; ok is false when the
// queue is empty. Wait-free by the same fast-path/slow-path structure.
//
//wfq:noalloc
func (h *Handle) Dequeue() (index uint64, ok bool) {
	q, r := h.q, h.r
	if q.threshold.Load() < 0 {
		return 0, false // empty
	}
	q.helpThreads(r)
	var ticket uint64
	patience := q.opts.DeqPatience // hoisted: one field load per op, not per attempt
	for i := 0; i < patience; i++ {
		t, idx, st := q.tryDequeue(r.tid)
		switch st {
		case deqGot:
			return idx, true
		case deqEmpty:
			return 0, false
		}
		ticket = t
	}
	// Slow path.
	q.opts.Metrics.Inc(metrics.DeqSlowPath)
	seq := r.seq1.Load()
	r.localHead.Store(ticket)
	r.initHead.Store(ticket)
	r.enqueue.Store(false)
	r.seq2.Store(seq)
	r.pending.Store(true)
	q.dequeueSlow(ticket, r, seq, r)
	r.pending.Store(false)
	r.seq1.Store(seq + 1)
	// Gather the slow-path result (Fig. 5, lines 48-54).
	l := &q.lay
	hh := r.localHead.Load() & cntMask
	e := &q.entries[ring.Remap(hh&l.posMask, l.order)]
	w := e.Load()
	ent := l.unpack(w)
	if ent.cycle == l.cycleOf(hh) && ent.index != l.bottom {
		q.consume(hh, e, w, r.tid)
		return ent.index, true
	}
	return 0, false
}

// EnqueueBatch inserts the indices in order with a single Tail F&A
// reserving len(indices) consecutive tickets, then fills each reserved
// slot with the ordinary per-entry protocol (one uncontended CAS per
// slot on the fast path). A reserved ticket whose slot is unusable is
// abandoned exactly like a failed try_enq ticket, and the remaining
// elements degrade to the scalar Enqueue in order (fast path with
// patience, then the helped slow path), so the whole batch stays
// wait-free: at most k slot attempts plus k wait-free scalar
// enqueues. Like Enqueue it never reports full (aq/fq discipline).
//
// The threshold is reset once per contiguous fast-path run instead of
// once per element: the reserved tickets are consecutive, so once Head
// reaches the run's first element it consumes the rest with successful
// (non-decrementing) attempts — the first element's reset covers the
// whole run, and the degrade path resets per element as usual.
//
//wfq:noalloc
func (h *Handle) EnqueueBatch(indices []uint64) {
	k := len(indices)
	if k == 0 {
		return
	}
	if k == 1 {
		h.Enqueue(indices[0])
		return
	}
	q, r := h.q, h.r
	t0 := globalCnt(q.tail.Add(uint64(k)))
	thReset := false
	met := q.opts.Metrics // hoisted: loop-invariant (//wfq:stable)
	for j, idx := range indices {
		q.helpThreads(r) // keep the helping cadence of k scalar ops
		if !q.enqueueAt(t0+uint64(j), idx) {
			met.Inc(metrics.BatchDegrade)
			for _, v := range indices[j:] {
				h.Enqueue(v)
			}
			return
		}
		if !thReset {
			q.resetThreshold()
			thReset = true
		}
	}
}

// DequeueBatch removes up to len(out) of the oldest indices with a
// single Head F&A reserving a run of tickets sized to the visible
// backlog, then runs the ordinary per-entry protocol on every reserved
// ticket (each one must be processed — see dequeueAt). It returns how
// many indices were written; 0 means the ring appeared empty. That
// contract is load-bearing (Chan parks on it), so when every reserved
// ticket lands in a transient retry state the batch falls back to one
// scalar Dequeue rather than reporting a spurious 0. The batch stays
// wait-free by construction: exactly k bounded per-ticket protocols
// plus at most one wait-free scalar Dequeue.
//
//wfq:noalloc
func (h *Handle) DequeueBatch(out []uint64) int {
	q, r := h.q, h.r
	if len(out) == 0 || q.threshold.Load() < 0 {
		return 0
	}
	k := uint64(len(out))
	// Clamp the reservation to the visible backlog so an almost-empty
	// ring does not burn a run of empty-checking tickets. The snapshot
	// is racy; over-reservation is handled by the per-ticket protocol.
	t, hd := q.tailCnt(), q.headCnt()
	if t <= hd {
		idx, ok := h.Dequeue() // scalar probe with full empty accounting
		if !ok {
			return 0
		}
		out[0] = idx
		return 1
	}
	if backlog := t - hd; backlog < k {
		k = backlog
	}
	if k == 1 {
		idx, ok := h.Dequeue()
		if !ok {
			return 0
		}
		out[0] = idx
		return 1
	}
	h0 := globalCnt(q.head.Add(k))
	filled := 0
	sawRetry := false
	for j := uint64(0); j < k; j++ {
		q.helpThreads(r)
		switch idx, st := q.dequeueAt(h0+j, r.tid); st {
		case deqGot:
			out[filled] = idx
			filled++
		case deqRetry:
			sawRetry = true
		}
	}
	if filled == 0 && sawRetry {
		q.opts.Metrics.Inc(metrics.BatchDegrade)
		// Every reserved ticket hit a transient state (e.g. the run of
		// tickets abandoned by a partially-degraded EnqueueBatch) while
		// values may sit at later tickets. The scalar Dequeue (patience
		// fast path, then the helped slow path) either consumes a value
		// or proves emptiness, so 0 stays "empty" — and it is wait-free,
		// so the batch bound only grows by one scalar operation.
		if idx, ok := h.Dequeue(); ok {
			out[0] = idx
			return 1
		}
	}
	return filled
}

// helpThreads periodically scans for pending help requests (Fig. 6).
//
//wfq:noalloc
func (q *Ring) helpThreads(r *record) {
	r.nextCheck--
	if r.nextCheck != 0 {
		return
	}
	r.nextCheck = q.opts.HelpDelay
	if r.nextTid >= len(q.recs) {
		r.nextTid = 0
	}
	thr := &q.recs[r.nextTid]
	r.nextTid = (r.nextTid + 1) % len(q.recs)
	if thr == r || !thr.pending.Load() {
		return
	}
	if thr.enqueue.Load() {
		q.helpEnqueue(thr, r)
	} else {
		q.helpDequeue(thr, r)
	}
}

// helpEnqueue snapshots thr's request and joins its slow path (Fig. 6).
//
//wfq:noalloc
func (q *Ring) helpEnqueue(thr *record, self *record) {
	seq := thr.seq2.Load()
	enq := thr.enqueue.Load()
	idx := thr.index.Load()
	tail := thr.initTail.Load()
	if enq && thr.seq1.Load() == seq {
		q.enqueueSlow(tail, idx, thr, seq, self)
	}
}

//wfq:noalloc
func (q *Ring) helpDequeue(thr *record, self *record) {
	seq := thr.seq2.Load()
	enq := thr.enqueue.Load()
	head := thr.initHead.Load()
	if !enq && thr.seq1.Load() == seq {
		q.dequeueSlow(head, thr, seq, self)
	}
}
