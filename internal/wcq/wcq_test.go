package wcq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/atomicx"
)

// newTestRing builds a ring with a registered handle, failing the test
// on any error.
func newTestRing(t *testing.T, capacity uint64, threads int, opts *Options) (*Ring, []*Handle) {
	t.Helper()
	q, err := NewRing(capacity, threads, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]*Handle, threads)
	for i := range hs {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	return q, hs
}

func TestRegisterCensus(t *testing.T) {
	q, err := NewRing(8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("third Register on maxThreads=2 succeeded")
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(8, 0, nil); err == nil {
		t.Fatal("maxThreads=0 accepted")
	}
	if _, err := NewRing(8, MaxThreads+1, nil); err == nil {
		t.Fatal("maxThreads over census accepted")
	}
	if _, err := NewRing(7, 1, nil); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
}

func TestSequentialFIFO(t *testing.T) {
	_, hs := newTestRing(t, 8, 1, nil)
	h := hs[0]
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue on empty ring succeeded")
	}
	for i := uint64(0); i < 8; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue after drain succeeded")
	}
}

func TestWrapAroundManyCycles(t *testing.T) {
	_, hs := newTestRing(t, 4, 1, nil)
	h := hs[0]
	for round := uint64(0); round < 3000; round++ {
		for i := uint64(0); i < 4; i++ {
			h.Enqueue(i)
		}
		for i := uint64(0); i < 4; i++ {
			v, ok := h.Dequeue()
			if !ok || v != i {
				t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, i)
			}
		}
	}
}

func TestNewFullRingOrder(t *testing.T) {
	q, err := NewFullRing(16, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Register()
	for i := uint64(0); i < 16; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("full ring yielded more than capacity")
	}
}

// forcedSlowOpts makes every contended operation take the slow path
// and help eagerly, maximizing coverage of slowFAA/tryEnqSlow/
// tryDeqSlow.
func forcedSlowOpts() *Options {
	return &Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
}

func TestSequentialFIFOForcedSlow(t *testing.T) {
	// Even with patience 1 a single thread succeeds on the fast path's
	// first attempt most of the time; interleave full/empty transitions
	// to push it through the slow path via failed attempts.
	_, hs := newTestRing(t, 4, 2, forcedSlowOpts())
	h := hs[0]
	for round := 0; round < 2000; round++ {
		for i := uint64(0); i < 4; i++ {
			h.Enqueue(i)
		}
		for i := uint64(0); i < 4; i++ {
			v, ok := h.Dequeue()
			if !ok || v != i {
				t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, i)
			}
		}
		if _, ok := h.Dequeue(); ok {
			t.Fatal("phantom value")
		}
	}
}

// runMPMC moves perProducer tickets from p producers to c consumers
// through a ring of the given capacity and verifies exactly-once
// delivery of every (producer, seq) pair encoded in the indices.
//
// Ring indices must be < capacity, so indices are recycled through a
// channel-based credit pool while the logical payload identity is
// tracked in a side table written before enqueue and read after
// dequeue (the same indirection the paper's data queues use).
func runMPMC(t *testing.T, opts *Options, capacity uint64, p, c, perProducer int) {
	t.Helper()
	q, err := NewRing(capacity, p+c, opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]atomic.Uint64, capacity)
	credits := make(chan uint64, capacity)
	for i := uint64(0); i < capacity; i++ {
		credits <- i
	}
	total := p * perProducer
	delivered := make([]atomic.Int64, total)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < p; g++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *Handle) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				idx := <-credits
				payload[idx].Store(uint64(g*perProducer + i))
				h.Enqueue(idx)
			}
		}(g, h)
	}
	for g := 0; g < c; g++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for {
				if consumed.Load() >= int64(total) {
					return
				}
				idx, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				id := payload[idx].Load()
				delivered[id].Add(1)
				consumed.Add(1)
				credits <- idx
			}
		}(h)
	}
	wg.Wait()
	for id := range delivered {
		if n := delivered[id].Load(); n != 1 {
			t.Fatalf("payload %d delivered %d times", id, n)
		}
	}
}

func TestMPMCFastPath(t *testing.T) {
	runMPMC(t, nil, 64, 4, 4, 5000)
}

func TestMPMCForcedSlowPath(t *testing.T) {
	runMPMC(t, forcedSlowOpts(), 8, 4, 4, 3000)
}

func TestMPMCForcedSlowTinyRing(t *testing.T) {
	// Capacity 2 with 6 threads: every slot is contended, slow paths
	// and helping fire constantly.
	runMPMC(t, forcedSlowOpts(), 2, 3, 3, 2000)
}

func TestMPMCEmulatedFAA(t *testing.T) {
	runMPMC(t, &Options{Mode: atomicx.EmulatedFAA, EnqPatience: 2, DeqPatience: 2, HelpDelay: 1}, 16, 3, 3, 3000)
}

func TestMPMCManyThreadsOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runMPMC(t, &Options{EnqPatience: 4, DeqPatience: 8, HelpDelay: 2}, 32, 8, 8, 2000)
}

func TestPerProducerFIFO(t *testing.T) {
	// One producer, one consumer: global FIFO order must hold exactly,
	// including through slow paths.
	const total = 20000
	q, _ := NewRing(16, 2, forcedSlowOpts())
	hp, _ := q.Register()
	hc, _ := q.Register()
	payload := make([]atomic.Uint64, 16)
	credits := make(chan uint64, 16)
	for i := uint64(0); i < 16; i++ {
		credits <- i
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			idx := <-credits
			payload[idx].Store(uint64(i))
			hp.Enqueue(idx)
		}
	}()
	next := uint64(0)
	for next < total {
		idx, ok := hc.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		got := payload[idx].Load()
		if got != next {
			t.Fatalf("out of order: got %d, want %d", got, next)
		}
		next++
		credits <- idx
	}
	wg.Wait()
}

func TestEmptyDequeueDoesNotAdvanceHead(t *testing.T) {
	q, hs := newTestRing(t, 8, 1, nil)
	h := hs[0]
	h.Enqueue(0)
	h.Dequeue()
	for i := 0; i < 200; i++ {
		h.Dequeue()
	}
	h0 := q.headCnt()
	for i := 0; i < 100; i++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatal("phantom element")
		}
	}
	if q.headCnt() != h0 {
		t.Fatalf("empty dequeues advanced Head by %d", q.headCnt()-h0)
	}
}

func TestFootprintConstantUnderLoad(t *testing.T) {
	q, hs := newTestRing(t, 64, 2, forcedSlowOpts())
	f0 := q.Footprint()
	h := hs[0]
	for i := 0; i < 20000; i++ {
		h.Enqueue(uint64(i % 64))
		h.Dequeue()
	}
	if q.Footprint() != f0 {
		t.Fatalf("footprint changed %d -> %d", f0, q.Footprint())
	}
}

func TestNoAllocationSteadyState(t *testing.T) {
	q, _ := NewRing(64, 2, nil)
	h, _ := q.Register()
	for i := 0; i < 100; i++ { // warm up
		h.Enqueue(uint64(i % 64))
		h.Dequeue()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Enqueue(1)
		h.Dequeue()
	})
	if allocs != 0 {
		t.Fatalf("steady-state operations allocate %v bytes/op", allocs)
	}
}
