package wcq

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
)

// Queue is a bounded wait-free MPMC queue of arbitrary values, built
// from two wait-free Rings and a data array via the paper's Figure 2
// indirection: fq circulates free indices, aq circulates allocated
// ones. All memory is allocated at construction.
type Queue[T any] struct {
	aq   *Ring
	fq   *Ring
	data []T

	// Sealing state for the unbounded (Appendix A) construction; see
	// Drained for the protocol.
	sealed   atomic.Bool
	inflight atomic.Int64
}

// QueueHandle is a registered thread's capability to operate on a
// Queue. Like Handle it must not be shared between goroutines.
type QueueHandle[T any] struct {
	q   *Queue[T]
	aqh *Handle
	fqh *Handle
	// idxBuf carries index runs between fq, the data array and aq in
	// the batch operations. It grows to the largest batch this handle
	// has seen and is then reused forever, so the steady-state batch
	// hot path allocates nothing.
	idxBuf []uint64
}

// scratch returns the handle's index buffer, grown to hold n entries
// but never past the ring capacity — at most Cap() indices can move
// per call, so a batch far larger than the ring must not pin a
// buffer sized to the batch (short counts are within the batch
// contract; the caller resumes with the remainder).
//
//wfq:allocok grows to ring capacity once per handle, then reused
func (h *QueueHandle[T]) scratch(n int) []uint64 {
	if c := int(h.q.Cap()); n > c {
		n = c
	}
	if cap(h.idxBuf) < n {
		h.idxBuf = make([]uint64, n)
	}
	return h.idxBuf[:n]
}

// NewQueue returns an empty Queue holding up to capacity values,
// usable by at most maxThreads registered handles. capacity must be a
// power of two >= 2.
func NewQueue[T any](capacity uint64, maxThreads int, opts *Options) (*Queue[T], error) {
	aq, err := NewRing(capacity, maxThreads, opts)
	if err != nil {
		return nil, err
	}
	fq, err := NewFullRing(capacity, maxThreads, opts)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, capacity)}, nil
}

// Register allocates per-thread records in both underlying rings.
func (q *Queue[T]) Register() (*QueueHandle[T], error) {
	aqh, err := q.aq.Register()
	if err != nil {
		return nil, fmt.Errorf("wcq: registering with aq: %w", err)
	}
	fqh, err := q.fq.Register()
	if err != nil {
		return nil, fmt.Errorf("wcq: registering with fq: %w", err)
	}
	return &QueueHandle[T]{q: q, aqh: aqh, fqh: fqh}, nil
}

// Enqueue appends v; it returns false when the queue is full. The
// operation is wait-free.
//
//wfq:noalloc
func (h *QueueHandle[T]) Enqueue(v T) bool {
	idx, ok := h.fqh.Dequeue()
	if !ok {
		return false
	}
	h.q.data[idx] = v
	h.aqh.Enqueue(idx)
	return true
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty. The operation is wait-free.
//
//wfq:noalloc
func (h *QueueHandle[T]) Dequeue() (v T, ok bool) {
	idx, ok := h.aqh.Dequeue()
	if !ok {
		var zero T
		return zero, false
	}
	v = h.q.data[idx]
	var zero T
	h.q.data[idx] = zero // release references before recycling the slot
	h.fqh.Enqueue(idx)
	return v, true
}

// EnqueueBatch appends a prefix of vs in order and returns its length;
// a short count means the queue filled up mid-batch. Index traffic
// with fq/aq moves through the native wait-free ring batches, so the
// fast path pays one F&A per ring per batch instead of one per
// element. The operation is wait-free (two bounded ring batches).
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	buf := h.scratch(len(vs))
	n := h.fqh.DequeueBatch(buf)
	for j := 0; j < n; j++ {
		h.q.data[buf[j]] = vs[j]
	}
	h.aqh.EnqueueBatch(buf[:n])
	return n
}

// DequeueBatch fills a prefix of out with the oldest values and
// returns its length; 0 means the queue appeared empty. Wait-free
// like EnqueueBatch.
//
//wfq:noalloc
func (h *QueueHandle[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	buf := h.scratch(len(out))
	n := h.aqh.DequeueBatch(buf)
	var zero T
	for j := 0; j < n; j++ {
		idx := buf[j]
		out[j] = h.q.data[idx]
		h.q.data[idx] = zero // release references before recycling the slot
	}
	h.fqh.EnqueueBatch(buf[:n])
	return n
}

// EnqueueSealedBatch is EnqueueBatch unless the queue is sealed, in
// which case it appends nothing (the unbounded construction's batch
// enqueue rolls over to a fresh ring on a short count).
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueSealedBatch(vs []T) int {
	q := h.q
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.sealed.Load() {
		return 0
	}
	return h.EnqueueBatch(vs)
}

// Seal closes the queue for enqueues (the appendix's finalize_wCQ):
// EnqueueSealed fails once the seal is visible, while dequeues drain
// the remaining elements normally.
//
//wfq:noalloc
func (q *Queue[T]) Seal() { q.sealed.Store(true) }

// Reset reopens a sealed queue for enqueues. It is only sound on a
// queue that is Drained and reachable by no other goroutine (the
// unbounded construction's ring recycling, where the retire handshake
// guarantees exclusivity); the rings' monotonic cycle counters carry
// on, so no other state needs rewinding. Handles registered before the
// seal stay valid.
//
//wfq:noalloc
func (q *Queue[T]) Reset() { q.sealed.Store(false) }

// Drained reports that no value can ever be produced by this queue
// again: sealed, no enqueue in flight, and every enqueue ticket
// examined. EnqueueSealed registers in inflight BEFORE checking the
// seal, so with sequentially consistent atomics this is exact.
//
//wfq:noalloc
func (q *Queue[T]) Drained() bool {
	return q.sealed.Load() && q.inflight.Load() == 0 && q.aq.Drained()
}

// EnqueueSealed appends v unless the queue is full or sealed.
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueSealed(v T) bool {
	q := h.q
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.sealed.Load() {
		return false
	}
	return h.Enqueue(v)
}

// Empty reports that the queue held no value at some instant during
// the call: aq's head counter had caught up with its tail counter, so
// every enqueued value had been claimed by a dequeue. The probe is
// one-sided (a concurrent enqueue may land right after), which is the
// guarantee the blocking facade's direct handoff needs — handing a
// value past the ring is FIFO-safe iff nothing unclaimed precedes it.
//
//wfq:noalloc
func (q *Queue[T]) Empty() bool { return q.aq.Drained() }

// Cap returns the queue capacity.
//
//wfq:noalloc
func (q *Queue[T]) Cap() uint64 { return q.aq.Cap() }

// Metrics returns the sink both underlying rings record into (nil when
// metrics are disabled). aq and fq are built from the same Options, so
// one accessor covers the queue.
//
//wfq:noalloc
func (q *Queue[T]) Metrics() *metrics.Sink { return q.aq.Metrics() }

// Footprint returns the statically allocated byte size of the queue
// (both rings, thread records and the payload array slots).
//
//wfq:noalloc
func (q *Queue[T]) Footprint() uint64 {
	return q.aq.Footprint() + q.fq.Footprint() + uint64(cap(q.data))*8
}
