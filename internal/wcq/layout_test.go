package wcq

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	for _, c := range []uint64{0, 1, 3, 12, 1 << 40} {
		if _, err := newLayout(c); err == nil {
			t.Errorf("capacity %d: expected error", c)
		}
	}
	for _, c := range []uint64{2, 8, 1 << 10, 1 << 16} {
		if _, err := newLayout(c); err != nil {
			t.Errorf("capacity %d: unexpected error %v", c, err)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l, err := newLayout(1 << 16) // the paper's benchmark ring
	if err != nil {
		t.Fatal(err)
	}
	if l.nSlots != 1<<17 || l.order != 17 {
		t.Fatalf("nSlots=%d order=%d", l.nSlots, l.order)
	}
	if l.cycBits != 22 { // (62-17)/2
		t.Fatalf("cycBits=%d, want 22", l.cycBits)
	}
	if l.bottom != 1<<17-2 || l.bottomC != 1<<17-1 {
		t.Fatalf("bottom=%d bottomC=%d", l.bottom, l.bottomC)
	}
	// The top of the note field must stay within 64 bits.
	if uint(l.noteShift)+l.cycBits > 64 {
		t.Fatalf("note field overflows the word: shift %d width %d", l.noteShift, l.cycBits)
	}
}

func TestEntryPackUnpackRoundTrip(t *testing.T) {
	l, _ := newLayout(64)
	f := func(note, cycle uint32, safe, enq bool, idx uint8) bool {
		e := entry{
			note:  uint64(note) & l.cycMask,
			cycle: uint64(cycle) & l.cycMask,
			safe:  safe,
			enq:   enq,
			index: uint64(idx) & l.idxMask,
		}
		return l.unpack(l.pack(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithNoteKeepsValue(t *testing.T) {
	l, _ := newLayout(16)
	f := func(note, cycle uint16, safe, enq bool, idx uint8, newNote uint16) bool {
		e := entry{
			note:  uint64(note) & l.cycMask,
			cycle: uint64(cycle) & l.cycMask,
			safe:  safe,
			enq:   enq,
			index: uint64(idx) & l.idxMask,
		}
		nn := uint64(newNote) & l.cycMask
		got := l.unpack(l.withNote(l.pack(e), nn))
		e.note = nn
		return got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumeORSetsBottomC(t *testing.T) {
	// OR-ing in ⊥c|enqBit must turn any real index into ⊥c with Enq=1
	// while preserving cycle, safe and note — the consume() invariant.
	l, _ := newLayout(32)
	f := func(note, cycle uint16, safe bool, idx uint8) bool {
		e := entry{
			note:  uint64(note) & l.cycMask,
			cycle: uint64(cycle) & l.cycMask,
			safe:  safe,
			enq:   false,
			index: uint64(idx) & l.idxMask,
		}
		w := l.pack(e) | l.bottomC | l.enqBit
		got := l.unpack(w)
		want := e
		want.index = l.bottomC
		want.enq = true
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalPacking(t *testing.T) {
	f := func(cnt uint64, tid uint16) bool {
		cnt &= cntMask
		w := packGlobal(cnt, uint64(tid))
		return globalCnt(w) == cnt && globalTidp(w) == uint64(tid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalFAALeavesTidIntact(t *testing.T) {
	// A fast-path F&A(+1) on the packed word must not disturb the tid
	// component (until a 2^48 counter overflow, which we do not model).
	w := packGlobal(12345, 7)
	w++
	if globalTidp(w) != 7 || globalCnt(w) != 12346 {
		t.Fatalf("after increment: cnt=%d tidp=%d", globalCnt(w), globalTidp(w))
	}
}

func TestCycleOfTruncates(t *testing.T) {
	l, _ := newLayout(8) // order 4
	if l.cycleOf(16) != 1 || l.cycleOf(31) != 1 || l.cycleOf(32) != 2 {
		t.Fatal("cycleOf arithmetic wrong")
	}
	// Truncation wraps at 2^w.
	big := (uint64(1)<<l.cycBits + 3) << l.order
	if l.cycleOf(big) != 3 {
		t.Fatalf("cycleOf(big) = %d, want 3", l.cycleOf(big))
	}
}

func TestFlagsDisjointFromCounter(t *testing.T) {
	if flagINC&cntMask != 0 || flagFIN&cntMask != 0 || flagINC == flagFIN {
		t.Fatal("flag bits overlap the counter")
	}
}

func TestInitialWord(t *testing.T) {
	l, _ := newLayout(4)
	e := l.unpack(l.initialWord())
	if e.cycle != 0 || !e.safe || !e.enq || e.index != l.bottom || e.note != 0 {
		t.Fatalf("initial word unpacked to %+v", e)
	}
}
