package wcq

import (
	"sync/atomic"

	"repro/internal/ring"
)

// This file implements wCQ's wait-free slow path (Fig. 7): slow_F&A,
// the two-phase helped counter increment; try_enq_slow/try_deq_slow;
// and the enqueue_slow/dequeue_slow drivers.
//
// Terminology: a "cooperative group" is a helpee plus every thread
// currently helping it. All members repeat the same procedure against
// the same shared thread record r; slow_F&A guarantees the group
// advances through global Head/Tail tickets one at a time, and the
// Note field makes any position skipped by one member persistently
// skipped for all.
//
// Stale-helper guard: the paper's Fig. 6 validates seq1 == seq2 only
// once, before entering the slow path. A helper that passes the check
// and then stalls could survive into the helpee's NEXT request, whose
// localTail/localHead it would happily advance — with the PREVIOUS
// request's index in hand. enqueueSlow and dequeueSlow therefore
// re-validate r.seq1 == seq after every slow_F&A step: adopting a
// position of request k+1 means reading a localTail value written
// after seq1 was bumped, so the (sequentially consistent) re-read of
// seq1 cannot still observe seq.

// enqueueSlow drives one enqueue help request to completion. r is the
// helpee's record; self is the EXECUTING thread's record (its phase2
// slot is used for global increments). seq frames the request.
//
//wfq:noalloc
func (q *Ring) enqueueSlow(t, index uint64, r *record, seq uint64, self *record) {
	v := t
	for q.slowFAA(&q.tail, &r.localTail, &v, false, self) {
		if r.seq1.Load() != seq {
			return // stale helper: the request we joined is over
		}
		if q.tryEnqSlow(v, index, r) {
			break
		}
	}
}

// dequeueSlow drives one dequeue help request to completion. Unlike
// the fast path, the Threshold is decremented inside slow_F&A — once
// per global Head increment across the whole cooperative group
// (Lemma 5.6), preserving the 3n-1 bound.
//
//wfq:noalloc
func (q *Ring) dequeueSlow(h uint64, r *record, seq uint64, self *record) {
	v := h
	for q.slowFAA(&q.head, &r.localHead, &v, true, self) {
		if r.seq1.Load() != seq {
			return
		}
		if q.tryDeqSlow(v, r) {
			break
		}
	}
}

// slowFAA substitutes the fast path's F&A on a global {counter, phase2}
// word (Fig. 7, slow_F&A). It returns false — terminating the caller's
// slow path — once FIN is set on the request's local counter, and true
// with *v holding the group's current ticket otherwise.
//
// Phase 1 tentatively advances the request's local counter to the
// global value with the INC flag; the global counter is then
// incremented together with publishing self's phase2 record; phase 2
// clears INC on the local counter and the phase2 publication, either
// by the installer or by any thread that observes the publication
// (loadGlobalHelpPhase2). Paired counters increase monotonically, so
// the packed {cnt, tid} word is ABA-free.
//
//wfq:noalloc
func (q *Ring) slowFAA(global *counterRef, local *atomic.Uint64, v *uint64, useThld bool, self *record) bool {
	ph := &self.phase2
	for {
		cnt, ok := q.loadGlobalHelpPhase2(global, local)
		if !ok || !local.CompareAndSwap(*v, cnt|flagINC) {
			lv := local.Load()
			*v = lv
			if lv&flagFIN != 0 {
				return false // the request completed elsewhere
			}
			if lv&flagINC == 0 {
				return true // ticket already assigned by a peer
			}
			cnt = lv & cntMask // help complete the pending increment
		} else {
			*v = cnt | flagINC // phase 1 complete
		}
		// Publish the phase-2 request and try to install the increment.
		s := ph.seq1.Load() + 1
		ph.seq1.Store(s)
		ph.local.Store(local)
		ph.cnt.Store(cnt)
		ph.seq2.Store(s)
		if global.CompareAndSwap(packGlobal(cnt, 0), packGlobal(cnt+1, uint64(self.tid)+1)) {
			// Increment installed: this group owns ticket cnt.
			if useThld {
				q.thresholdFAA(-1)
			}
			local.CompareAndSwap(cnt|flagINC, cnt)
			global.CompareAndSwap(packGlobal(cnt+1, uint64(self.tid)+1), packGlobal(cnt+1, 0))
			*v = cnt
			return true
		}
	}
}

// loadGlobalHelpPhase2 loads the global word, first completing any
// published phase-2 request (Fig. 7, load_global_help_phase2). ok is
// false when the caller's request has been finalized.
//
//wfq:noalloc
func (q *Ring) loadGlobalHelpPhase2(global *counterRef, mylocal *atomic.Uint64) (cnt uint64, ok bool) {
	for {
		if mylocal.Load()&flagFIN != 0 {
			return 0, false // outer loop exits; the helpee is served
		}
		gw := global.Load()
		tidp := globalTidp(gw)
		if tidp == 0 {
			return globalCnt(gw), true // no help request published
		}
		ph := &q.recs[tidp-1].phase2
		s := ph.seq2.Load()
		lp := ph.local.Load()
		c := ph.cnt.Load()
		if ph.seq1.Load() == s && lp != nil {
			// Complete phase 2 for the installer: clear INC, assigning
			// ticket c to its group. Fails harmlessly if already done.
			lp.CompareAndSwap(c|flagINC, c)
		}
		// Clear the publication. The {cnt, tid} word is ABA-free, so a
		// success here cannot clear a newer request.
		if global.CompareAndSwap(gw, packGlobal(globalCnt(gw), 0)) {
			return globalCnt(gw), true
		}
	}
}

// tryEnqSlow attempts to insert index at ticket t (Fig. 7,
// try_enq_slow). Returns true when the request is complete at this
// ticket (inserted by us or a peer), false when the group must advance
// to the next ticket.
//
//wfq:noalloc
func (q *Ring) tryEnqSlow(t, index uint64, r *record) bool {
	l := &q.lay
	thresh3 := q.thresh3 // hoisted: loop-invariant (//wfq:stable)
	tCycle := l.cycleOf(t)
	e := &q.entries[ring.Remap(t&l.posMask, l.order)]
	for {
		w := e.Load()
		ent := l.unpack(w)
		if ent.cycle == tCycle {
			// Our group already filled this slot (possibly consumed
			// since: ⊥c) — unless a dequeuer group marked it ⊥ first,
			// in which case the position is burnt and we move on.
			return ent.index != l.bottom
		}
		if !cycLess(ent.cycle, tCycle) {
			return false // stale ticket; the group has moved on
		}
		if !cycLess(ent.note, tCycle) {
			return false // a peer averted this slot for all of us
		}
		if (!ent.safe && q.headCnt() > t) ||
			(ent.index != l.bottom && ent.index != l.bottomC) {
			// Unusable slot: avert helper enqueuers from using it even
			// if its state later changes (Note := Cycle(T)).
			if !e.CompareAndSwap(w, l.withNote(w, tCycle)) {
				continue
			}
			return false
		}
		// Produce the entry in two steps: Enq=0 first.
		nw := l.pack(entry{note: ent.note, cycle: tCycle, safe: true, enq: false, index: index})
		if !e.CompareAndSwap(w, nw) {
			continue
		}
		// Finalize the help request, then flip Enq to 1. If a dequeuer
		// already consumed the entry it set FIN for us (consume/
		// finalize_request) and the OR below has happened or will.
		if r.localTail.CompareAndSwap(t, t|flagFIN) {
			e.CompareAndSwap(nw, nw|l.enqBit)
		}
		if q.threshold.Load() != thresh3 {
			q.threshold.Store(thresh3)
		}
		return true
	}
}

// tryDeqSlow attempts to consume the entry at ticket h (Fig. 7,
// try_deq_slow). On success the result is NOT consumed here — helpers
// only set FIN; the helpee gathers and consumes the value afterwards
// (Fig. 5, lines 48-54), so exactly one value is delivered.
//
//wfq:noalloc
func (q *Ring) tryDeqSlow(h uint64, r *record) bool {
	l := &q.lay
	hCycle := l.cycleOf(h)
	e := &q.entries[ring.Remap(h&l.posMask, l.order)]
	for {
		w := e.Load()
		ent := l.unpack(w)
		if ent.cycle == hCycle && ent.index != l.bottom {
			// Ready (a real index, or ⊥c if consumed by the helpee).
			r.localHead.CompareAndSwap(h, h|flagFIN)
			return true
		}
		if ent.index != l.bottom && ent.index != l.bottomC {
			// Occupied by an older cycle.
			if cycLess(ent.cycle, hCycle) && cycLess(ent.note, hCycle) {
				// Avert helper dequeuers from this slot first.
				if !e.CompareAndSwap(w, l.withNote(w, hCycle)) {
					continue
				}
				continue // reload; the unsafe-marking branch follows
			}
			if cycLess(ent.cycle, hCycle) {
				// Mark unsafe so the old cycle's enqueuer cannot use it.
				nw := l.pack(entry{note: ent.note, cycle: ent.cycle, safe: false, enq: ent.enq, index: ent.index})
				if !e.CompareAndSwap(w, nw) {
					continue
				}
			}
		} else if cycLess(ent.cycle, hCycle) {
			// Empty slot: raise it to our cycle with ⊥ so a late
			// enqueuer of this ticket cannot fill it.
			nw := l.pack(entry{note: ent.note, cycle: hCycle, safe: ent.safe, enq: true, index: l.bottom})
			if !e.CompareAndSwap(w, nw) {
				continue
			}
		}
		// Nothing to consume at this ticket: check for emptiness. The
		// threshold was already decremented by slow_F&A for this ticket.
		t := q.tailCnt()
		if t <= h+1 {
			q.catchup(t, h+1)
		}
		if q.threshold.Load() < 0 {
			r.localHead.CompareAndSwap(h, h|flagFIN)
			return true // empty result; gather will see no value
		}
		return false
	}
}
