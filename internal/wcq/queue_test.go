package wcq

import (
	"runtime"
	"sync"
	"testing"
)

func TestDataQueueSequential(t *testing.T) {
	q, err := NewQueue[string](4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for _, s := range []string{"a", "b", "c", "d"} {
		if !h.Enqueue(s) {
			t.Fatalf("enqueue %q failed", s)
		}
	}
	if h.Enqueue("x") {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%q,%v), want %q", v, ok, want)
		}
	}
}

func TestDataQueueReleasesReferences(t *testing.T) {
	q, _ := NewQueue[*int](4, 1, nil)
	h, _ := q.Register()
	x := new(int)
	h.Enqueue(x)
	h.Dequeue()
	// The payload slot must be zeroed after dequeue (GC hygiene).
	for i := range q.data {
		if q.data[i] != nil {
			t.Fatal("payload slot retains a pointer after dequeue")
		}
	}
}

func TestSealStopsEnqueues(t *testing.T) {
	q, _ := NewQueue[uint64](8, 2, nil)
	h, _ := q.Register()
	if !h.EnqueueSealed(1) {
		t.Fatal("enqueue before seal failed")
	}
	q.Seal()
	if h.EnqueueSealed(2) {
		t.Fatal("enqueue after seal succeeded")
	}
	// Remaining elements still drain.
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("got (%d,%v), want 1", v, ok)
	}
	if !q.Drained() {
		t.Fatal("sealed empty queue not drained")
	}
}

func TestDrainedRequiresSeal(t *testing.T) {
	q, _ := NewQueue[uint64](8, 1, nil)
	if q.Drained() {
		t.Fatal("unsealed queue reported drained")
	}
}

func TestSealConcurrentNoLoss(t *testing.T) {
	// Values accepted by EnqueueSealed must all be dequeued; values
	// rejected are the caller's to keep. Seal mid-stream and verify
	// accounting balances exactly.
	const producers = 4
	const per = 3000
	q, err := NewQueue[uint64](64, producers+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	hd, _ := q.Register()
	var wg sync.WaitGroup
	accepted := make([][]uint64, producers)
	for p := 0; p < producers; p++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *QueueHandle[uint64]) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(p*per + i)
				if h.EnqueueSealed(v) {
					accepted[p] = append(accepted[p], v)
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	// Drain concurrently, then seal part-way.
	got := map[uint64]bool{}
	var mu sync.Mutex
	stop := make(chan struct{})
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		for {
			v, ok := hd.Dequeue()
			if ok {
				mu.Lock()
				if got[v] {
					t.Errorf("duplicate %d", v)
				}
				got[v] = true
				mu.Unlock()
				continue
			}
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	q.Seal()
	wg.Wait()
	// Wait until sealed queue is fully drained, then stop the drainer.
	for !q.Drained() {
		runtime.Gosched()
	}
	close(stop)
	dwg.Wait()
	// Final sweep for anything between the drainer's last miss and stop.
	for {
		v, ok := hd.Dequeue()
		if !ok {
			break
		}
		if got[v] {
			t.Fatalf("duplicate %d in final sweep", v)
		}
		got[v] = true
	}
	total := 0
	for p := range accepted {
		total += len(accepted[p])
		for _, v := range accepted[p] {
			if !got[v] {
				t.Fatalf("accepted value %d lost after seal", v)
			}
		}
	}
	if len(got) != total {
		t.Fatalf("dequeued %d values, producers recorded %d accepted", len(got), total)
	}
}

func TestRingDrained(t *testing.T) {
	q, hs := newTestRing(t, 8, 1, nil)
	h := hs[0]
	if !q.Drained() {
		t.Fatal("fresh ring (head==tail) should report drained")
	}
	h.Enqueue(1)
	if q.Drained() {
		t.Fatal("ring with pending ticket reported drained")
	}
	h.Dequeue()
	if !q.Drained() {
		t.Fatal("consumed ring not drained")
	}
}
