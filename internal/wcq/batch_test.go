package wcq

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/atomicx"
)

// TestBatchSingleFAA pins the native batch path's contract: one Tail
// F&A per fast-path enqueue batch and one Head F&A per dequeue batch,
// counted via the CountingFAA mode.
func TestBatchSingleFAA(t *testing.T) {
	q, err := NewRing(256, 2, &Options{Mode: atomicx.CountingFAA})
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint64, 32)
	for i := range in {
		in[i] = uint64(i)
	}
	tail0, head0 := q.tail.Adds(), q.head.Adds()
	h.EnqueueBatch(in)
	if got := q.tail.Adds() - tail0; got != 1 {
		t.Fatalf("EnqueueBatch(32) issued %d Tail F&As, want 1", got)
	}
	out := make([]uint64, 32)
	if n := h.DequeueBatch(out); n != 32 {
		t.Fatalf("DequeueBatch = %d, want 32", n)
	}
	if got := q.head.Adds() - head0; got != 1 {
		t.Fatalf("DequeueBatch(32) issued %d Head F&As, want 1", got)
	}
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("out[%d] = %d, want %d (batch not contiguous FIFO)", i, v, i)
		}
	}
}

// TestDequeueBatchAbandonedRun pins the "0 means empty" contract in
// the state a partially-degraded EnqueueBatch leaves behind: a run of
// reserved-then-abandoned Tail tickets ahead of real values. A batch
// reservation landing entirely on the abandoned run sees only
// transient (retry) tickets; returning 0 there would read as "empty"
// to Chan's parking receivers and strand them with values buffered,
// so DequeueBatch must instead deliver at least one value (via the
// wait-free scalar fallback).
func TestDequeueBatchAbandonedRun(t *testing.T) {
	q, err := NewRing(64, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// Reserve and abandon 4 consecutive Tail tickets — exactly the
	// state the EnqueueBatch degrade path produces when a reserved
	// slot turns out unusable.
	q.tail.Add(4)
	const vals = 8
	for i := uint64(0); i < vals; i++ {
		h.Enqueue(i)
	}
	out := make([]uint64, 4)
	for expect := uint64(0); expect < vals; {
		n := h.DequeueBatch(out)
		if n == 0 {
			t.Fatalf("DequeueBatch returned 0 with %d values buffered", vals-expect)
		}
		for _, v := range out[:n] {
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
	}
}

// TestQueueBatchWrap exercises the payload-level batches across many
// ring wraps single-threaded, where the fast path must always succeed
// and order must be exact.
func TestQueueBatchWrap(t *testing.T) {
	q, err := NewQueue[uint64](64, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	next, expect := uint64(0), uint64(0)
	out := make([]uint64, 48)
	for round := 0; round < 50; round++ {
		in := make([]uint64, 48)
		for i := range in {
			in[i] = next
			next++
		}
		if n := h.EnqueueBatch(in); n != len(in) {
			t.Fatalf("round %d: EnqueueBatch = %d, want %d", round, n, len(in))
		}
		got := 0
		for got < len(in) {
			n := h.DequeueBatch(out[:len(in)-got])
			for _, v := range out[:n] {
				if v != expect {
					t.Fatalf("round %d: got %d, want %d", round, v, expect)
				}
				expect++
			}
			got += n
		}
	}
}

// TestQueueBatchSlowpathDegrade forces patience-1 eager helping so
// batch fast-path failures degrade through the helped slow path, and
// verifies exactly-once + per-producer order under concurrency.
func TestQueueBatchSlowpathDegrade(t *testing.T) {
	const (
		producers   = 2
		consumers   = 2
		perProducer = 3000
		batch       = 16
	)
	q, err := NewQueue[uint64](16, producers+consumers, &Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg, cg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int)
	consumed := 0
	total := producers * perProducer

	for p := 0; p < producers; p++ {
		h, herr := q.Register()
		if herr != nil {
			t.Fatal(herr)
		}
		wg.Add(1)
		go func(p int, h *QueueHandle[uint64]) {
			defer wg.Done()
			buf := make([]uint64, 0, batch)
			for i := 0; i < perProducer; {
				buf = buf[:0]
				for j := i; j < perProducer && len(buf) < batch; j++ {
					buf = append(buf, uint64(p)<<32|uint64(j))
				}
				sent := 0
				for sent < len(buf) {
					n := h.EnqueueBatch(buf[sent:])
					sent += n
					if n == 0 {
						runtime.Gosched()
					}
				}
				i += len(buf)
			}
		}(p, h)
	}
	for c := 0; c < consumers; c++ {
		h, herr := q.Register()
		if herr != nil {
			t.Fatal(herr)
		}
		cg.Add(1)
		go func(h *QueueHandle[uint64]) {
			defer cg.Done()
			out := make([]uint64, batch)
			last := map[uint64]uint64{}
			for {
				mu.Lock()
				done := consumed >= total
				mu.Unlock()
				if done {
					return
				}
				n := h.DequeueBatch(out)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				mu.Lock()
				for _, v := range out[:n] {
					p, seq := v>>32, v&0xffffffff
					if prev, ok := last[p]; ok && seq <= prev {
						t.Errorf("producer %d: seq %d after %d", p, seq, prev)
					}
					last[p] = seq
					seen[v]++
					consumed++
				}
				mu.Unlock()
			}
		}(h)
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != total {
		t.Fatalf("saw %d distinct values, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x delivered %d times", v, n)
		}
	}
}
