package wcq

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"
)

// stageEnqueueRequest publishes an enqueue help request on h's record
// exactly like Enqueue's slow path does, without running it — the
// "stalled helpee" of Lemma 5.3.
func stageEnqueueRequest(h *Handle, ticket, index uint64) uint64 {
	r := h.r
	seq := r.seq1.Load()
	r.localTail.Store(ticket)
	r.initTail.Store(ticket)
	r.index.Store(index)
	r.enqueue.Store(true)
	r.seq2.Store(seq)
	r.pending.Store(true)
	return seq
}

func stageDequeueRequest(h *Handle, ticket uint64) uint64 {
	r := h.r
	seq := r.seq1.Load()
	r.localHead.Store(ticket)
	r.initHead.Store(ticket)
	r.enqueue.Store(false)
	r.seq2.Store(seq)
	r.pending.Store(true)
	return seq
}

func finishRequest(h *Handle, seq uint64) {
	h.r.pending.Store(false)
	h.r.seq1.Store(seq + 1)
}

func slotOf(q *Ring, counter uint64) uint64 {
	return ring.Remap(counter&q.lay.posMask, q.lay.order)
}

// syntheticEnqTicket returns a ticket value suitable for staging a
// slow-path request in a single-threaded test: the last value below
// the current Tail counter. (Genuinely burning a ticket is hard to do
// deterministically because catchup rescues poisoned slots; any value
// below the global counter seeds slow_F&A identically.)
func syntheticEnqTicket(q *Ring) uint64 { return q.tailCnt() - 1 }

// TestHelperCompletesStalledEnqueue is the heart of wait-freedom: a
// helpee that publishes a request and then stalls forever still gets
// its element inserted, purely by another thread's helpEnqueue.
func TestHelperCompletesStalledEnqueue(t *testing.T) {
	q, hs := newTestRing(t, 8, 2, nil)
	stalled, helper := hs[0], hs[1]

	tk := syntheticEnqTicket(q)
	seq := stageEnqueueRequest(stalled, tk, 7)

	q.helpEnqueue(stalled.r, helper.r)

	if stalled.r.localTail.Load()&flagFIN == 0 {
		t.Fatal("helper did not finalize the request")
	}
	finishRequest(stalled, seq)

	v, ok := helper.Dequeue()
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
	if v, ok := helper.Dequeue(); ok {
		t.Fatalf("duplicate element %d", v)
	}
}

// TestHelperCompletesStalledDequeue: a staged dequeue request is run
// to completion by a helper; the helpee's gather step then delivers
// the value exactly once.
func TestHelperCompletesStalledDequeue(t *testing.T) {
	q, hs := newTestRing(t, 8, 3, nil)
	stalled, producer, helper := hs[0], hs[1], hs[2]

	producer.Enqueue(1)
	if v, ok := stalled.Dequeue(); !ok || v != 1 {
		t.Fatalf("warmup dequeue got (%d,%v)", v, ok)
	}
	producer.Enqueue(7) // the value the stalled dequeue must receive

	// Stage with the last already-consumed head ticket, as if the
	// stalled thread's fast attempts had burnt it.
	tk := q.headCnt() - 1
	seq := stageDequeueRequest(stalled, tk)

	q.helpDequeue(stalled.r, helper.r)
	if stalled.r.localHead.Load()&flagFIN == 0 {
		t.Fatal("helper did not finalize the dequeue request")
	}

	// Gather exactly as Dequeue's slow path epilogue does.
	l := &q.lay
	hh := stalled.r.localHead.Load() & cntMask
	e := &q.entries[slotOf(q, hh)]
	w := e.Load()
	ent := l.unpack(w)
	finishRequest(stalled, seq)
	if ent.cycle != l.cycleOf(hh) || ent.index == l.bottom {
		t.Fatalf("gather found no value at ticket %d (entry %+v)", hh, ent)
	}
	if ent.index == l.bottomC {
		t.Fatal("value consumed by someone other than the helpee")
	}
	q.consume(hh, e, w, stalled.r.tid)
	if ent.index != 7 {
		t.Fatalf("gathered %d, want 7", ent.index)
	}
	if v, ok := helper.Dequeue(); ok {
		t.Fatalf("value %d delivered twice", v)
	}
}

// TestSlowFAAFINStopsHelpers: once FIN is set on the request's local
// counter, slowFAA must return false without touching the global.
func TestSlowFAAFINStopsHelpers(t *testing.T) {
	q, hs := newTestRing(t, 8, 2, nil)
	r := hs[0].r
	r.localTail.Store(5 | flagFIN)
	g0 := q.tail.Load()
	v := uint64(5)
	if q.slowFAA(&q.tail, &r.localTail, &v, false, hs[1].r) {
		t.Fatal("slowFAA returned true despite FIN")
	}
	if q.tail.Load() != g0 {
		t.Fatal("slowFAA advanced the global counter despite FIN")
	}
}

// TestSlowFAAAssignsTicketOnce: N threads running slowFAA against the
// same request must all converge on the same ticket, and the global
// counter must advance exactly once.
func TestSlowFAAAssignsTicketOnce(t *testing.T) {
	const helpers = 8
	q, hs := newTestRing(t, 8, helpers+1, nil)
	r := hs[helpers].r
	start := q.tailCnt()
	init := start - 1 // the request's pretend last fast-path ticket
	r.localTail.Store(init)
	var wg sync.WaitGroup
	tickets := make([]uint64, helpers)
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := init
			if !q.slowFAA(&q.tail, &r.localTail, &v, false, hs[i].r) {
				t.Error("slowFAA returned false without FIN")
			}
			tickets[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < helpers; i++ {
		if tickets[i] != tickets[0] {
			t.Fatalf("divergent tickets: %v", tickets)
		}
	}
	if tickets[0] != start {
		t.Fatalf("ticket %d, want %d", tickets[0], start)
	}
	if got := q.tailCnt(); got != start+1 {
		t.Fatalf("global advanced to %d, want exactly %d", got, start+1)
	}
	if tidp := globalTidp(q.tail.Load()); tidp != 0 {
		t.Fatalf("phase2 publication not cleared: tidp=%d", tidp)
	}
	if lt := r.localTail.Load(); lt != start {
		t.Fatalf("localTail = %#x, want plain ticket %d", lt, start)
	}
}

// TestStaleHelperCannotCrossRequests: a helper that captured request
// k's snapshot must not insert k's index once the helpee is on request
// k+1 — the seq re-validation guard.
func TestStaleHelperCannotCrossRequests(t *testing.T) {
	q, hs := newTestRing(t, 8, 2, nil)
	helpee, helper := hs[0], hs[1]

	tk := syntheticEnqTicket(q)
	seq := stageEnqueueRequest(helpee, tk, 3)
	thr := helpee.r
	snapSeq := thr.seq2.Load()
	snapIdx := thr.index.Load()
	snapTail := thr.initTail.Load()

	// Helpee completes request k itself and stages request k+1.
	q.enqueueSlow(snapTail, snapIdx, thr, seq, helpee.r)
	if thr.localTail.Load()&flagFIN == 0 {
		t.Fatal("request k did not finish")
	}
	finishRequest(helpee, seq)
	// A filler fast-path enqueue advances the Tail counter; it stays in
	// the queue and is accounted for in the final drain.
	filler := uint64(5)
	fillerIn := false
	tk2, ok := q.tryEnqueue(filler)
	if ok {
		fillerIn = true
		tk2 = q.tailCnt() - 1
	}
	seq2 := stageEnqueueRequest(helpee, tk2, 4)

	// The stale helper runs with request k's snapshot. The seq guard
	// must stop it before it inserts index 3 for request k+1.
	q.enqueueSlow(snapTail, snapIdx, thr, snapSeq, helper.r)

	// Now complete request k+1 properly.
	q.enqueueSlow(thr.initTail.Load(), 4, thr, seq2, helpee.r)
	finishRequest(helpee, seq2)

	counts := map[uint64]int{}
	for {
		v, ok := helper.Dequeue()
		if !ok {
			break
		}
		counts[v]++
	}
	want := map[uint64]int{3: 1, 4: 1}
	if fillerIn {
		want[filler] = 1
	}
	for v, n := range counts {
		if want[v] != n {
			t.Fatalf("drained %v, want %v", counts, want)
		}
	}
	if len(counts) != len(want) {
		t.Fatalf("drained %v, want %v", counts, want)
	}
}

// TestHelpThreadsScansAndHelps: a pending request is picked up by a
// busy peer as a side effect of its own operations.
func TestHelpThreadsScansAndHelps(t *testing.T) {
	q, hs := newTestRing(t, 64, 2, &Options{HelpDelay: 1})
	stalledH, worker := hs[0], hs[1]

	tk := syntheticEnqTicket(q)
	seq := stageEnqueueRequest(stalledH, tk, 11)

	found := 0
	deadline := time.Now().Add(10 * time.Second)
	for stalledH.r.localTail.Load()&flagFIN == 0 {
		worker.Enqueue(1)
		if v, ok := worker.Dequeue(); ok && v == 11 {
			found++
		}
		if time.Now().After(deadline) {
			t.Fatal("request not helped within deadline")
		}
	}
	finishRequest(stalledH, seq)
	for {
		v, ok := worker.Dequeue()
		if !ok {
			break
		}
		if v == 11 {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("helped element delivered %d times, want 1", found)
	}
}

// TestFinalizeRequestMatchesOnlyExactCounter verifies FIN is set only
// on a record whose localTail counter equals h exactly, and that
// flagged (INC) counters are matched but left unmodified.
func TestFinalizeRequestMatchesOnlyExactCounter(t *testing.T) {
	q, hs := newTestRing(t, 8, 3, nil)
	a, b := hs[0].r, hs[1].r
	a.localTail.Store(100)
	b.localTail.Store(101)
	q.finalizeRequest(100, hs[2].r.tid)
	if a.localTail.Load() != 100|flagFIN {
		t.Fatal("matching record not finalized")
	}
	if b.localTail.Load() != 101 {
		t.Fatal("non-matching record finalized")
	}
	b.localTail.Store(102 | flagINC)
	q.finalizeRequest(102, hs[2].r.tid)
	if b.localTail.Load() != 102|flagINC {
		t.Fatal("INC-flagged record was modified")
	}
	// The scanner must skip the caller's own record.
	self := hs[2].r
	self.localTail.Store(103)
	q.finalizeRequest(103, self.tid)
	if self.localTail.Load() != 103 {
		t.Fatal("finalizeRequest matched the caller's own record")
	}
}

// TestLoadGlobalHelpsForeignPhase2: a thread that merely loads the
// global must complete a published phase-2 request on the way.
func TestLoadGlobalHelpsForeignPhase2(t *testing.T) {
	q, hs := newTestRing(t, 8, 2, nil)
	installer, other := hs[0].r, hs[1].r

	cnt := q.tailCnt()
	installer.localTail.Store(cnt | flagINC)
	ph := &installer.phase2
	s := ph.seq1.Load() + 1
	ph.seq1.Store(s)
	ph.local.Store(&installer.localTail)
	ph.cnt.Store(cnt)
	ph.seq2.Store(s)
	if !q.tail.CompareAndSwap(packGlobal(cnt, 0), packGlobal(cnt+1, uint64(installer.tid)+1)) {
		t.Fatal("setup CAS failed")
	}

	got, ok := q.loadGlobalHelpPhase2(&q.tail, &other.localHead)
	if !ok || got != cnt+1 {
		t.Fatalf("loadGlobal returned (%d,%v), want (%d,true)", got, ok, cnt+1)
	}
	if installer.localTail.Load() != cnt {
		t.Fatalf("phase2 not completed: localTail=%#x", installer.localTail.Load())
	}
	if globalTidp(q.tail.Load()) != 0 {
		t.Fatal("publication not cleared")
	}
}

// TestLoadGlobalSkipsStalePhase2: an expired phase2 record (seq1 !=
// seq2) must not be applied, but the publication must still be
// cleared so fast paths are unaffected.
func TestLoadGlobalSkipsStalePhase2(t *testing.T) {
	q, hs := newTestRing(t, 8, 2, nil)
	installer, other := hs[0].r, hs[1].r

	cnt := q.tailCnt()
	installer.localTail.Store(cnt | flagINC)
	ph := &installer.phase2
	ph.seq1.Store(10)
	ph.local.Store(&installer.localTail)
	ph.cnt.Store(cnt)
	ph.seq2.Store(9) // stale: seq1 != seq2
	if !q.tail.CompareAndSwap(packGlobal(cnt, 0), packGlobal(cnt+1, uint64(installer.tid)+1)) {
		t.Fatal("setup CAS failed")
	}
	got, ok := q.loadGlobalHelpPhase2(&q.tail, &other.localHead)
	if !ok || got != cnt+1 {
		t.Fatalf("loadGlobal returned (%d,%v)", got, ok)
	}
	if installer.localTail.Load() != cnt|flagINC {
		t.Fatal("stale phase2 was applied")
	}
	if globalTidp(q.tail.Load()) != 0 {
		t.Fatal("stale publication not cleared")
	}
}

// TestConcurrentForcedSlowSoak hammers a capacity-2 ring with forced
// slow paths from many goroutines, checking liveness when every
// contended operation goes slow.
func TestConcurrentForcedSlowSoak(t *testing.T) {
	const threads = 6
	const per = 2000
	q, err := NewRing(2, threads, forcedSlowOpts())
	if err != nil {
		t.Fatal(err)
	}
	credits := make(chan struct{}, 2)
	credits <- struct{}{}
	credits <- struct{}{}
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				select {
				case <-credits:
					h.Enqueue(uint64(i % 2))
				default:
					if _, ok := h.Dequeue(); ok {
						credits <- struct{}{}
					} else {
						runtime.Gosched()
					}
				}
			}
		}(g, h)
	}
	wg.Wait()
}
