// Contract test: both ring-core adapters (wCQ, SCQ) run through one
// shared suite, so any behavioral drift between the cores behind the
// Core/Ring/Handle contract fails here before a composition trips
// over it.
package ringcore

import (
	"testing"

	"repro/internal/atomicx"
)

// forEachKind runs the shared suite body once per registered kind.
func forEachKind(t *testing.T, body func(t *testing.T, kind Kind)) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { body(t, kind) })
	}
}

func mustNew(t *testing.T, kind Kind, capacity uint64, maxThreads int) Ring[uint64] {
	t.Helper()
	r, err := New[uint64](kind, capacity, maxThreads, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustAcquire(t *testing.T, c Core[uint64]) Handle[uint64] {
	t.Helper()
	h, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestKindNames(t *testing.T) {
	if KindWCQ.String() != "wCQ" || KindSCQ.String() != "SCQ" {
		t.Fatalf("kind names: %s, %s", KindWCQ, KindSCQ)
	}
	for _, kind := range Kinds() {
		got, err := KindByName(kind.String())
		if err != nil || got != kind {
			t.Fatalf("KindByName(%s) = (%v, %v)", kind, got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if !KindWCQ.Census() || KindSCQ.Census() {
		t.Fatal("census flags inverted")
	}
}

func TestContractConstruction(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		if _, err := New[uint64](kind, 24, 4, nil); err == nil {
			t.Fatal("non-power-of-two capacity accepted")
		}
		r := mustNew(t, kind, 64, 4)
		if r.Cap() != 64 {
			t.Fatalf("Cap() = %d, want 64", r.Cap())
		}
		if r.Footprint() == 0 {
			t.Fatal("zero footprint")
		}
		if r.Kind() != kind {
			t.Fatalf("Kind() = %v, want %v", r.Kind(), kind)
		}
	})
	if _, err := New[uint64](Kind(99), 64, 4, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestContractScalarFIFO(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		r := mustNew(t, kind, 8, 2)
		h := mustAcquire(t, r)
		for i := uint64(0); i < 8; i++ {
			if !h.Enqueue(i) {
				t.Fatalf("enqueue %d failed below capacity", i)
			}
		}
		if h.Enqueue(99) {
			t.Fatal("enqueue beyond capacity succeeded")
		}
		for i := uint64(0); i < 8; i++ {
			v, ok := h.Dequeue()
			if !ok || v != i {
				t.Fatalf("got (%d,%v), want %d", v, ok, i)
			}
		}
		if _, ok := h.Dequeue(); ok {
			t.Fatal("phantom value after drain")
		}
	})
}

func TestContractBatch(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		r := mustNew(t, kind, 8, 2)
		h := mustAcquire(t, r)
		in := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		if n := h.EnqueueBatch(in); n != 8 {
			t.Fatalf("EnqueueBatch into capacity 8 = %d, want the fitting prefix 8", n)
		}
		out := make([]uint64, 16)
		got := 0
		for got < 8 {
			n := h.DequeueBatch(out[got:])
			if n == 0 {
				t.Fatalf("lost values: drained %d of 8", got)
			}
			got += n
		}
		for i := 0; i < 8; i++ {
			if out[i] != in[i] {
				t.Fatalf("out[%d] = %d, want %d (prefix property)", i, out[i], in[i])
			}
		}
		if n := h.DequeueBatch(out); n != 0 {
			t.Fatalf("empty core yielded %d values", n)
		}
	})
}

func TestContractSealLifecycle(t *testing.T) {
	// The recycling lifecycle the unbounded construction drives:
	// seal rejects new enqueues, the remainder drains, Drained flips,
	// Reset reopens.
	forEachKind(t, func(t *testing.T, kind Kind) {
		r := mustNew(t, kind, 8, 2)
		h := mustAcquire(t, r)
		if !h.EnqueueSealed(1) {
			t.Fatal("EnqueueSealed failed on an open ring")
		}
		r.Seal()
		if h.EnqueueSealed(2) {
			t.Fatal("EnqueueSealed succeeded on a sealed ring")
		}
		if n := h.EnqueueSealedBatch([]uint64{3, 4}); n != 0 {
			t.Fatalf("EnqueueSealedBatch on sealed ring = %d, want 0", n)
		}
		if r.Drained() {
			t.Fatal("Drained with a value still buffered")
		}
		if v, ok := h.Dequeue(); !ok || v != 1 {
			t.Fatalf("drain got (%d,%v), want 1", v, ok)
		}
		if !r.Drained() {
			t.Fatal("not Drained after sealing and draining")
		}
		r.Reset()
		if !h.EnqueueSealed(5) {
			t.Fatal("EnqueueSealed failed after Reset")
		}
		if v, ok := h.Dequeue(); !ok || v != 5 {
			t.Fatalf("got (%d,%v) after reset, want 5", v, ok)
		}
	})
}

func TestContractCensus(t *testing.T) {
	// Acquire must honor the kind's census semantics: bounded for wCQ,
	// unlimited for SCQ.
	r := mustNew(t, KindWCQ, 8, 2)
	mustAcquire(t, r)
	mustAcquire(t, r)
	if _, err := r.Acquire(); err == nil {
		t.Fatal("wCQ census of 2 allowed a third handle")
	}
	s := mustNew(t, KindSCQ, 8, 1)
	for i := 0; i < 10; i++ {
		mustAcquire(t, s)
	}
}

func TestContractZeroAllocHotPaths(t *testing.T) {
	// The "never allocates after construction" claim, enforced at the
	// contract level for both adapters on the scalar AND batch paths
	// (the per-handle scratch warms up once).
	forEachKind(t, func(t *testing.T, kind Kind) {
		r := mustNew(t, kind, 64, 2)
		h := mustAcquire(t, r)
		in := make([]uint64, 16)
		out := make([]uint64, 16)
		if n := h.EnqueueBatch(in); n != 16 {
			t.Fatalf("warmup EnqueueBatch = %d", n)
		}
		if n := h.DequeueBatch(out); n != 16 {
			t.Fatalf("warmup DequeueBatch = %d", n)
		}
		allocs := testing.AllocsPerRun(200, func() {
			h.Enqueue(1)
			h.Dequeue()
			h.EnqueueBatch(in)
			h.DequeueBatch(out)
		})
		if allocs != 0 {
			t.Fatalf("hot paths allocate %.1f objects/op, want 0", allocs)
		}
	})
}

func TestContractEmulatedMode(t *testing.T) {
	// The Options plumbing reaches both cores: emulated F&A must stay
	// functionally identical.
	forEachKind(t, func(t *testing.T, kind Kind) {
		r, err := New[uint64](kind, 8, 2, &Options{Mode: atomicx.EmulatedFAA})
		if err != nil {
			t.Fatal(err)
		}
		h := mustAcquire(t, r)
		for i := uint64(0); i < 8; i++ {
			if !h.Enqueue(i) {
				t.Fatalf("emulated enqueue %d failed", i)
			}
		}
		for i := uint64(0); i < 8; i++ {
			if v, ok := h.Dequeue(); !ok || v != i {
				t.Fatalf("emulated got (%d,%v), want %d", v, ok, i)
			}
		}
	})
}
