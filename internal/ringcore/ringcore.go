// Package ringcore defines the one contract both of the paper's
// index-ring cores — the wait-free wCQ and the lock-free SCQ — are
// consumed through, so every composition in this repository (sharded,
// unbounded linked rings, the queue registry, the blocking facade) is
// written once against Core/Ring/Handle instead of once per core.
//
// Before this package, each consumer carried its own dual plumbing:
// parallel `[]*wcq.Queue` / `[]*scq.Queue` arrays with a backend
// branch in every operation (sharded), hand-written ctl/view adapter
// pairs (unbounded), and a bespoke adapter struct per registry
// variant. The contract collapses all of that: a new core kind is one
// adapter here plus a Kind constant, and every composition picks it
// up for free.
//
// The split between the three interfaces follows who needs what:
//
//   - Handle is the per-goroutine operating surface: scalar and
//     native-batch enqueue/dequeue, plus the sealed variants the
//     linked-ring construction uses. A core that is never sealed
//     (an unbounded composite exposed as a Core) treats EnqueueSealed
//     exactly as Enqueue.
//   - Core is what any composition needs to hold a sub-queue: handle
//     acquisition, capacity, live footprint, and the ring kind.
//   - Ring adds the seal/drain/reset recycling lifecycle only the
//     unbounded construction drives.
package ringcore

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/scq"
	"repro/internal/wcq"
)

// Kind selects one of the paper's index-ring cores.
type Kind int

const (
	// KindWCQ is the wait-free wCQ core (the paper's contribution):
	// bounded steps per operation via helping, at the cost of a fixed
	// per-ring thread census consumed by Acquire.
	KindWCQ Kind = iota
	// KindSCQ is the lock-free SCQ substrate: no thread census, so any
	// number of handles may be acquired, with lock-free (not
	// wait-free) progress.
	KindSCQ
)

// String names the kind as the queue registry does.
func (k Kind) String() string {
	switch k {
	case KindWCQ:
		return "wCQ"
	case KindSCQ:
		return "SCQ"
	}
	return "?"
}

// Census reports whether handles of this kind draw on a bounded
// per-ring thread census (wCQ's NUM_THRDS records). Kinds without a
// census accept any number of Acquire calls, which is what lets the
// unbounded construction leave its handle count unbounded for SCQ
// rings.
func (k Kind) Census() bool { return k == KindWCQ }

// Kinds lists every registered ring kind, in registry-name order.
func Kinds() []Kind { return []Kind{KindWCQ, KindSCQ} }

// KindByName resolves a registry-style name ("wCQ", "SCQ") to its
// Kind, for flag parsing.
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("ringcore: unknown ring kind %q (have wCQ, SCQ)", name)
}

// Options tunes a core. The zero value selects native F&A and the
// paper's wCQ defaults; KindSCQ only consults Mode.
type Options struct {
	// Mode selects native or CAS-emulated F&A (the paper's PowerPC
	// configuration).
	Mode atomicx.Mode
	// EnqPatience / DeqPatience bound the wCQ fast path before the
	// helped slow path takes over (MAX_PATIENCE; 0 = paper defaults).
	EnqPatience int
	DeqPatience int
	// HelpDelay is the number of wCQ operations between help scans
	// (HELP_DELAY; 0 = paper default).
	HelpDelay int
	// Metrics, when non-nil, receives the core's slow-path events
	// (internal/metrics event taxonomy). Compositions thread the SAME
	// sink into every sub-core they build from these options, so a
	// whole stack aggregates into one Sink. nil disables recording at
	// the cost of one predictable branch per event site.
	Metrics *metrics.Sink
	// Wait selects the blocking-wait strategy (spin-then-park tuning).
	// The ring cores themselves never wait — every operation is
	// bounded — so this field rides along for the layers that do: the
	// Chan facade's park points and the harness's open-loop retry
	// paths consume it. nil means the adaptive default.
	Wait *backoff.Strategy
	// Handoff selects whether the blocking facade's direct-handoff
	// rendezvous path is used. Like Wait it rides along for the Chan
	// layer; the cores themselves never consult it. The zero value
	// (HandoffDefault) means enabled.
	Handoff HandoffMode
}

// HandoffMode is the tri-state direct-handoff selector: the zero value
// keeps the default (enabled) so an Options literal that never heard
// of handoff stays correct, while HandoffOff pins the pre-handoff ring
// path for A/B comparison.
type HandoffMode uint8

const (
	// HandoffDefault applies the default, which is enabled.
	HandoffDefault HandoffMode = iota
	// HandoffOn enables the direct-handoff rendezvous path explicitly.
	HandoffOn
	// HandoffOff disables it: every value moves through the ring and
	// every wake is a plain token (the pre-handoff behavior).
	HandoffOff
)

// Enabled resolves the tri-state to a concrete decision.
func (m HandoffMode) Enabled() bool { return m != HandoffOff }

// HandoffByName maps the -handoff flag vocabulary ("", "on", "off") to
// a mode, erroring on unknown names.
func HandoffByName(name string) (HandoffMode, error) {
	switch name {
	case "":
		return HandoffDefault, nil
	case "on":
		return HandoffOn, nil
	case "off":
		return HandoffOff, nil
	}
	return 0, fmt.Errorf("ringcore: unknown handoff mode %q (have on, off)", name)
}

// Handoff extracts the handoff mode (HandoffDefault when o is nil).
func (o *Options) HandoffMode() HandoffMode {
	if o == nil {
		return HandoffDefault
	}
	return o.Handoff
}

// WCQ translates the shared options into the wCQ package's own
// tuning struct — the ONE mapping between the two, used both by New
// and by callers that talk to internal/wcq directly (a future field
// added here cannot silently miss a constructor). A nil receiver
// selects all defaults.
func (o *Options) WCQ() *wcq.Options {
	if o == nil {
		return nil
	}
	return &wcq.Options{
		Mode:        o.Mode,
		EnqPatience: o.EnqPatience,
		DeqPatience: o.DeqPatience,
		HelpDelay:   o.HelpDelay,
		Metrics:     o.Metrics,
	}
}

// Sink extracts the metrics sink (nil when disabled or when o is nil).
// Compositions use it to pick up the shared sink for their own events
// (steals, ring recycling) without re-plumbing a second option.
func (o *Options) Sink() *metrics.Sink {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// mode extracts the F&A mode (the only field KindSCQ consults).
func (o *Options) mode() atomicx.Mode {
	if o == nil {
		return atomicx.NativeFAA
	}
	return o.Mode
}

// Statser is the optional introspection face of a core: a snapshot of
// the metrics sink it records into. Every core and composition in this
// repository implements it; because one Sink is threaded through all
// the layers of a composition, the outermost Stats() already
// aggregates the whole stack. A core built without metrics returns the
// zero Snapshot.
type Statser interface {
	// Stats snapshots the core's metrics sink.
	Stats() metrics.Snapshot
}

// Handle is a goroutine's capability to operate on a core. Like the
// underlying queues' handles it must not be used by two goroutines
// concurrently. Batch operations move through the cores' native
// multi-slot reservation (one F&A per batch) with per-handle
// zero-allocation scratch on both kinds.
type Handle[T any] interface {
	// Enqueue appends v; false means the core is full.
	Enqueue(v T) bool
	// Dequeue removes the oldest value; ok is false when empty.
	Dequeue() (T, bool)
	// EnqueueBatch appends a prefix of vs in order and returns its
	// length; a short count means the core filled up mid-batch.
	EnqueueBatch(vs []T) int
	// DequeueBatch fills a prefix of out with the oldest values and
	// returns its length; 0 means the core appeared empty.
	DequeueBatch(out []T) int
	// EnqueueSealed is Enqueue unless the core has been sealed, in
	// which case it appends nothing and returns false. On cores that
	// are never sealed it is identical to Enqueue.
	EnqueueSealed(v T) bool
	// EnqueueSealedBatch is EnqueueBatch unless the core has been
	// sealed, in which case it appends nothing and returns 0.
	EnqueueSealedBatch(vs []T) int
}

// Core is a queue core behind the one contract every composition
// consumes: handle acquisition plus the introspection the registry
// and the harness need. Both bounded ring kinds implement it (via
// Ring), and so do the composites that want to be composed again —
// the sharded and unbounded queues each expose themselves as a Core.
type Core[T any] interface {
	// Acquire returns a per-goroutine Handle. For kinds with a thread
	// census (KindWCQ) it fails once the census is exhausted;
	// census-free kinds never fail.
	Acquire() (Handle[T], error)
	// Cap returns the capacity, or 0 when the core is unbounded.
	Cap() uint64
	// Footprint returns the bytes the core retains right now. Bounded
	// cores report their fixed construction-time allocation; unbounded
	// composites report a live figure that grows and shrinks.
	Footprint() uint64
	// Empty reports that the core held no unclaimed value at some
	// instant during the call. The probe is one-sided: true proves a
	// linearization point at which every enqueued value had been
	// claimed by a dequeuer (a concurrent enqueue may land right
	// after); false proves nothing. The blocking facade's direct
	// handoff relies on exactly this — bypassing the ring is FIFO-safe
	// iff no unclaimed value precedes the handed-off one.
	Empty() bool
	// Kind identifies the ring kind the core is built from.
	Kind() Kind
}

// Ring is a recyclable bounded core: a Core plus the seal/drain/reset
// lifecycle the unbounded linked-ring construction drives. New
// returns this full contract; consumers that never seal (sharded)
// hold the Core subset.
type Ring[T any] interface {
	Core[T]
	// Seal closes the ring for enqueues: EnqueueSealed fails once the
	// seal is visible, while dequeues drain the remainder normally.
	Seal()
	// Reset reopens a sealed ring. Only sound on a Drained ring
	// reachable by no other goroutine (the recycling pool's
	// exclusivity guarantee).
	Reset()
	// Drained reports that no value can ever be produced by this ring
	// again: sealed, no enqueue in flight, every ticket examined.
	Drained() bool
}

// New builds an empty ring core of the given kind holding up to
// capacity values (a power of two >= 2). maxThreads bounds Acquire
// for census kinds (KindWCQ) and is ignored by census-free kinds.
func New[T any](kind Kind, capacity uint64, maxThreads int, opts *Options) (Ring[T], error) {
	switch kind {
	case KindWCQ:
		q, err := wcq.NewQueue[T](capacity, maxThreads, opts.WCQ())
		if err != nil {
			return nil, err
		}
		return wcqCore[T]{q}, nil
	case KindSCQ:
		q, err := scq.NewQueue[T](capacity, opts.mode())
		if err != nil {
			return nil, err
		}
		q.SetMetrics(opts.Sink())
		return scqCore[T]{q}, nil
	}
	return nil, fmt.Errorf("ringcore: unknown ring kind %d", int(kind))
}

// wcqCore adapts *wcq.Queue to the Ring contract. The embedded queue
// already provides Cap/Footprint/Seal/Reset/Drained; only handle
// acquisition and the kind tag are added, and *wcq.QueueHandle
// satisfies Handle structurally (it carries the per-handle batch
// scratch itself).
type wcqCore[T any] struct{ *wcq.Queue[T] }

// Kind reports KindWCQ.
func (c wcqCore[T]) Kind() Kind { return KindWCQ }

// Stats snapshots the queue's metrics sink (zero when disabled).
func (c wcqCore[T]) Stats() metrics.Snapshot { return c.Queue.Metrics().Snapshot() }

// Acquire registers a thread record in both underlying rings; it
// fails once the census is exhausted.
func (c wcqCore[T]) Acquire() (Handle[T], error) {
	h, err := c.Queue.Register()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// scqCore adapts *scq.Queue to the Ring contract. SCQ has no thread
// census: Acquire never fails and merely hands out a fresh
// *scq.QueueHandle carrying the per-handle batch scratch.
type scqCore[T any] struct{ *scq.Queue[T] }

// Kind reports KindSCQ.
func (c scqCore[T]) Kind() Kind { return KindSCQ }

// Stats snapshots the queue's metrics sink (zero when disabled).
func (c scqCore[T]) Stats() metrics.Snapshot { return c.Queue.Metrics().Snapshot() }

// Acquire returns a fresh census-free handle.
func (c scqCore[T]) Acquire() (Handle[T], error) {
	return c.Queue.Register(), nil
}
