// Zero-allocation guard: "never allocates after construction" is a
// headline claim of the paper's queues, and the native batch paths
// must not quietly break it (scratch buffers, escape-analysis
// regressions). testing.AllocsPerRun turns the claim into a
// regression test for every ring-based core, on the scalar AND batch
// hot paths. The unbounded queues are measured in steady state (no
// ring turnover): the claim there is no allocation per operation, not
// no allocation per ring rollover.
//
// Every case runs twice — sink absent and sink attached — because the
// metrics layer makes the same claim: recording an event from a hot
// path is a padded-counter add, never an allocation.
package queues

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/queueapi"
)

// allocVariants lists the cores whose hot paths must be allocation
// free. The external baselines (MSQueue, LCRQ, YMC, CRTurn) allocate
// nodes/segments by design and are excluded, as are the Chan facades
// (parking draws recycled waiters, but close bookkeeping is off the
// claim's hot path).
var allocVariants = []string{"wCQ", "SCQ", "Sharded", "ShardedUnbounded", "LSCQ", "UWCQ"}

// allocConfigs pairs each variant run with a disabled and an enabled
// metrics sink.
var allocConfigs = []struct {
	label string
	sink  func() *metrics.Sink
}{
	{"nometrics", func() *metrics.Sink { return nil }},
	{"metrics", metrics.New},
}

func TestZeroAllocScalarHotPath(t *testing.T) {
	for _, name := range allocVariants {
		for _, mc := range allocConfigs {
			t.Run(name+"/"+mc.label, func(t *testing.T) {
				cfg := testCfg()
				cfg.Metrics = mc.sink()
				q, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				h, err := q.Handle()
				if err != nil {
					t.Fatal(err)
				}
				// Warm the path (first unbounded op touches its view cache).
				if !h.Enqueue(1) {
					t.Fatal("warmup enqueue failed")
				}
				h.Dequeue()
				allocs := testing.AllocsPerRun(200, func() {
					h.Enqueue(42)
					h.Dequeue()
				})
				if allocs != 0 {
					t.Fatalf("scalar enqueue/dequeue pair allocates %.1f objects/op, want 0", allocs)
				}
			})
		}
	}
}

func TestZeroAllocBatchHotPath(t *testing.T) {
	const batch = 8
	for _, name := range allocVariants {
		for _, mc := range allocConfigs {
			t.Run(name+"/"+mc.label, func(t *testing.T) {
				cfg := testCfg()
				cfg.Metrics = mc.sink()
				q, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				h, err := q.Handle()
				if err != nil {
					t.Fatal(err)
				}
				b, ok := h.(queueapi.Batcher)
				if !ok {
					t.Fatalf("%s handle has no native Batcher", name)
				}
				in := make([]uint64, batch)
				out := make([]uint64, batch)
				for i := range in {
					in[i] = uint64(i)
				}
				// Warm the path (wCQ handles grow their index scratch once).
				if n := b.EnqueueBatch(in); n != batch {
					t.Fatalf("warmup EnqueueBatch = %d", n)
				}
				if n := b.DequeueBatch(out); n != batch {
					t.Fatalf("warmup DequeueBatch = %d", n)
				}
				allocs := testing.AllocsPerRun(200, func() {
					b.EnqueueBatch(in)
					b.DequeueBatch(out)
				})
				if allocs != 0 {
					t.Fatalf("batch enqueue/dequeue pair allocates %.1f objects/op, want 0", allocs)
				}
			})
		}
	}
}

// TestZeroAllocStatsSnapshot pins the observation side: taking a
// Stats() snapshot copies fixed-size arrays and must not allocate
// either, so a scraper can poll a live queue without perturbing it.
func TestZeroAllocStatsSnapshot(t *testing.T) {
	cfg := testCfg()
	cfg.Metrics = metrics.New()
	q, err := New("wCQ", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := q.(interface{ Stats() metrics.Snapshot })
	if !ok {
		t.Fatal("wCQ wrapper has no Stats()")
	}
	var snap metrics.Snapshot
	allocs := testing.AllocsPerRun(100, func() {
		snap = s.Stats()
	})
	if allocs != 0 {
		t.Fatalf("Stats() allocates %.1f objects/op, want 0", allocs)
	}
	_ = snap
}
