// Package queues adapts every queue implementation in this repository
// to the common queueapi interface and provides a registry keyed by
// the names used in the paper's figures (wCQ, SCQ, LCRQ, YMC, CRTurn,
// CCQueue, MSQueue, FAA) plus the post-paper compositions (Sharded,
// ShardedUnbounded, the unbounded LSCQ/UWCQ, and the blocking Chan
// facades).
//
// Every ring-based variant — both cores and every composition over
// them — is adapted by ONE generic coreAdapter through the
// ringcore.Core contract, so registering a new composition is a table
// entry plus a small build function. Only the paper's external
// baselines (LCRQ, YMC, CRTurn, CCQueue, MSQueue, FAA) and the
// blocking Chan facades keep bespoke adapters.
package queues

import (
	"context"
	"fmt"
	"sort"

	wfqueue "repro"
	"repro/internal/atomicx"
	"repro/internal/backoff"
	"repro/internal/ccq"
	"repro/internal/crturn"
	"repro/internal/faa"
	"repro/internal/lcrq"
	"repro/internal/metrics"
	"repro/internal/msq"
	"repro/internal/queueapi"
	"repro/internal/ringcore"
	"repro/internal/sharded"
	"repro/internal/unbounded"
	"repro/internal/ymc"
)

// Config parameterizes queue construction.
type Config struct {
	// Capacity is the bounded-ring capacity (wCQ, SCQ, Sharded; the
	// paper's benchmarks use 2^16) and the per-ring size of the
	// unbounded variants (LSCQ, UWCQ, ShardedUnbounded), where it is a
	// growth granularity rather than a bound.
	Capacity uint64
	// MaxThreads bounds the number of Handle() calls for queues with
	// per-thread state.
	MaxThreads int
	// Mode selects native or emulated F&A (the Fig. 12 configuration).
	Mode atomicx.Mode
	// LCRQOrder overrides the CRQ ring order (default 12, as in the
	// paper).
	LCRQOrder uint
	// Shards is the sub-queue count for the sharded compositions
	// (default sharded.DefaultShards).
	Shards int
	// Ring selects the ring kind inside the sharded compositions
	// (Sharded, ShardedUnbounded, ChanSharded, ChanShardedUnbounded)
	// and the ChanUnbounded facade: wait-free wCQ (the default) or
	// lock-free SCQ. The fixed-kind variants (wCQ, SCQ, LSCQ, UWCQ)
	// ignore it — their name is their kind.
	Ring ringcore.Kind
	// Core tunes the ring cores; nil selects the paper's defaults.
	Core *ringcore.Options
	// Metrics, when non-nil, makes the ring-based variants record into
	// the sink (threaded through every layer of a composition); the
	// built queue then implements queueapi.Statser. The external
	// baselines are not instrumented and ignore it.
	Metrics *metrics.Sink
	// Wait selects the blocking-wait strategy for the Chan facades
	// (spin-then-park tuning; nil = adaptive). The nonblocking
	// variants ignore it.
	Wait *backoff.Strategy
	// Handoff toggles the direct-handoff rendezvous fast path of the
	// Chan facades (the zero value keeps the default: enabled). The
	// nonblocking variants ignore it.
	Handoff ringcore.HandoffMode
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 1 << 16
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 256
	}
	return c
}

// Builder constructs a queue implementation.
type Builder func(Config) (queueapi.Queue, error)

// coreOptions merges cfg.Mode into a private copy of cfg.Core, so
// builders never write through the caller's pointer.
func coreOptions(cfg Config) *ringcore.Options {
	var o ringcore.Options
	if cfg.Core != nil {
		o = *cfg.Core
	}
	o.Mode = cfg.Mode
	if cfg.Metrics != nil {
		o.Metrics = cfg.Metrics
	}
	if cfg.Wait != nil {
		o.Wait = cfg.Wait
	}
	return &o
}

// registry maps figure names to builders. The ring-based variants all
// route through newCoreBuilder; adding a composition is one entry.
var registry = map[string]Builder{
	"wCQ": newCoreBuilder("wCQ", func(cfg Config) (ringcore.Core[uint64], error) {
		return ringcore.New[uint64](ringcore.KindWCQ, cfg.Capacity, cfg.MaxThreads, coreOptions(cfg))
	}),
	"SCQ": newCoreBuilder("SCQ", func(cfg Config) (ringcore.Core[uint64], error) {
		return ringcore.New[uint64](ringcore.KindSCQ, cfg.Capacity, cfg.MaxThreads, coreOptions(cfg))
	}),
	"Sharded":          newCoreBuilder("Sharded", buildSharded(false)),
	"ShardedUnbounded": newCoreBuilder("ShardedUnbounded", buildSharded(true)),
	"LSCQ":             newCoreBuilder("LSCQ", buildUnbounded(ringcore.KindSCQ)),
	"UWCQ":             newCoreBuilder("UWCQ", buildUnbounded(ringcore.KindWCQ)),
	"LCRQ":             newLCRQ,
	"YMC":              newYMC,
	"CRTurn":           newCRTurn,
	"CCQueue":          newCCQueue,
	"MSQueue":          newMSQueue,
	"FAA":              newFAA,
	"Chan":             newChanBuilder("Chan", wfqueue.BackendWCQ),
	"ChanSCQ":          newChanBuilder("ChanSCQ", wfqueue.BackendSCQ),
	"ChanSharded":      newChanBuilder("ChanSharded", wfqueue.BackendSharded),
	"ChanUnbounded":    newChanBuilder("ChanUnbounded", wfqueue.BackendUnbounded),
	"ChanShardedUnbounded": newChanBuilder("ChanShardedUnbounded",
		wfqueue.BackendShardedUnbounded),
}

// buildSharded returns the core build function for the sharded
// compositions: bounded ring shards, or unbounded linked-ring shards
// (per-shard growth, Cap 0). cfg.Ring picks the shard kind.
func buildSharded(unboundedShards bool) func(Config) (ringcore.Core[uint64], error) {
	return func(cfg Config) (ringcore.Core[uint64], error) {
		q, err := sharded.New[uint64](cfg.Capacity, cfg.MaxThreads, &sharded.Options{
			Shards:    cfg.Shards,
			Kind:      cfg.Ring,
			Unbounded: unboundedShards,
			Core:      coreOptions(cfg),
		})
		if err != nil {
			return nil, err
		}
		return q.Core(), nil
	}
}

// buildUnbounded returns the core build function for the unbounded
// linked-ring queues of Appendix A. cfg.Capacity is the per-ring
// capacity, not a bound.
func buildUnbounded(kind ringcore.Kind) func(Config) (ringcore.Core[uint64], error) {
	return func(cfg Config) (ringcore.Core[uint64], error) {
		q, err := unbounded.New[uint64](kind, cfg.Capacity, cfg.MaxThreads, coreOptions(cfg))
		if err != nil {
			return nil, err
		}
		return q.Core(), nil
	}
}

// Names returns the registered queue names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New builds the named queue.
func New(name string, cfg Config) (queueapi.Queue, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("queues: unknown queue %q (have %v)", name, Names())
	}
	return b(cfg)
}

// RealQueues lists the names that are actual FIFO queues (excludes the
// FAA pseudo-queue), in the paper's figure order, followed by the
// post-paper compositions: the sharded queues, then the unbounded
// linked-ring queues of Appendix A (LSCQ, UWCQ).
func RealQueues() []string {
	return []string{"wCQ", "SCQ", "LCRQ", "YMC", "CRTurn", "CCQueue", "MSQueue",
		"Sharded", "ShardedUnbounded", "LSCQ", "UWCQ"}
}

// BlockingQueues lists the registered blocking (Chan) facades — the
// queues whose handles implement queueapi.Waitable and that implement
// queueapi.Closer, so blocking harnesses can close and drain them.
func BlockingQueues() []string {
	return []string{"Chan", "ChanSCQ", "ChanSharded", "ChanShardedUnbounded", "ChanUnbounded"}
}

// UnboundedQueues lists the queues with no capacity bound built from
// linked bounded rings — the figure u1 line-up, whose Footprint is a
// live signal rather than a constant.
func UnboundedQueues() []string {
	return []string{"LSCQ", "UWCQ", "ShardedUnbounded", "ChanUnbounded", "ChanShardedUnbounded"}
}

// --- The generic ringcore adapter ---

// coreQueue adapts any ringcore.Core to queueapi: both ring cores and
// every composition over them (sharded, unbounded, sharded-unbounded)
// are served by this one type. Handles come straight from Acquire —
// a ringcore.Handle already satisfies queueapi.Handle and the native
// queueapi.Batcher structurally.
type coreQueue struct {
	name string
	core ringcore.Core[uint64]
}

// newCoreBuilder adapts a ringcore build function to the registry's
// Builder shape.
func newCoreBuilder(name string, build func(Config) (ringcore.Core[uint64], error)) Builder {
	return func(cfg Config) (queueapi.Queue, error) {
		core, err := build(cfg.withDefaults())
		if err != nil {
			return nil, err
		}
		return &coreQueue{name: name, core: core}, nil
	}
}

func (w *coreQueue) Handle() (queueapi.Handle, error) {
	h, err := w.core.Acquire()
	if err != nil {
		return nil, err
	}
	return h, nil
}
func (w *coreQueue) Cap() uint64       { return w.core.Cap() }
func (w *coreQueue) Footprint() uint64 { return w.core.Footprint() }
func (w *coreQueue) Name() string      { return w.name }

// Stats satisfies queueapi.Statser through the ringcore Statser
// contract every ring-based core implements; cores built without a
// sink report the zero snapshot.
func (w *coreQueue) Stats() metrics.Snapshot {
	if s, ok := w.core.(ringcore.Statser); ok {
		return s.Stats()
	}
	return metrics.Snapshot{}
}

// Rings forwards the live linked-ring population of the unbounded
// cores (0 for bounded cores, which have exactly their one ring), so
// observability consumers can gauge growth without knowing the kind.
func (w *coreQueue) Rings() int {
	if r, ok := w.core.(interface{ Rings() int }); ok {
		return r.Rings()
	}
	return 0
}

// --- LCRQ ---

type lcrqQueue struct{ q *lcrq.Queue }
type lcrqHandle struct{ q *lcrq.Queue }

// newLCRQ builds the Morrison & Afek queue. It is excluded from the
// emulated-F&A (PowerPC) figures, as in the paper; construction under
// EmulatedFAA fails so harnesses skip it explicitly.
func newLCRQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode == atomicx.EmulatedFAA {
		return nil, fmt.Errorf("lcrq: not available without CAS2 (the paper omits it on PowerPC)")
	}
	return &lcrqQueue{q: lcrq.New(cfg.LCRQOrder)}, nil
}

func (w *lcrqQueue) Handle() (queueapi.Handle, error) { return &lcrqHandle{q: w.q}, nil }
func (w *lcrqQueue) Cap() uint64                      { return 0 }
func (w *lcrqQueue) Footprint() uint64 {
	return uint64(w.q.RingsAllocated()) * w.q.FootprintPerRing()
}
func (w *lcrqQueue) Name() string { return "LCRQ" }

func (h *lcrqHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *lcrqHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- YMC ---

type ymcQueue struct{ q *ymc.Queue }
type ymcHandle struct{ h *ymc.Handle }

// newYMC builds the Yang & Mellor-Crummey baseline.
func newYMC(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &ymcQueue{q: ymc.New(cfg.MaxThreads)}, nil
}

func (w *ymcQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &ymcHandle{h: h}, nil
}
func (w *ymcQueue) Cap() uint64 { return 0 }
func (w *ymcQueue) Footprint() uint64 {
	return uint64(w.q.SegsAllocated()) * (1 << ymc.SegOrder) * 24
}
func (w *ymcQueue) Name() string { return "YMC" }

func (h *ymcHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *ymcHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- CRTurn ---

type crturnQueue struct{ q *crturn.Queue }
type crturnHandle struct{ h *crturn.Handle }

// newCRTurn builds the Ramalhete & Correia wait-free baseline.
func newCRTurn(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &crturnQueue{q: crturn.New(cfg.MaxThreads)}, nil
}

func (w *crturnQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &crturnHandle{h: h}, nil
}
func (w *crturnQueue) Cap() uint64       { return 0 }
func (w *crturnQueue) Footprint() uint64 { return 0 }
func (w *crturnQueue) Name() string      { return "CRTurn" }

func (h *crturnHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *crturnHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- CCQueue ---

type ccqQueue struct{ q *ccq.Queue }
type ccqHandle struct{ h *ccq.Handle }

// newCCQueue builds the flat-combining baseline.
func newCCQueue(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &ccqQueue{q: ccq.New(cfg.MaxThreads)}, nil
}

func (w *ccqQueue) Handle() (queueapi.Handle, error) {
	h, ok := w.q.Register()
	if !ok {
		return nil, fmt.Errorf("ccq: thread census exhausted")
	}
	return &ccqHandle{h: h}, nil
}
func (w *ccqQueue) Cap() uint64       { return 0 }
func (w *ccqQueue) Footprint() uint64 { return 0 }
func (w *ccqQueue) Name() string      { return "CCQueue" }

func (h *ccqHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *ccqHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- MSQueue ---

type msqQueue struct{ q *msq.Queue }
type msqHandle struct{ q *msq.Queue }

// newMSQueue builds the Michael & Scott baseline.
func newMSQueue(cfg Config) (queueapi.Queue, error) {
	return &msqQueue{q: msq.New()}, nil
}

func (w *msqQueue) Handle() (queueapi.Handle, error) { return &msqHandle{q: w.q}, nil }
func (w *msqQueue) Cap() uint64                      { return 0 }
func (w *msqQueue) Footprint() uint64                { return 0 }
func (w *msqQueue) Name() string                     { return "MSQueue" }

func (h *msqHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *msqHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- FAA pseudo-queue ---

type faaQueue struct{ q *faa.Queue }
type faaHandle struct{ q *faa.Queue }

// newFAA builds the F&A throughput ceiling. NOT a real queue; never
// feed it to the correctness checker.
func newFAA(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &faaQueue{q: faa.New(cfg.Mode)}, nil
}

func (w *faaQueue) Handle() (queueapi.Handle, error) { return &faaHandle{q: w.q}, nil }
func (w *faaQueue) Cap() uint64                      { return 0 }
func (w *faaQueue) Footprint() uint64                { return 0 }
func (w *faaQueue) Name() string                     { return "FAA" }

func (h *faaHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *faaHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- Blocking Chan facades ---

// chanQueue adapts the public wfqueue.Chan facade to queueapi. Its
// handles keep the nonblocking Queue/Handle contract (Enqueue/Dequeue
// map to TrySend/TryRecv) and add the queueapi.Waitable blocking
// surface; the queue side adds queueapi.Closer. wfqueue.ErrClosed
// aliases queueapi.ErrClosed, so blocking harnesses can match errors
// across the boundary.
type chanQueue struct {
	c    *wfqueue.Chan[uint64]
	name string
}

type chanHandle struct{ h *wfqueue.ChanHandle[uint64] }

// ringKindOption translates cfg.Ring to the public WithRingKind
// option.
func ringKindOption(cfg Config) wfqueue.Option {
	if cfg.Ring == ringcore.KindSCQ {
		return wfqueue.WithRingKind(wfqueue.RingSCQ)
	}
	return wfqueue.WithRingKind(wfqueue.RingWCQ)
}

// newChanBuilder adapts NewChan over the given backend to the
// registry's Builder shape, mapping Config onto the public options.
func newChanBuilder(name string, backend wfqueue.Backend) Builder {
	return func(cfg Config) (queueapi.Queue, error) {
		cfg = cfg.withDefaults()
		opts := []wfqueue.Option{wfqueue.WithBackend(backend), ringKindOption(cfg)}
		if cfg.Mode == atomicx.EmulatedFAA {
			opts = append(opts, wfqueue.WithEmulatedFAA())
		}
		if cfg.Shards > 0 {
			opts = append(opts, wfqueue.WithShards(cfg.Shards))
		}
		if cfg.Metrics != nil {
			opts = append(opts, wfqueue.WithMetrics(cfg.Metrics))
		}
		if wait := cfg.Wait; wait != nil {
			opts = append(opts, wfqueue.WithWaitStrategy(wait))
		} else if o := cfg.Core; o != nil && o.Wait != nil {
			opts = append(opts, wfqueue.WithWaitStrategy(o.Wait))
		}
		handoff := cfg.Handoff
		if handoff == ringcore.HandoffDefault {
			if o := cfg.Core; o != nil {
				handoff = o.Handoff
			}
		}
		if handoff != ringcore.HandoffDefault {
			opts = append(opts, wfqueue.WithHandoff(handoff == ringcore.HandoffOn))
		}
		if o := cfg.Core; o != nil {
			opts = append(opts,
				wfqueue.WithPatience(o.EnqPatience, o.DeqPatience),
				wfqueue.WithHelpDelay(o.HelpDelay))
		}
		c, err := wfqueue.NewChan[uint64](cfg.Capacity, cfg.MaxThreads, opts...)
		if err != nil {
			return nil, err
		}
		return &chanQueue{c: c, name: name}, nil
	}
}

func (w *chanQueue) Handle() (queueapi.Handle, error) {
	h, err := w.c.Handle()
	if err != nil {
		return nil, err
	}
	return &chanHandle{h: h}, nil
}
func (w *chanQueue) Cap() uint64       { return w.c.Cap() }
func (w *chanQueue) Footprint() uint64 { return w.c.Footprint() }
func (w *chanQueue) Name() string      { return w.name }
func (w *chanQueue) Close() error      { return w.c.Close() }

// Stats satisfies queueapi.Statser: the Chan's sink aggregates the
// backing core plus the park points' park/wake/parked-duration data.
func (w *chanQueue) Stats() metrics.Snapshot { return w.c.Stats() }

// Enqueue and Dequeue keep the nonblocking contract (a closed Chan
// reads as full and, once drained, empty).
func (h *chanHandle) Enqueue(v uint64) bool {
	ok, _ := h.h.TrySend(v)
	return ok
}
func (h *chanHandle) Dequeue() (uint64, bool) {
	v, ok, _ := h.h.TryRecv()
	return v, ok
}

// EnqueueBatch and DequeueBatch keep the nonblocking queueapi.Batcher
// contract over the native batch reservation (TrySendMany/TryRecvMany).
func (h *chanHandle) EnqueueBatch(vs []uint64) int {
	n, _ := h.h.TrySendMany(vs)
	return n
}
func (h *chanHandle) DequeueBatch(out []uint64) int {
	n, _ := h.h.TryRecvMany(out)
	return n
}

// The queueapi.Waitable blocking surface.
func (h *chanHandle) Send(v uint64) error                         { return h.h.Send(v) }
func (h *chanHandle) SendCtx(ctx context.Context, v uint64) error { return h.h.SendCtx(ctx, v) }
func (h *chanHandle) Recv() (uint64, error)                       { return h.h.Recv() }
func (h *chanHandle) RecvCtx(ctx context.Context) (uint64, error) { return h.h.RecvCtx(ctx) }

// The queueapi.BatchWaitable blocking batch surface.
func (h *chanHandle) SendMany(vs []uint64) (int, error)  { return h.h.SendMany(vs) }
func (h *chanHandle) RecvMany(out []uint64) (int, error) { return h.h.RecvMany(out) }
