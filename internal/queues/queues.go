// Package queues adapts every queue implementation in this repository
// to the common queueapi interface and provides a registry keyed by
// the names used in the paper's figures (wCQ, SCQ, LCRQ, YMC, CRTurn,
// CCQueue, MSQueue, FAA) plus the post-paper compositions (Sharded,
// the unbounded LSCQ/UWCQ, and the blocking Chan facades).
package queues

import (
	"context"
	"fmt"
	"sort"

	wfqueue "repro"
	"repro/internal/atomicx"
	"repro/internal/ccq"
	"repro/internal/crturn"
	"repro/internal/faa"
	"repro/internal/lcrq"
	"repro/internal/msq"
	"repro/internal/queueapi"
	"repro/internal/scq"
	"repro/internal/sharded"
	"repro/internal/unbounded"
	"repro/internal/wcq"
	"repro/internal/ymc"
)

// Config parameterizes queue construction.
type Config struct {
	// Capacity is the bounded-ring capacity (wCQ, SCQ). The paper's
	// benchmarks use 2^16.
	Capacity uint64
	// MaxThreads bounds the number of Handle() calls for queues with
	// per-thread state.
	MaxThreads int
	// Mode selects native or emulated F&A (the Fig. 12 configuration).
	Mode atomicx.Mode
	// LCRQOrder overrides the CRQ ring order (default 12, as in the
	// paper).
	LCRQOrder uint
	// Shards is the sub-queue count for the Sharded composition
	// (default sharded.DefaultShards).
	Shards int
	// WCQ tuning; nil selects the paper's defaults.
	WCQOptions *wcq.Options
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 1 << 16
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 256
	}
	return c
}

// Builder constructs a queue implementation.
type Builder func(Config) (queueapi.Queue, error)

// wcqOptions merges cfg.Mode into a private copy of cfg.WCQOptions,
// so builders never write through the caller's pointer.
func wcqOptions(cfg Config) *wcq.Options {
	var o wcq.Options
	if cfg.WCQOptions != nil {
		o = *cfg.WCQOptions
	}
	o.Mode = cfg.Mode
	return &o
}

var registry = map[string]Builder{
	"wCQ":           NewWCQ,
	"SCQ":           NewSCQ,
	"LCRQ":          NewLCRQ,
	"YMC":           NewYMC,
	"CRTurn":        NewCRTurn,
	"CCQueue":       NewCCQueue,
	"MSQueue":       NewMSQueue,
	"FAA":           NewFAA,
	"Sharded":       NewShardedWCQ,
	"LSCQ":          NewLSCQ,
	"UWCQ":          NewUWCQ,
	"Chan":          newChanBuilder("Chan", wfqueue.BackendWCQ),
	"ChanSCQ":       newChanBuilder("ChanSCQ", wfqueue.BackendSCQ),
	"ChanSharded":   newChanBuilder("ChanSharded", wfqueue.BackendSharded),
	"ChanUnbounded": newChanBuilder("ChanUnbounded", wfqueue.BackendUnbounded),
}

// Names returns the registered queue names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New builds the named queue.
func New(name string, cfg Config) (queueapi.Queue, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("queues: unknown queue %q (have %v)", name, Names())
	}
	return b(cfg)
}

// RealQueues lists the names that are actual FIFO queues (excludes the
// FAA pseudo-queue), in the paper's figure order, followed by the
// post-paper compositions: Sharded, then the unbounded linked-ring
// queues of Appendix A (LSCQ, UWCQ).
func RealQueues() []string {
	return []string{"wCQ", "SCQ", "LCRQ", "YMC", "CRTurn", "CCQueue", "MSQueue", "Sharded", "LSCQ", "UWCQ"}
}

// BlockingQueues lists the registered blocking (Chan) facades — the
// queues whose handles implement queueapi.Waitable and that implement
// queueapi.Closer, so blocking harnesses can close and drain them.
func BlockingQueues() []string {
	return []string{"Chan", "ChanSCQ", "ChanSharded", "ChanUnbounded"}
}

// UnboundedQueues lists the queues with no capacity bound built from
// linked bounded rings — the figure u1 line-up, whose Footprint is a
// live signal rather than a constant.
func UnboundedQueues() []string {
	return []string{"LSCQ", "UWCQ", "ChanUnbounded"}
}

// --- wCQ ---

type wcqQueue struct {
	q   *wcq.Queue[uint64]
	cfg Config
}

type wcqHandle struct{ h *wcq.QueueHandle[uint64] }

// NewWCQ builds the paper's contribution: the wait-free circular queue.
func NewWCQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	opts := wcqOptions(cfg)
	q, err := wcq.NewQueue[uint64](cfg.Capacity, cfg.MaxThreads, opts)
	if err != nil {
		return nil, err
	}
	return &wcqQueue{q: q, cfg: cfg}, nil
}

func (w *wcqQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &wcqHandle{h: h}, nil
}
func (w *wcqQueue) Cap() uint64       { return w.q.Cap() }
func (w *wcqQueue) Footprint() uint64 { return w.q.Footprint() }
func (w *wcqQueue) Name() string      { return "wCQ" }

func (h *wcqHandle) Enqueue(v uint64) bool   { return h.h.Enqueue(v) }
func (h *wcqHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// EnqueueBatch/DequeueBatch expose wCQ's native queueapi.Batcher: one
// reservation F&A per ring per fast-path batch.
func (h *wcqHandle) EnqueueBatch(vs []uint64) int  { return h.h.EnqueueBatch(vs) }
func (h *wcqHandle) DequeueBatch(out []uint64) int { return h.h.DequeueBatch(out) }

// --- SCQ ---

type scqQueue struct{ q *scq.Queue[uint64] }
type scqHandle struct{ q *scq.Queue[uint64] }

// NewSCQ builds the lock-free substrate queue.
func NewSCQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	q, err := scq.NewQueue[uint64](cfg.Capacity, cfg.Mode)
	if err != nil {
		return nil, err
	}
	return &scqQueue{q: q}, nil
}

func (w *scqQueue) Handle() (queueapi.Handle, error) { return &scqHandle{q: w.q}, nil }
func (w *scqQueue) Cap() uint64                      { return w.q.Cap() }
func (w *scqQueue) Footprint() uint64                { return w.q.Footprint() }
func (w *scqQueue) Name() string                     { return "SCQ" }

func (h *scqHandle) Enqueue(v uint64) bool   { return h.q.Enqueue(v) }
func (h *scqHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// EnqueueBatch/DequeueBatch expose SCQ's native queueapi.Batcher.
func (h *scqHandle) EnqueueBatch(vs []uint64) int  { return h.q.EnqueueBatch(vs) }
func (h *scqHandle) DequeueBatch(out []uint64) int { return h.q.DequeueBatch(out) }

// --- LCRQ ---

type lcrqQueue struct{ q *lcrq.Queue }
type lcrqHandle struct{ q *lcrq.Queue }

// NewLCRQ builds the Morrison & Afek queue. It is excluded from the
// emulated-F&A (PowerPC) figures, as in the paper; construction under
// EmulatedFAA fails so harnesses skip it explicitly.
func NewLCRQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode == atomicx.EmulatedFAA {
		return nil, fmt.Errorf("lcrq: not available without CAS2 (the paper omits it on PowerPC)")
	}
	return &lcrqQueue{q: lcrq.New(cfg.LCRQOrder)}, nil
}

func (w *lcrqQueue) Handle() (queueapi.Handle, error) { return &lcrqHandle{q: w.q}, nil }
func (w *lcrqQueue) Cap() uint64                      { return 0 }
func (w *lcrqQueue) Footprint() uint64 {
	return uint64(w.q.RingsAllocated()) * w.q.FootprintPerRing()
}
func (w *lcrqQueue) Name() string { return "LCRQ" }

func (h *lcrqHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *lcrqHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- YMC ---

type ymcQueue struct{ q *ymc.Queue }
type ymcHandle struct{ h *ymc.Handle }

// NewYMC builds the Yang & Mellor-Crummey baseline.
func NewYMC(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &ymcQueue{q: ymc.New(cfg.MaxThreads)}, nil
}

func (w *ymcQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &ymcHandle{h: h}, nil
}
func (w *ymcQueue) Cap() uint64 { return 0 }
func (w *ymcQueue) Footprint() uint64 {
	return uint64(w.q.SegsAllocated()) * (1 << ymc.SegOrder) * 24
}
func (w *ymcQueue) Name() string { return "YMC" }

func (h *ymcHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *ymcHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- CRTurn ---

type crturnQueue struct{ q *crturn.Queue }
type crturnHandle struct{ h *crturn.Handle }

// NewCRTurn builds the Ramalhete & Correia wait-free baseline.
func NewCRTurn(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &crturnQueue{q: crturn.New(cfg.MaxThreads)}, nil
}

func (w *crturnQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &crturnHandle{h: h}, nil
}
func (w *crturnQueue) Cap() uint64       { return 0 }
func (w *crturnQueue) Footprint() uint64 { return 0 }
func (w *crturnQueue) Name() string      { return "CRTurn" }

func (h *crturnHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *crturnHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- CCQueue ---

type ccqQueue struct{ q *ccq.Queue }
type ccqHandle struct{ h *ccq.Handle }

// NewCCQueue builds the flat-combining baseline.
func NewCCQueue(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &ccqQueue{q: ccq.New(cfg.MaxThreads)}, nil
}

func (w *ccqQueue) Handle() (queueapi.Handle, error) {
	h, ok := w.q.Register()
	if !ok {
		return nil, fmt.Errorf("ccq: thread census exhausted")
	}
	return &ccqHandle{h: h}, nil
}
func (w *ccqQueue) Cap() uint64       { return 0 }
func (w *ccqQueue) Footprint() uint64 { return 0 }
func (w *ccqQueue) Name() string      { return "CCQueue" }

func (h *ccqHandle) Enqueue(v uint64) bool   { h.h.Enqueue(v); return true }
func (h *ccqHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// --- MSQueue ---

type msqQueue struct{ q *msq.Queue }
type msqHandle struct{ q *msq.Queue }

// NewMSQueue builds the Michael & Scott baseline.
func NewMSQueue(cfg Config) (queueapi.Queue, error) {
	return &msqQueue{q: msq.New()}, nil
}

func (w *msqQueue) Handle() (queueapi.Handle, error) { return &msqHandle{q: w.q}, nil }
func (w *msqQueue) Cap() uint64                      { return 0 }
func (w *msqQueue) Footprint() uint64                { return 0 }
func (w *msqQueue) Name() string                     { return "MSQueue" }

func (h *msqHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *msqHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- FAA pseudo-queue ---

type faaQueue struct{ q *faa.Queue }
type faaHandle struct{ q *faa.Queue }

// NewFAA builds the F&A throughput ceiling. NOT a real queue; never
// feed it to the correctness checker.
func NewFAA(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	return &faaQueue{q: faa.New(cfg.Mode)}, nil
}

func (w *faaQueue) Handle() (queueapi.Handle, error) { return &faaHandle{q: w.q}, nil }
func (w *faaQueue) Cap() uint64                      { return 0 }
func (w *faaQueue) Footprint() uint64                { return 0 }
func (w *faaQueue) Name() string                     { return "FAA" }

func (h *faaHandle) Enqueue(v uint64) bool   { h.q.Enqueue(v); return true }
func (h *faaHandle) Dequeue() (uint64, bool) { return h.q.Dequeue() }

// --- Sharded composition ---

type shardedQueue struct{ q *sharded.Queue[uint64] }
type shardedHandle struct{ h *sharded.Handle[uint64] }

// NewShardedWCQ builds the sharded composition over wCQ sub-queues:
// cfg.Shards independent rings with per-handle enqueue affinity and
// work-stealing dequeue. cfg.Capacity is the TOTAL capacity, split
// evenly across shards.
func NewShardedWCQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	q, err := sharded.New[uint64](cfg.Capacity, cfg.MaxThreads, &sharded.Options{
		Shards: cfg.Shards,
		WCQ:    wcqOptions(cfg),
	})
	if err != nil {
		return nil, err
	}
	return &shardedQueue{q: q}, nil
}

func (w *shardedQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Register()
	if err != nil {
		return nil, err
	}
	return &shardedHandle{h: h}, nil
}
func (w *shardedQueue) Cap() uint64       { return w.q.Cap() }
func (w *shardedQueue) Footprint() uint64 { return w.q.Footprint() }
func (w *shardedQueue) Name() string      { return "Sharded" }

func (h *shardedHandle) Enqueue(v uint64) bool   { return h.h.Enqueue(v) }
func (h *shardedHandle) Dequeue() (uint64, bool) { return h.h.Dequeue() }

// EnqueueBatch/DequeueBatch expose the native queueapi.Batcher: the
// sharded queue pays shard selection once per batch instead of once
// per value.
func (h *shardedHandle) EnqueueBatch(vs []uint64) int  { return h.h.EnqueueBatch(vs) }
func (h *shardedHandle) DequeueBatch(out []uint64) int { return h.h.DequeueBatch(out) }

// --- Unbounded linked-ring queues (Appendix A) ---

// unboundedQueue adapts the unbounded construction to queueapi. Cap
// is 0 (unbounded) and Footprint is live: it tracks the linked rings
// plus the recycling pool, so memory figures see bursts grow and
// drain.
type unboundedQueue struct {
	q    *unbounded.Queue[uint64]
	name string
}

type unboundedHandle struct{ h *unbounded.Handle[uint64] }

// NewLSCQ builds the unbounded queue of lock-free SCQ rings (the
// paper's LSCQ). cfg.Capacity is the per-ring capacity, not a bound.
func NewLSCQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	q, err := unbounded.NewLSCQ[uint64](cfg.Capacity, cfg.Mode)
	if err != nil {
		return nil, err
	}
	return &unboundedQueue{q: q, name: "LSCQ"}, nil
}

// NewUWCQ builds the unbounded queue of wait-free wCQ rings (Appendix
// A). cfg.Capacity is the per-ring capacity; cfg.MaxThreads bounds
// the handle census.
func NewUWCQ(cfg Config) (queueapi.Queue, error) {
	cfg = cfg.withDefaults()
	q, err := unbounded.NewUWCQ[uint64](cfg.Capacity, cfg.MaxThreads, wcqOptions(cfg))
	if err != nil {
		return nil, err
	}
	return &unboundedQueue{q: q, name: "UWCQ"}, nil
}

func (w *unboundedQueue) Handle() (queueapi.Handle, error) {
	h, err := w.q.Handle()
	if err != nil {
		return nil, err
	}
	return &unboundedHandle{h: h}, nil
}
func (w *unboundedQueue) Cap() uint64       { return 0 }
func (w *unboundedQueue) Footprint() uint64 { return w.q.Footprint() }
func (w *unboundedQueue) Name() string      { return w.name }

// Enqueue always succeeds (the queue grows). The internal error is
// reserved for broken invariants the constructors rule out; panicking
// surfaces such a break loudly instead of reading as a "full" queue
// that checker/harness drivers would spin on forever.
func (h *unboundedHandle) Enqueue(v uint64) bool {
	if err := h.h.Enqueue(v); err != nil {
		panic("queues: unbounded enqueue invariant broken: " + err.Error())
	}
	return true
}

// Dequeue reports empty only when the queue is genuinely empty; an
// internal error panics for the same reason Enqueue's does.
func (h *unboundedHandle) Dequeue() (uint64, bool) {
	v, ok, err := h.h.Dequeue()
	if err != nil {
		panic("queues: unbounded dequeue invariant broken: " + err.Error())
	}
	return v, ok
}

// EnqueueBatch exposes the unbounded native batch: the whole batch is
// always absorbed (rings roll over), so it returns len(vs).
func (h *unboundedHandle) EnqueueBatch(vs []uint64) int {
	if err := h.h.EnqueueBatch(vs); err != nil {
		panic("queues: unbounded batch enqueue invariant broken: " + err.Error())
	}
	return len(vs)
}

// DequeueBatch drains across ring boundaries in FIFO order.
func (h *unboundedHandle) DequeueBatch(out []uint64) int {
	n, err := h.h.DequeueBatch(out)
	if err != nil {
		panic("queues: unbounded batch dequeue invariant broken: " + err.Error())
	}
	return n
}

// --- Blocking Chan facades ---

// chanQueue adapts the public wfqueue.Chan facade to queueapi. Its
// handles keep the nonblocking Queue/Handle contract (Enqueue/Dequeue
// map to TrySend/TryRecv) and add the queueapi.Waitable blocking
// surface; the queue side adds queueapi.Closer. wfqueue.ErrClosed
// aliases queueapi.ErrClosed, so blocking harnesses can match errors
// across the boundary.
type chanQueue struct {
	c    *wfqueue.Chan[uint64]
	name string
}

type chanHandle struct{ h *wfqueue.ChanHandle[uint64] }

// newChanBuilder adapts NewChan over the given backend to the
// registry's Builder shape, mapping Config onto the public options.
func newChanBuilder(name string, backend wfqueue.Backend) Builder {
	return func(cfg Config) (queueapi.Queue, error) {
		cfg = cfg.withDefaults()
		opts := []wfqueue.Option{wfqueue.WithBackend(backend)}
		if cfg.Mode == atomicx.EmulatedFAA {
			opts = append(opts, wfqueue.WithEmulatedFAA())
		}
		if cfg.Shards > 0 {
			opts = append(opts, wfqueue.WithShards(cfg.Shards))
		}
		if o := cfg.WCQOptions; o != nil {
			opts = append(opts,
				wfqueue.WithPatience(o.EnqPatience, o.DeqPatience),
				wfqueue.WithHelpDelay(o.HelpDelay))
		}
		c, err := wfqueue.NewChan[uint64](cfg.Capacity, cfg.MaxThreads, opts...)
		if err != nil {
			return nil, err
		}
		return &chanQueue{c: c, name: name}, nil
	}
}

func (w *chanQueue) Handle() (queueapi.Handle, error) {
	h, err := w.c.Handle()
	if err != nil {
		return nil, err
	}
	return &chanHandle{h: h}, nil
}
func (w *chanQueue) Cap() uint64       { return w.c.Cap() }
func (w *chanQueue) Footprint() uint64 { return w.c.Footprint() }
func (w *chanQueue) Name() string      { return w.name }
func (w *chanQueue) Close() error      { return w.c.Close() }

// Enqueue/Dequeue keep the nonblocking contract (a closed Chan reads
// as full and, once drained, empty).
func (h *chanHandle) Enqueue(v uint64) bool {
	ok, _ := h.h.TrySend(v)
	return ok
}
func (h *chanHandle) Dequeue() (uint64, bool) {
	v, ok, _ := h.h.TryRecv()
	return v, ok
}

// EnqueueBatch/DequeueBatch keep the nonblocking queueapi.Batcher
// contract over the native batch reservation (TrySendMany/TryRecvMany).
func (h *chanHandle) EnqueueBatch(vs []uint64) int {
	n, _ := h.h.TrySendMany(vs)
	return n
}
func (h *chanHandle) DequeueBatch(out []uint64) int {
	n, _ := h.h.TryRecvMany(out)
	return n
}

// The queueapi.Waitable blocking surface.
func (h *chanHandle) Send(v uint64) error                         { return h.h.Send(v) }
func (h *chanHandle) SendCtx(ctx context.Context, v uint64) error { return h.h.SendCtx(ctx, v) }
func (h *chanHandle) Recv() (uint64, error)                       { return h.h.Recv() }
func (h *chanHandle) RecvCtx(ctx context.Context) (uint64, error) { return h.h.RecvCtx(ctx) }

// The queueapi.BatchWaitable blocking batch surface.
func (h *chanHandle) SendMany(vs []uint64) (int, error)  { return h.h.SendMany(vs) }
func (h *chanHandle) RecvMany(out []uint64) (int, error) { return h.h.RecvMany(out) }
