// Cross-implementation conformance suite: every real queue must pass
// the same MPMC correctness checks (no loss, no duplication,
// per-producer FIFO, strict SPSC order, full/empty drains).
package queues

import (
	"testing"

	"repro/internal/atomicx"
	"repro/internal/checker"
	"repro/internal/queueapi"
	"repro/internal/ringcore"
)

func testCfg() Config {
	return Config{Capacity: 256, MaxThreads: 32}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 17 {
		t.Fatalf("registry has %d entries: %v", len(Names()), Names())
	}
	if _, err := New("nope", testCfg()); err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, n := range Names() {
		q, err := New(n, testCfg())
		if err != nil {
			t.Fatalf("building %s: %v", n, err)
		}
		if q.Name() != n {
			t.Fatalf("built %q, asked for %q", q.Name(), n)
		}
	}
}

// TestBlockingConformance runs the Chan facades through the checker
// suite via the queueapi.Waitable adapter: the nonblocking checker
// (TrySend/TryRecv keep the Queue contract) and the blocking checker
// (parked Send/Recv with a graceful Close and full drain).
func TestBlockingConformance(t *testing.T) {
	for _, name := range BlockingQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := q.(queueapi.Closer); !ok {
				t.Fatalf("%s does not implement queueapi.Closer", name)
			}
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := h.(queueapi.Waitable); !ok {
				t.Fatalf("%s handle does not implement queueapi.Waitable", name)
			}
			err = checker.Run(q, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 256,
			})
			if err != nil {
				t.Fatalf("nonblocking checker: %v", err)
			}
			q2, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			err = checker.RunBlocking(q2, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 256,
			})
			if err != nil {
				t.Fatalf("blocking checker: %v", err)
			}
		})
	}
}

func TestBlockingSlowpathConformance(t *testing.T) {
	// The wCQ-backed Chan with patience 1 + eager helping: parked
	// blocking ops layered over the helped slow paths.
	cfg := testCfg()
	cfg.Core = &ringcore.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	q, err := New("Chan", cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = checker.RunBlocking(q, checker.Config{
		Producers: 2, Consumers: 2, PerProducer: 2000, Capacity: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnboundedConformance pins the unbounded line-up's registry
// contract: present in Names and RealQueues (LSCQ/UWCQ) or
// BlockingQueues (ChanUnbounded), Cap 0, never-full Enqueue, and a
// live Footprint that returns near rest after a burst drains.
func TestUnboundedConformance(t *testing.T) {
	real := map[string]bool{}
	for _, n := range RealQueues() {
		real[n] = true
	}
	blocking := map[string]bool{}
	for _, n := range BlockingQueues() {
		blocking[n] = true
	}
	for _, name := range UnboundedQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			if !real[name] && !blocking[name] {
				t.Fatalf("%s in neither RealQueues nor BlockingQueues", name)
			}
			cfg := testCfg()
			cfg.Capacity = 16 // per-ring: force turnover
			q, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if q.Cap() != 0 {
				t.Fatalf("Cap() = %d, want 0 (unbounded)", q.Cap())
			}
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			rest := q.Footprint()
			if rest == 0 {
				t.Fatal("zero footprint at rest (has at least one ring)")
			}
			for i := 0; i < 1000; i++ {
				if !h.Enqueue(uint64(i)) {
					t.Fatalf("unbounded queue reported full at %d", i)
				}
			}
			if q.Footprint() <= rest {
				t.Fatal("footprint did not grow across a buffered burst")
			}
			for i := 0; i < 1000; i++ {
				if v, ok := h.Dequeue(); !ok || v != uint64(i) {
					t.Fatalf("dequeue %d = (%d, %v)", i, v, ok)
				}
			}
			if got := q.Footprint(); got > 8*rest {
				t.Fatalf("retained %d B after drain (rest %d B): ring pool not bounding memory", got, rest)
			}
		})
	}
}

func TestLCRQUnavailableUnderEmulation(t *testing.T) {
	cfg := testCfg()
	cfg.Mode = atomicx.EmulatedFAA
	if _, err := New("LCRQ", cfg); err == nil {
		t.Fatal("LCRQ built under emulated F&A; the paper omits it on PowerPC")
	}
}

func TestSPSCOrder(t *testing.T) {
	for _, name := range RealQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if err := checker.RunSPSC(q, 30000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDrainCycles(t *testing.T) {
	for _, name := range RealQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if err := checker.RunDrain(q, 20000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMPMCExactlyOnce(t *testing.T) {
	for _, name := range RealQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			err = checker.Run(q, checker.Config{
				Producers: 4, Consumers: 4, PerProducer: 5000, Capacity: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMPMCEmulatedFAA(t *testing.T) {
	// The PowerPC configuration: every F&A is a CAS loop; LCRQ excluded.
	for _, name := range RealQueues() {
		if name == "LCRQ" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testCfg()
			cfg.Mode = atomicx.EmulatedFAA
			q, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = checker.Run(q, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMPMCAsymmetric(t *testing.T) {
	// Many producers, one consumer and vice versa stress different
	// contention corners (ring wrap vs. emptiness detection).
	shapes := []struct{ p, c int }{{6, 1}, {1, 6}}
	for _, name := range RealQueues() {
		for _, sh := range shapes {
			name, sh := name, sh
			t.Run(name, func(t *testing.T) {
				q, err := New(name, testCfg())
				if err != nil {
					t.Fatal(err)
				}
				err = checker.Run(q, checker.Config{
					Producers: sh.p, Consumers: sh.c, PerProducer: 3000, Capacity: 256,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestWCQTinyCapacityContention(t *testing.T) {
	// Tiny rings maximize wrap-around and slow-path traffic for the
	// bounded queues.
	for _, name := range []string{"wCQ", "SCQ"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testCfg()
			cfg.Capacity = 4
			q, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = checker.Run(q, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 4000, Capacity: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBoundedFullBehaviour(t *testing.T) {
	// Bounded queues must report full exactly at capacity.
	for _, name := range []string{"wCQ", "SCQ"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := testCfg()
			cfg.Capacity = 8
			q, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if !h.Enqueue(uint64(i)) {
					t.Fatalf("full at %d, capacity 8", i)
				}
			}
			if h.Enqueue(99) {
				t.Fatal("enqueue beyond capacity succeeded")
			}
			if q.Cap() != 8 {
				t.Fatalf("Cap() = %d", q.Cap())
			}
		})
	}
}

func TestFootprintSemantics(t *testing.T) {
	// wCQ, SCQ and the sharded compositions have footprints from
	// construction; LCRQ's grows with allocated rings.
	cfg := testCfg()
	for _, name := range []string{"wCQ", "SCQ", "Sharded", "ShardedUnbounded"} {
		q, _ := New(name, cfg)
		if q.Footprint() == 0 {
			t.Errorf("%s: zero footprint", name)
		}
	}
	q, _ := New("LCRQ", cfg)
	if q.Footprint() == 0 {
		t.Error("LCRQ: zero initial footprint (has one ring)")
	}
}

func TestMPMCBatched(t *testing.T) {
	// Batched conformance across the whole registry (minus the FAA
	// pseudo-queue, which is not a real FIFO): the queues with a native
	// queueapi.Batcher — wCQ, SCQ, Sharded, LSCQ, UWCQ and every Chan
	// facade — exercise the single-F&A reservation path, the baselines
	// the generic fallback. RunBatch also asserts the batch atomicity
	// and partial-success accounting contracts.
	names := append(append([]string{}, RealQueues()...), BlockingQueues()...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			err = checker.RunBatch(q, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 4000, Capacity: 256,
			}, 16)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNativeBatchers pins which registry handles expose the native
// queueapi.Batcher: every ring-based queue and facade in this
// repository, i.e. everything but the paper's external baselines.
func TestNativeBatchers(t *testing.T) {
	native := []string{"wCQ", "SCQ", "Sharded", "ShardedUnbounded", "LSCQ", "UWCQ",
		"Chan", "ChanSCQ", "ChanSharded", "ChanShardedUnbounded", "ChanUnbounded"}
	for _, name := range native {
		q, err := New(name, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Handle()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := h.(queueapi.Batcher); !ok {
			t.Errorf("%s handle does not implement queueapi.Batcher", name)
		}
	}
}

// TestBlockingBatchConformance drives every Chan facade through the
// blocking batch checker: parked SendMany/RecvMany, graceful Close,
// and the partial batch at close-drain — with every value delivered
// exactly once.
func TestBlockingBatchConformance(t *testing.T) {
	for _, name := range BlockingQueues() {
		name := name
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Handle()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := h.(queueapi.BatchWaitable); !ok {
				t.Fatalf("%s handle does not implement queueapi.BatchWaitable", name)
			}
			err = checker.RunBlockingBatch(q, checker.Config{
				Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 256,
			}, 16)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShardedConfig(t *testing.T) {
	// Capacity is split across shards; totals and shard counts must
	// line up, and indivisible capacities fail fast.
	cfg := testCfg()
	cfg.Shards = 8
	q, err := New("Sharded", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != cfg.Capacity {
		t.Fatalf("Cap() = %d, want total %d", q.Cap(), cfg.Capacity)
	}
	cfg.Shards = 3
	if _, err := New("Sharded", cfg); err == nil {
		t.Fatal("capacity 256 over 3 shards accepted")
	}
}

func TestShardedBatcherInterface(t *testing.T) {
	// The Sharded handle must expose the native batcher so harnesses
	// skip the one-at-a-time fallback.
	q, err := New("Sharded", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	b, ok := h.(queueapi.Batcher)
	if !ok {
		t.Fatal("Sharded handle does not implement queueapi.Batcher")
	}
	vs := []uint64{1, 2, 3, 4, 5}
	if n := b.EnqueueBatch(vs); n != len(vs) {
		t.Fatalf("EnqueueBatch = %d, want %d", n, len(vs))
	}
	out := make([]uint64, 8)
	if n := b.DequeueBatch(out); n != len(vs) {
		t.Fatalf("DequeueBatch = %d, want %d", n, len(vs))
	}
	// One handle's batch comes back in enqueue order (per-shard FIFO).
	for i, v := range out[:len(vs)] {
		if v != vs[i] {
			t.Fatalf("out[%d] = %d, want %d", i, v, vs[i])
		}
	}
}
