// Package msq implements the Michael & Scott lock-free FIFO queue
// (PODC '96 / JPDC '98), the classic CAS-based baseline in the wCQ
// paper's evaluation. It is unbounded, allocates a node per enqueue,
// and scales poorly under contention because Head/Tail updates are CAS
// loops — exactly the behaviour Figs. 10-12 attribute to it.
//
// The paper's C version uses hazard pointers for reclamation; the Go
// port relies on the garbage collector, which also removes the ABA
// hazard (nodes are never reused while reachable).
package msq

import (
	"sync/atomic"

	"repro/internal/pad"
)

type node struct {
	val  uint64
	next atomic.Pointer[node]
}

// Queue is an unbounded lock-free MPMC FIFO.
type Queue struct {
	_    pad.Line
	head atomic.Pointer[node]
	_    pad.Line
	tail atomic.Pointer[node]
	_    pad.Line
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	sentinel := &node{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v. It always succeeds (the queue is unbounded).
func (q *Queue) Enqueue(v uint64) {
	n := &node{val: v}
	for {
		t := q.tail.Load()
		next := t.next.Load()
		if t != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(t, next) // help a lagging enqueuer
			continue
		}
		if t.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(t, n)
			return
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty.
func (q *Queue) Dequeue() (v uint64, ok bool) {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		next := h.next.Load()
		if h != q.head.Load() {
			continue
		}
		if h == t {
			if next == nil {
				return 0, false
			}
			q.tail.CompareAndSwap(t, next)
			continue
		}
		v = next.val
		if q.head.CompareAndSwap(h, next) {
			return v, true
		}
	}
}
