package msq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for i := uint64(0); i < 50; i++ {
		q.Enqueue(i)
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("phantom value")
	}
}

func TestInterleaved(t *testing.T) {
	q := New()
	exp := uint64(0)
	next := uint64(0)
	for i := 0; i < 3000; i++ {
		q.Enqueue(next)
		next++
		if i%2 == 0 {
			v, ok := q.Dequeue()
			if !ok || v != exp {
				t.Fatalf("step %d: got (%d,%v), want %d", i, v, ok, exp)
			}
			exp++
		}
	}
	for exp < next {
		v, ok := q.Dequeue()
		if !ok || v != exp {
			t.Fatalf("drain: got (%d,%v), want %d", v, ok, exp)
		}
		exp++
	}
}

func TestConcurrentTailHelp(t *testing.T) {
	// Concurrent enqueuers must help lagging Tail updates; verified by
	// total count surviving.
	q := New()
	var wg sync.WaitGroup
	const g, per = 4, 5000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				q.Enqueue(uint64(i*per + j))
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, g*per)
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != g*per {
		t.Fatalf("drained %d, want %d", len(seen), g*per)
	}
}
