package ccq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, ok := q.Register()
	if !ok {
		t.Fatal("register failed")
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for i := uint64(0); i < 200; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("phantom value")
	}
}

func TestRegisterCensus(t *testing.T) {
	q := New(1)
	if _, ok := q.Register(); !ok {
		t.Fatal("first register failed")
	}
	if _, ok := q.Register(); ok {
		t.Fatal("census exceeded")
	}
}

func TestCombinerBatching(t *testing.T) {
	// Many goroutines funnel through the combiner; exactly-once and
	// liveness are what we can assert.
	const g, per = 6, 3000
	q := New(g)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]bool, g*per)
	for i := 0; i < g; i++ {
		h, ok := q.Register()
		if !ok {
			t.Fatal("register failed")
		}
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for j := 0; j < per; j++ {
				h.Enqueue(uint64(i*per + j))
				if v, ok := h.Dequeue(); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
			}
		}(i, h)
	}
	wg.Wait()
}
