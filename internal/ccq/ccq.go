// Package ccq implements CCQueue — a FIFO queue driven by the CC-Synch
// combining technique of Fatourou & Kallimanis (PPoPP '12), one of the
// wCQ paper's baselines.
//
// CC-Synch serializes operations through a combiner: threads append a
// request node to a global publication list with an atomic SWAP; the
// thread that owns the head of the list applies a whole batch of
// pending requests to a sequential queue and hands the combiner role
// to the next waiter. The queue is therefore BLOCKING (a preempted
// combiner stalls everyone) but has good throughput thanks to batching
// and cache locality — the behaviour the paper's figures show.
package ccq

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
)

// maxCombine bounds a combiner's batch, as in the original algorithm.
const maxCombine = 64

type opKind uint8

const (
	opEnq opKind = iota
	opDeq
)

// request is a CC-Synch publication node.
type request struct {
	next      atomic.Pointer[request]
	kind      opKind
	arg       uint64
	ret       uint64
	retOK     bool
	completed bool
	wait      atomic.Bool
	_         pad.Line
}

// seqNode is a node of the sequential FIFO applied by combiners.
type seqNode struct {
	val  uint64
	next *seqNode
}

// Queue is the combining queue. The sequential list is only ever
// touched by the current combiner, so it needs no synchronization of
// its own (the SWAP/wait protocol provides the ordering).
type Queue struct {
	_        pad.Line
	pubTail  atomic.Pointer[request]
	_        pad.Line
	seqHead  *seqNode
	seqTail  *seqNode
	_        pad.Line
	handles  atomic.Int64
	maxThrds int64
}

// Handle is a registered thread's view. It owns a spare request node
// that is recycled through the publication list (the standard CC-Synch
// node-swapping trick).
type Handle struct {
	q    *Queue
	node *request
}

// New returns an empty CCQueue for at most maxThreads registered
// handles.
func New(maxThreads int) *Queue {
	q := &Queue{maxThrds: int64(maxThreads)}
	dummy := &request{}
	dummy.wait.Store(false)
	q.pubTail.Store(dummy)
	return q
}

// Register returns a new per-thread handle.
func (q *Queue) Register() (*Handle, bool) {
	if q.handles.Add(1) > q.maxThrds {
		q.handles.Add(-1)
		return nil, false
	}
	return &Handle{q: q, node: &request{}}, true
}

// apply publishes a request and waits for its completion, combining
// pending requests when this thread becomes the combiner (CC-Synch).
func (h *Handle) apply(kind opKind, arg uint64) (uint64, bool) {
	q := h.q
	next := h.node
	next.next.Store(nil)
	next.wait.Store(true)
	next.completed = false

	cur := q.pubTail.Swap(next)
	cur.kind = kind
	cur.arg = arg
	cur.next.Store(next)

	// Wait until a combiner processes us or passes us the role.
	for cur.wait.Load() {
		runtime.Gosched()
	}
	if cur.completed {
		h.node = cur // recycle the node we consumed
		return cur.ret, cur.retOK
	}

	// We are the combiner: apply a batch sequentially.
	tmp := cur
	for count := 0; count < maxCombine; count++ {
		nxt := tmp.next.Load()
		if nxt == nil {
			break
		}
		q.applySeq(tmp)
		tmp.completed = true
		tmp.wait.Store(false)
		tmp = nxt
	}
	// Hand the combiner role to the next announced thread.
	tmp.wait.Store(false)
	h.node = cur
	return cur.ret, cur.retOK
}

// applySeq executes one request against the sequential queue. Only the
// combiner runs this.
func (q *Queue) applySeq(r *request) {
	switch r.kind {
	case opEnq:
		n := &seqNode{val: r.arg}
		if q.seqTail == nil {
			q.seqHead, q.seqTail = n, n
		} else {
			q.seqTail.next = n
			q.seqTail = n
		}
		r.retOK = true
	case opDeq:
		if q.seqHead == nil {
			r.ret, r.retOK = 0, false
			return
		}
		n := q.seqHead
		q.seqHead = n.next
		if q.seqHead == nil {
			q.seqTail = nil
		}
		r.ret, r.retOK = n.val, true
	}
}

// Enqueue appends v (always succeeds; the sequential list is
// unbounded).
func (h *Handle) Enqueue(v uint64) {
	h.apply(opEnq, v)
}

// Dequeue removes the oldest value; ok is false when empty.
func (h *Handle) Dequeue() (uint64, bool) {
	return h.apply(opDeq, 0)
}
