package queueapi

import (
	"errors"
	"fmt"
	"testing"
)

// sliceHandle is a trivial bounded queue with no native Batcher — the
// fallback path target.
type sliceHandle struct {
	vs  []uint64
	cap int
}

func (h *sliceHandle) Enqueue(v uint64) bool {
	if len(h.vs) >= h.cap {
		return false
	}
	h.vs = append(h.vs, v)
	return true
}

func (h *sliceHandle) Dequeue() (uint64, bool) {
	if len(h.vs) == 0 {
		return 0, false
	}
	v := h.vs[0]
	h.vs = h.vs[1:]
	return v, true
}

// batchHandle implements Batcher natively and records that the native
// path was taken.
type batchHandle struct {
	sliceHandle
	nativeEnq, nativeDeq int
}

func (h *batchHandle) EnqueueBatch(vs []uint64) int {
	h.nativeEnq++
	for i, v := range vs {
		if !h.Enqueue(v) {
			return i
		}
	}
	return len(vs)
}

func (h *batchHandle) DequeueBatch(out []uint64) int {
	h.nativeDeq++
	for i := range out {
		v, ok := h.Dequeue()
		if !ok {
			return i
		}
		out[i] = v
	}
	return len(out)
}

func TestEnqueueBatchFallback(t *testing.T) {
	h := &sliceHandle{cap: 8}
	if n := EnqueueBatch(h, []uint64{1, 2, 3}); n != 3 {
		t.Fatalf("EnqueueBatch = %d, want 3", n)
	}
	// FIFO order survives the fallback.
	for _, want := range []uint64{1, 2, 3} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%d,%v), want %d", v, ok, want)
		}
	}
}

func TestEnqueueBatchFallbackShortCountIsPrefix(t *testing.T) {
	h := &sliceHandle{cap: 2}
	if n := EnqueueBatch(h, []uint64{10, 11, 12, 13}); n != 2 {
		t.Fatalf("EnqueueBatch = %d, want 2 (capacity)", n)
	}
	for _, want := range []uint64{10, 11} {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%d,%v), want %d", v, ok, want)
		}
	}
}

func TestDequeueBatchFallback(t *testing.T) {
	h := &sliceHandle{cap: 8}
	for i := uint64(0); i < 5; i++ {
		h.Enqueue(i)
	}
	out := make([]uint64, 3)
	if n := DequeueBatch(h, out); n != 3 {
		t.Fatalf("DequeueBatch = %d, want 3", n)
	}
	for i, want := range []uint64{0, 1, 2} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	// Second call drains the remainder and reports the short count.
	big := make([]uint64, 8)
	if n := DequeueBatch(h, big); n != 2 {
		t.Fatalf("DequeueBatch = %d, want 2", n)
	}
	if n := DequeueBatch(h, big); n != 0 {
		t.Fatalf("empty queue yielded %d", n)
	}
}

func TestBatchHelpersPreferNativeBatcher(t *testing.T) {
	h := &batchHandle{sliceHandle: sliceHandle{cap: 8}}
	EnqueueBatch(h, []uint64{1, 2, 3})
	out := make([]uint64, 3)
	DequeueBatch(h, out)
	if h.nativeEnq != 1 || h.nativeDeq != 1 {
		t.Fatalf("native Batcher bypassed: enq=%d deq=%d", h.nativeEnq, h.nativeDeq)
	}
}

func TestDequeueBatchEmptyOut(t *testing.T) {
	h := &sliceHandle{cap: 8}
	h.Enqueue(1)
	if n := DequeueBatch(h, nil); n != 0 {
		t.Fatalf("nil out yielded %d", n)
	}
	if n := EnqueueBatch(h, nil); n != 0 {
		t.Fatalf("nil in consumed %d", n)
	}
}

func TestErrClosedIsMatchable(t *testing.T) {
	if !errors.Is(fmt.Errorf("recv: %w", ErrClosed), ErrClosed) {
		t.Fatal("wrapped ErrClosed not matched by errors.Is")
	}
}
