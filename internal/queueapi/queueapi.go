// Package queueapi defines the minimal interface every queue in this
// repository — wCQ, SCQ and all evaluation baselines — implements, so
// that the correctness checker and the benchmark harness can drive
// them uniformly.
//
// Payloads are uint64, matching the paper's benchmark (which moves
// word-sized pointers); benchmark identities are encoded as
// (thread<<32 | sequence).
package queueapi

// Queue is a bounded or unbounded MPMC FIFO under test.
type Queue interface {
	// Handle returns a per-goroutine view of the queue. Queues with
	// per-thread state (wCQ, YMC, CRTurn, CCQueue) allocate a thread
	// record; others may return a shared stateless view. A Handle must
	// not be used by two goroutines concurrently.
	Handle() (Handle, error)
	// Cap returns the queue's capacity, or 0 when unbounded.
	Cap() uint64
	// Footprint returns the bytes statically allocated at construction
	// (0 when everything is dynamic). Together with runtime heap
	// sampling this reproduces the paper's Fig. 10a memory metric.
	Footprint() uint64
	// Name identifies the algorithm in reports (e.g. "wCQ", "SCQ").
	Name() string
}

// Handle is a per-goroutine queue view.
type Handle interface {
	// Enqueue appends v; false means the queue is full (bounded queues
	// only — unbounded queues always return true).
	Enqueue(v uint64) bool
	// Dequeue removes the oldest value; false means empty.
	Dequeue() (uint64, bool)
}
