// Package queueapi defines the minimal interface every queue in this
// repository — wCQ, SCQ and all evaluation baselines — implements, so
// that the correctness checker and the benchmark harness can drive
// them uniformly.
//
// Payloads are uint64, matching the paper's benchmark (which moves
// word-sized pointers); benchmark identities are encoded as
// (thread<<32 | sequence).
package queueapi

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/metrics"
)

// ErrClosed reports an operation against a closed queue: a send after
// Close, or a receive once the queue is both closed and drained. It
// is the sentinel shared by every blocking facade in the repository
// (compare with errors.Is).
var ErrClosed = errors.New("queueapi: queue closed")

// Queue is a bounded or unbounded MPMC FIFO under test.
type Queue interface {
	// Handle returns a per-goroutine view of the queue. Queues with
	// per-thread state (wCQ, YMC, CRTurn, CCQueue) allocate a thread
	// record; others may return a shared stateless view. A Handle must
	// not be used by two goroutines concurrently.
	Handle() (Handle, error)
	// Cap returns the queue's capacity, or 0 when unbounded.
	Cap() uint64
	// Footprint returns the bytes statically allocated at construction
	// (0 when everything is dynamic). Together with runtime heap
	// sampling this reproduces the paper's Fig. 10a memory metric.
	Footprint() uint64
	// Name identifies the algorithm in reports (e.g. "wCQ", "SCQ").
	Name() string
}

// Handle is a per-goroutine queue view.
type Handle interface {
	// Enqueue appends v; false means the queue is full (bounded queues
	// only — unbounded queues always return true).
	Enqueue(v uint64) bool
	// Dequeue removes the oldest value; false means empty.
	Dequeue() (uint64, bool)
}

// Waitable is the optional blocking extension of Handle: Send and
// Recv park the goroutine (no spin-polling) instead of reporting
// full/empty, and the context variants honor cancellation and
// deadlines. Send returns ErrClosed once the queue is closed; Recv
// drains remaining values and then returns ErrClosed. The checker's
// RunBlocking and the harness's blocking workloads drive queues
// through this interface.
type Waitable interface {
	// Send blocks until v is enqueued or the queue closes.
	Send(v uint64) error
	// SendCtx is Send bounded by ctx; it returns ctx.Err() when the
	// context expires first (v was not enqueued).
	SendCtx(ctx context.Context, v uint64) error
	// Recv blocks until a value arrives or the queue is closed and
	// drained.
	Recv() (uint64, error)
	// RecvCtx is Recv bounded by ctx.
	RecvCtx(ctx context.Context) (uint64, error)
}

// Closer is the optional graceful-shutdown extension of Queue. Close
// is idempotent in effect; a second call returns ErrClosed.
type Closer interface {
	Close() error
}

// Statser is the optional observability extension of Queue: Stats
// snapshots the metrics sink the queue was built with. Queues built
// without a sink (and baselines with no instrumentation) report the
// zero snapshot or simply do not implement the interface.
type Statser interface {
	Stats() metrics.Snapshot
}

// WaitableHandle returns a fresh handle of q asserted to the blocking
// extension — the registration step every blocking driver (checker,
// harness) needs before spawning a goroutine.
func WaitableHandle(q Queue) (Waitable, error) {
	h, err := q.Handle()
	if err != nil {
		return nil, err
	}
	w, ok := h.(Waitable)
	if !ok {
		return nil, fmt.Errorf("queueapi: %s handle is not blocking (no Send/Recv)", q.Name())
	}
	return w, nil
}

// Batcher is the optional batch extension of Handle. Queues that can
// amortize per-operation overhead — a single fetch-and-add reserving
// the whole batch on the ring cores, shard selection paid once on the
// sharded composition — implement it natively; everything else is
// served by the EnqueueBatch/DequeueBatch fallbacks below, so
// harnesses can drive batched workloads against any registered queue.
type Batcher interface {
	// EnqueueBatch appends a prefix of vs in order and returns its
	// length; a short count means the queue filled up mid-batch. The
	// values enqueued are always vs[:n], preserving the caller's FIFO
	// order.
	EnqueueBatch(vs []uint64) int
	// DequeueBatch fills a prefix of out and returns its length; 0
	// means the queue appeared empty.
	DequeueBatch(out []uint64) int
}

// BatchWaitable is the optional batch extension of Waitable: blocking
// sends and receives that move whole batches through the native
// reservation path. SendMany parks until every value is buffered (the
// returned count is the delivered prefix when interrupted by close or
// cancellation); RecvMany parks until at least one value is available
// and then returns what is there without waiting for more — at
// close-drain the final values come back as a partial batch before
// ErrClosed.
type BatchWaitable interface {
	// SendMany blocks until all of vs is buffered, in order; on error
	// it returns how many values made it in.
	SendMany(vs []uint64) (int, error)
	// RecvMany blocks until at least one value is available and fills
	// a prefix of out; it never returns 0 with a nil error.
	RecvMany(out []uint64) (int, error)
}

// EnqueueBatch appends a prefix of vs through h, using the native
// Batcher when h implements it and a one-at-a-time loop otherwise.
// It returns how many values were enqueued.
func EnqueueBatch(h Handle, vs []uint64) int {
	if b, ok := h.(Batcher); ok {
		return b.EnqueueBatch(vs)
	}
	for i, v := range vs {
		if !h.Enqueue(v) {
			return i
		}
	}
	return len(vs)
}

// DequeueBatch fills a prefix of out through h, using the native
// Batcher when h implements it. It returns how many values were
// written; it stops early the first time the queue reports empty.
func DequeueBatch(h Handle, out []uint64) int {
	if b, ok := h.(Batcher); ok {
		return b.DequeueBatch(out)
	}
	for i := range out {
		v, ok := h.Dequeue()
		if !ok {
			return i
		}
		out[i] = v
	}
	return len(out)
}
