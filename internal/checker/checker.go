// Package checker provides the MPMC correctness harness applied to
// every queue implementation in this repository. It verifies the three
// properties a linearizable MPMC FIFO must exhibit under concurrency:
//
//  1. No loss: every enqueued value is eventually dequeued.
//  2. No duplication: no value is dequeued twice.
//  3. Per-producer FIFO: each consumer observes any one producer's
//     values in strictly increasing sequence order (a consequence of
//     linearizability that is cheap to check without full history
//     analysis).
//
// Values are encoded as producerID<<32 | sequence.
package checker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/queueapi"
)

// Config sizes a checker run.
type Config struct {
	Producers   int
	Consumers   int
	PerProducer int
	// Capacity bounds in-flight values so bounded queues never report
	// full in a way the producers cannot absorb; producers spin on a
	// full queue.
	Capacity int
}

// Encode builds a checker payload value.
func Encode(producer, seq int) uint64 { return uint64(producer)<<32 | uint64(seq) }

// Decode splits a checker payload value.
func Decode(v uint64) (producer, seq int) { return int(v >> 32), int(v & 0xffffffff) }

// Run drives q with cfg and returns an error describing the first
// violated property, if any.
func Run(q queueapi.Queue, cfg Config) error {
	total := cfg.Producers * cfg.PerProducer
	delivered := make([]atomic.Int32, total)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers+cfg.Consumers+16)
	report := func(err error) { // non-blocking: first errors win
		select {
		case errs <- err:
		default:
		}
	}

	for p := 0; p < cfg.Producers; p++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("producer handle: %w", err)
		}
		wg.Add(1)
		go func(p int, h queueapi.Handle) {
			defer wg.Done()
			for i := 0; i < cfg.PerProducer; i++ {
				for !h.Enqueue(Encode(p, i)) {
					runtime.Gosched() // full: wait for consumers
				}
			}
		}(p, h)
	}

	for c := 0; c < cfg.Consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("consumer handle: %w", err)
		}
		wg.Add(1)
		go func(h queueapi.Handle) {
			defer wg.Done()
			lastSeq := make(map[int]int, cfg.Producers)
			for {
				if consumed.Load() >= int64(total) {
					return
				}
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				p, seq := Decode(v)
				if p >= cfg.Producers || seq >= cfg.PerProducer {
					report(fmt.Errorf("corrupt value %#x", v))
					consumed.Add(1)
					continue
				}
				if prev, seen := lastSeq[p]; seen && seq <= prev {
					report(fmt.Errorf("per-producer FIFO violation: producer %d seq %d after %d", p, seq, prev))
				}
				lastSeq[p] = seq
				id := p*cfg.PerProducer + seq
				if delivered[id].Add(1) != 1 {
					report(fmt.Errorf("value %#x delivered more than once", v))
				}
				consumed.Add(1)
			}
		}(h)
	}

	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return err
	}
	for id := range delivered {
		if delivered[id].Load() != 1 {
			p, seq := id/cfg.PerProducer, id%cfg.PerProducer
			return fmt.Errorf("value (p=%d, seq=%d) delivered %d times", p, seq, delivered[id].Load())
		}
	}
	return nil
}

// RunSPSC verifies strict global FIFO order with one producer and one
// consumer, the strongest order property observable without full
// linearizability analysis.
func RunSPSC(q queueapi.Queue, n int) error {
	hp, err := q.Handle()
	if err != nil {
		return err
	}
	hc, err := q.Handle()
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		next := 0
		for next < n {
			v, ok := hc.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if int(v) != next {
				done <- fmt.Errorf("FIFO violation: got %d, want %d", v, next)
				return
			}
			next++
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		for !hp.Enqueue(uint64(i)) {
			runtime.Gosched()
		}
	}
	return <-done
}

// RunDrain enqueues n values (spinning on full), then drains the queue
// and verifies count and set equality. Exercises repeated full/empty
// transitions sequentially.
func RunDrain(q queueapi.Queue, n int) error {
	h, err := q.Handle()
	if err != nil {
		return err
	}
	seen := make([]bool, n)
	pending := 0
	drained := 0
	for i := 0; i < n; i++ {
		for !h.Enqueue(Encode(0, i)) {
			// Full: drain one.
			v, ok := h.Dequeue()
			if !ok {
				return fmt.Errorf("queue both full and empty at %d", i)
			}
			if err := mark(seen, v); err != nil {
				return err
			}
			pending--
			drained++
		}
		pending++
	}
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		if err := mark(seen, v); err != nil {
			return err
		}
		pending--
		drained++
	}
	if pending != 0 || drained != n {
		return fmt.Errorf("drained %d of %d (pending %d)", drained, n, pending)
	}
	return nil
}

func mark(seen []bool, v uint64) error {
	_, seq := Decode(v)
	if seq >= len(seen) {
		return fmt.Errorf("corrupt value %#x", v)
	}
	if seen[seq] {
		return fmt.Errorf("value %d dequeued twice", seq)
	}
	seen[seq] = true
	return nil
}
