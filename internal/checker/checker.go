// Package checker provides the MPMC correctness harness applied to
// every queue implementation in this repository. It verifies the three
// properties a linearizable MPMC FIFO must exhibit under concurrency:
//
//  1. No loss: every enqueued value is eventually dequeued.
//  2. No duplication: no value is dequeued twice.
//  3. Per-producer FIFO: each consumer observes any one producer's
//     values in strictly increasing sequence order (a consequence of
//     linearizability that is cheap to check without full history
//     analysis).
//
// Values are encoded as producerID<<32 | sequence.
package checker

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/queueapi"
)

// Config sizes a checker run.
type Config struct {
	Producers   int
	Consumers   int
	PerProducer int
	// Capacity bounds in-flight values so bounded queues never report
	// full in a way the producers cannot absorb; producers spin on a
	// full queue.
	Capacity int
}

// Encode builds a checker payload value.
func Encode(producer, seq int) uint64 { return uint64(producer)<<32 | uint64(seq) }

// Decode splits a checker payload value.
func Decode(v uint64) (producer, seq int) { return int(v >> 32), int(v & 0xffffffff) }

// verifier holds the property-checking state shared by Run and
// RunBatch, so the scalar and batched drivers enforce identical
// semantics by construction.
type verifier struct {
	cfg       Config
	total     int
	delivered []atomic.Int32
	consumed  atomic.Int64
	errs      chan error
}

func newVerifier(cfg Config) *verifier {
	total := cfg.Producers * cfg.PerProducer
	return &verifier{
		cfg:       cfg,
		total:     total,
		delivered: make([]atomic.Int32, total),
		errs:      make(chan error, cfg.Producers+cfg.Consumers+16),
	}
}

// report records an error without blocking: first errors win.
func (vf *verifier) report(err error) {
	select {
	case vf.errs <- err:
	default:
	}
}

// observe validates one dequeued value against a consumer's
// per-producer order state (lastSeq is consumer-local).
func (vf *verifier) observe(v uint64, lastSeq map[int]int) {
	p, seq := Decode(v)
	if p >= vf.cfg.Producers || seq >= vf.cfg.PerProducer {
		vf.report(fmt.Errorf("corrupt value %#x", v))
		vf.consumed.Add(1)
		return
	}
	if prev, seen := lastSeq[p]; seen && seq <= prev {
		vf.report(fmt.Errorf("per-producer FIFO violation: producer %d seq %d after %d", p, seq, prev))
	}
	lastSeq[p] = seq
	id := p*vf.cfg.PerProducer + seq
	if vf.delivered[id].Add(1) != 1 {
		vf.report(fmt.Errorf("value %#x delivered more than once", v))
	}
	vf.consumed.Add(1)
}

// done reports whether every produced value has been observed.
func (vf *verifier) done() bool { return vf.consumed.Load() >= int64(vf.total) }

// finish returns the first reported error, or the result of the
// exactly-once sweep.
func (vf *verifier) finish() error {
	close(vf.errs)
	if err, ok := <-vf.errs; ok {
		return err
	}
	for id := range vf.delivered {
		if vf.delivered[id].Load() != 1 {
			p, seq := id/vf.cfg.PerProducer, id%vf.cfg.PerProducer
			return fmt.Errorf("value (p=%d, seq=%d) delivered %d times", p, seq, vf.delivered[id].Load())
		}
	}
	return nil
}

// Run drives q with cfg and returns an error describing the first
// violated property, if any.
func Run(q queueapi.Queue, cfg Config) error {
	vf := newVerifier(cfg)
	var wg sync.WaitGroup

	for p := 0; p < cfg.Producers; p++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("producer handle: %w", err)
		}
		wg.Add(1)
		go func(p int, h queueapi.Handle) {
			defer wg.Done()
			for i := 0; i < cfg.PerProducer; i++ {
				for !h.Enqueue(Encode(p, i)) {
					runtime.Gosched() // full: wait for consumers
				}
			}
		}(p, h)
	}

	for c := 0; c < cfg.Consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("consumer handle: %w", err)
		}
		wg.Add(1)
		go func(h queueapi.Handle) {
			defer wg.Done()
			lastSeq := make(map[int]int, cfg.Producers)
			for !vf.done() {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				vf.observe(v, lastSeq)
			}
		}(h)
	}

	wg.Wait()
	return vf.finish()
}

// sentinel poisons dequeue buffers so over-writing batch accounting
// (a DequeueBatch writing past its returned count) is detectable. It
// decodes to an impossible producer id, so a leak into real values is
// caught by observe as corruption.
const sentinel = ^uint64(0)

// checkBatchAtomicity is RunBatch's deterministic pre-phase: a single
// handle on an otherwise idle queue, where every batch must take the
// uncontended fast path, so the batch atomicity contract is exact and
// checkable — EnqueueBatch(k) buffers exactly k values, DequeueBatch
// returns them contiguously in FIFO order relative to each other, and
// neither operation's count ever disagrees with what moved. The queue
// is left empty for the concurrent phase.
func checkBatchAtomicity(q queueapi.Queue, cfg Config, batch int) error {
	h, err := q.Handle()
	if err != nil {
		return fmt.Errorf("batch-atomicity handle: %w", err)
	}
	k := batch
	if cfg.Capacity > 0 && k > cfg.Capacity/2 {
		k = cfg.Capacity / 2
	}
	if k < 1 {
		k = 1
	}
	in := make([]uint64, k)
	out := make([]uint64, k+1) // one slot of slack: an over-count is a bug, not a crash
	for round := 0; round < 4; round++ {
		for i := range in {
			in[i] = Encode(0, round*k+i)
		}
		sent := 0
		for sent < k {
			n := queueapi.EnqueueBatch(h, in[sent:])
			if n < 0 || n > k-sent {
				return fmt.Errorf("EnqueueBatch returned %d for a %d-element batch", n, k-sent)
			}
			if n == 0 {
				if sent == 0 {
					return fmt.Errorf("idle queue rejected batch enqueue")
				}
				// The single-handle capacity is smaller than k (e.g. a
				// sharded queue's home shard holds capacity/shards):
				// adopt the discovered bound and verify with it.
				k = sent
				in = in[:k]
				break
			}
			sent += n
		}
		for i := range out {
			out[i] = sentinel
		}
		got := 0
		for got < k {
			n := queueapi.DequeueBatch(h, out[got:])
			if n < 0 || n > len(out)-got {
				return fmt.Errorf("DequeueBatch returned %d for a %d-slot buffer", n, len(out)-got)
			}
			if n == 0 {
				return fmt.Errorf("batch lost values: drained %d of %d", got, k)
			}
			got += n
		}
		if got != k {
			return fmt.Errorf("drained %d values, enqueued %d", got, k)
		}
		for i := 0; i < k; i++ {
			if out[i] != in[i] {
				return fmt.Errorf("batch not contiguous FIFO: out[%d] = %#x, want %#x", i, out[i], in[i])
			}
		}
		for i := k; i < len(out); i++ {
			if out[i] != sentinel {
				return fmt.Errorf("DequeueBatch wrote past its count at out[%d]", i)
			}
		}
		if n := queueapi.DequeueBatch(h, out[:1]); n != 0 {
			return fmt.Errorf("drained queue yielded %d extra value(s)", n)
		}
	}
	return nil
}

// RunBatch drives q with batched enqueues and dequeues (through the
// queueapi.Batcher fast path when the queue has one, the generic
// fallback otherwise) and verifies the same three properties as Run —
// no loss, no duplication, per-producer FIFO — plus the batch
// contract: a deterministic pre-phase asserts batch atomicity (a
// fast-path batch's elements are contiguous in FIFO order relative to
// each other) where it is exact, and the concurrent phase checks
// partial-success accounting — short enqueue counts are prefixes (so
// producers resume mid-batch without reordering, which the FIFO check
// then proves) and dequeue counts match exactly what was written
// (sentinel-poisoned buffers catch over-writes, the exactly-once sweep
// catches under-counts).
func RunBatch(q queueapi.Queue, cfg Config, batch int) error {
	if batch < 1 {
		return fmt.Errorf("checker: batch size %d < 1", batch)
	}
	if err := checkBatchAtomicity(q, cfg, batch); err != nil {
		return fmt.Errorf("batch atomicity: %w", err)
	}
	vf := newVerifier(cfg)
	var wg sync.WaitGroup

	for p := 0; p < cfg.Producers; p++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("producer handle: %w", err)
		}
		wg.Add(1)
		go func(p int, h queueapi.Handle) {
			defer wg.Done()
			buf := make([]uint64, 0, batch)
			for i := 0; i < cfg.PerProducer; i += len(buf) {
				buf = buf[:0]
				for j := i; j < cfg.PerProducer && len(buf) < batch; j++ {
					buf = append(buf, Encode(p, j))
				}
				sent := 0
				for sent < len(buf) {
					n := queueapi.EnqueueBatch(h, buf[sent:])
					if n < 0 || n > len(buf)-sent {
						vf.report(fmt.Errorf("EnqueueBatch returned %d for a %d-element batch", n, len(buf)-sent))
						return
					}
					sent += n
					if n == 0 {
						runtime.Gosched() // full: wait for consumers
					}
				}
			}
		}(p, h)
	}

	for c := 0; c < cfg.Consumers; c++ {
		h, err := q.Handle()
		if err != nil {
			return fmt.Errorf("consumer handle: %w", err)
		}
		wg.Add(1)
		go func(h queueapi.Handle) {
			defer wg.Done()
			lastSeq := make(map[int]int, cfg.Producers)
			buf := make([]uint64, batch)
			for !vf.done() {
				for i := range buf {
					buf[i] = sentinel
				}
				n := queueapi.DequeueBatch(h, buf)
				if n < 0 || n > len(buf) {
					vf.report(fmt.Errorf("DequeueBatch returned %d for a %d-slot buffer", n, len(buf)))
					return
				}
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for i := n; i < len(buf); i++ {
					if buf[i] != sentinel {
						vf.report(fmt.Errorf("DequeueBatch wrote past its count at [%d]", i))
						return
					}
				}
				for _, v := range buf[:n] {
					vf.observe(v, lastSeq)
				}
			}
		}(h)
	}

	wg.Wait()
	return vf.finish()
}

// RunBlockingBatch drives a blocking queue whose handles implement
// queueapi.BatchWaitable through parked SendMany/RecvMany and a
// graceful Close, verifying the same properties as RunBlocking plus
// the batch close contract: SendMany delivers whole batches before
// the close, RecvMany never returns 0 values without an error, and at
// close-drain the final values arrive as a partial batch with every
// produced value still delivered exactly once.
func RunBlockingBatch(q queueapi.Queue, cfg Config, batch int) error {
	if batch < 1 {
		return fmt.Errorf("checker: batch size %d < 1", batch)
	}
	closer, ok := q.(queueapi.Closer)
	if !ok {
		return fmt.Errorf("checker: %s does not implement queueapi.Closer", q.Name())
	}

	vf := newVerifier(cfg)
	var producers, consumers sync.WaitGroup

	batchHandle := func() (queueapi.BatchWaitable, error) {
		w, err := queueapi.WaitableHandle(q)
		if err != nil {
			return nil, err
		}
		bw, ok := w.(queueapi.BatchWaitable)
		if !ok {
			return nil, fmt.Errorf("%s handle is not batch-blocking (no SendMany/RecvMany)", q.Name())
		}
		return bw, nil
	}

	for p := 0; p < cfg.Producers; p++ {
		bw, err := batchHandle()
		if err != nil {
			return fmt.Errorf("producer handle: %w", err)
		}
		producers.Add(1)
		go func(p int, bw queueapi.BatchWaitable) {
			defer producers.Done()
			buf := make([]uint64, 0, batch)
			for i := 0; i < cfg.PerProducer; i += len(buf) {
				buf = buf[:0]
				for j := i; j < cfg.PerProducer && len(buf) < batch; j++ {
					buf = append(buf, Encode(p, j))
				}
				n, err := bw.SendMany(buf)
				if err != nil {
					vf.report(fmt.Errorf("producer %d: SendMany: %w", p, err))
					return
				}
				if n != len(buf) {
					vf.report(fmt.Errorf("producer %d: SendMany delivered %d of %d without error", p, n, len(buf)))
					return
				}
			}
		}(p, bw)
	}

	for c := 0; c < cfg.Consumers; c++ {
		bw, err := batchHandle()
		if err != nil {
			return fmt.Errorf("consumer handle: %w", err)
		}
		consumers.Add(1)
		go func(bw queueapi.BatchWaitable) {
			defer consumers.Done()
			lastSeq := make(map[int]int, cfg.Producers)
			out := make([]uint64, batch)
			for {
				n, err := bw.RecvMany(out)
				if err != nil {
					if !errors.Is(err, queueapi.ErrClosed) {
						vf.report(fmt.Errorf("consumer: RecvMany: %w", err))
					}
					return
				}
				if n < 1 || n > len(out) {
					vf.report(fmt.Errorf("RecvMany returned %d values with nil error", n))
					return
				}
				for _, v := range out[:n] {
					vf.observe(v, lastSeq)
				}
			}
		}(bw)
	}

	producers.Wait()
	if err := closer.Close(); err != nil {
		return fmt.Errorf("checker: Close: %w", err)
	}
	consumers.Wait()
	return vf.finish()
}

// RunBlocking drives a blocking queue — one whose handles implement
// queueapi.Waitable and that itself implements queueapi.Closer —
// through parked Send/Recv and a graceful Close, and verifies the
// same three properties as Run plus the close contract: producers
// Send every value (no spinning on full; they park), the queue is
// closed once all producers finish, and consumers drain until Recv
// reports ErrClosed. Every produced value must still be delivered
// exactly once — drain semantics mean Close loses nothing.
func RunBlocking(q queueapi.Queue, cfg Config) error {
	closer, ok := q.(queueapi.Closer)
	if !ok {
		return fmt.Errorf("checker: %s does not implement queueapi.Closer", q.Name())
	}

	vf := newVerifier(cfg)
	var producers, consumers sync.WaitGroup

	for p := 0; p < cfg.Producers; p++ {
		w, err := queueapi.WaitableHandle(q)
		if err != nil {
			return fmt.Errorf("producer handle: %w", err)
		}
		producers.Add(1)
		go func(p int, w queueapi.Waitable) {
			defer producers.Done()
			for i := 0; i < cfg.PerProducer; i++ {
				if err := w.Send(Encode(p, i)); err != nil {
					vf.report(fmt.Errorf("producer %d: Send(%d): %w", p, i, err))
					return
				}
			}
		}(p, w)
	}

	for c := 0; c < cfg.Consumers; c++ {
		w, err := queueapi.WaitableHandle(q)
		if err != nil {
			return fmt.Errorf("consumer handle: %w", err)
		}
		consumers.Add(1)
		go func(w queueapi.Waitable) {
			defer consumers.Done()
			lastSeq := make(map[int]int, cfg.Producers)
			for {
				v, err := w.Recv()
				if err != nil {
					if !errors.Is(err, queueapi.ErrClosed) {
						vf.report(fmt.Errorf("consumer: Recv: %w", err))
					}
					return
				}
				vf.observe(v, lastSeq)
			}
		}(w)
	}

	producers.Wait()
	if err := closer.Close(); err != nil {
		return fmt.Errorf("checker: Close: %w", err)
	}
	consumers.Wait()
	return vf.finish()
}

// RunSPSC verifies strict global FIFO order with one producer and one
// consumer, the strongest order property observable without full
// linearizability analysis.
func RunSPSC(q queueapi.Queue, n int) error {
	hp, err := q.Handle()
	if err != nil {
		return err
	}
	hc, err := q.Handle()
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		next := 0
		for next < n {
			v, ok := hc.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if int(v) != next {
				done <- fmt.Errorf("FIFO violation: got %d, want %d", v, next)
				return
			}
			next++
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		for !hp.Enqueue(uint64(i)) {
			runtime.Gosched()
		}
	}
	return <-done
}

// RunDrain enqueues n values (spinning on full), then drains the queue
// and verifies count and set equality. Exercises repeated full/empty
// transitions sequentially.
func RunDrain(q queueapi.Queue, n int) error {
	h, err := q.Handle()
	if err != nil {
		return err
	}
	seen := make([]bool, n)
	pending := 0
	drained := 0
	for i := 0; i < n; i++ {
		for !h.Enqueue(Encode(0, i)) {
			// Full: drain one.
			v, ok := h.Dequeue()
			if !ok {
				return fmt.Errorf("queue both full and empty at %d", i)
			}
			if err := mark(seen, v); err != nil {
				return err
			}
			pending--
			drained++
		}
		pending++
	}
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		if err := mark(seen, v); err != nil {
			return err
		}
		pending--
		drained++
	}
	if pending != 0 || drained != n {
		return fmt.Errorf("drained %d of %d (pending %d)", drained, n, pending)
	}
	return nil
}

func mark(seen []bool, v uint64) error {
	_, seq := Decode(v)
	if seq >= len(seen) {
		return fmt.Errorf("corrupt value %#x", v)
	}
	if seen[seq] {
		return fmt.Errorf("value %d dequeued twice", seq)
	}
	seen[seq] = true
	return nil
}
