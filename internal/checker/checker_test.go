package checker

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/queueapi"
)

func TestEncodeDecode(t *testing.T) {
	for _, c := range []struct{ p, s int }{{0, 0}, {3, 12345}, {255, 1 << 30}} {
		p, s := Decode(Encode(c.p, c.s))
		if p != c.p || s != c.s {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.p, c.s, p, s)
		}
	}
}

// mutexQueue is a trivially correct queue used to validate the checker
// itself accepts correct behaviour.
type mutexQueue struct {
	mu sync.Mutex
	vs []uint64
}

func (q *mutexQueue) Handle() (queueapi.Handle, error) { return q, nil }
func (q *mutexQueue) Cap() uint64                      { return 0 }
func (q *mutexQueue) Footprint() uint64                { return 0 }
func (q *mutexQueue) Name() string                     { return "mutex" }
func (q *mutexQueue) Enqueue(v uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.vs = append(q.vs, v)
	return true
}
func (q *mutexQueue) Dequeue() (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[0]
	q.vs = q.vs[1:]
	return v, true
}

// dupQueue delivers every value twice — the checker must reject it.
type dupQueue struct {
	mutexQueue
	pending []uint64
}

func (q *dupQueue) Handle() (queueapi.Handle, error) { return q, nil }
func (q *dupQueue) Dequeue() (uint64, bool) {
	q.mu.Lock()
	if len(q.pending) > 0 {
		v := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		return v, true
	}
	q.mu.Unlock()
	v, ok := q.mutexQueue.Dequeue()
	if ok {
		q.mu.Lock()
		q.pending = append(q.pending, v)
		q.mu.Unlock()
	}
	return v, ok
}

// lifoQueue violates FIFO — the checker must reject it.
type lifoQueue struct{ mutexQueue }

func (q *lifoQueue) Handle() (queueapi.Handle, error) { return q, nil }
func (q *lifoQueue) Dequeue() (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[len(q.vs)-1]
	q.vs = q.vs[:len(q.vs)-1]
	return v, true
}

// blockingRef is a trivially correct blocking queue (a Go channel)
// used to validate RunBlocking accepts correct close/drain behaviour.
type blockingRef struct {
	ch   chan uint64
	drop int // deliver every drop-th value nowhere (0 = correct)
	mu   sync.Mutex
	n    int
}

func newBlockingRef(capacity, drop int) *blockingRef {
	return &blockingRef{ch: make(chan uint64, capacity), drop: drop}
}

func (q *blockingRef) Handle() (queueapi.Handle, error) { return q, nil }
func (q *blockingRef) Cap() uint64                      { return uint64(cap(q.ch)) }
func (q *blockingRef) Footprint() uint64                { return 0 }
func (q *blockingRef) Name() string                     { return "blocking-ref" }
func (q *blockingRef) Close() error                     { close(q.ch); return nil }

func (q *blockingRef) Enqueue(v uint64) bool {
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}
func (q *blockingRef) Dequeue() (uint64, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

func (q *blockingRef) Send(v uint64) error {
	if q.drop > 0 {
		q.mu.Lock()
		q.n++
		lose := q.n%q.drop == 0
		q.mu.Unlock()
		if lose {
			return nil // claims success, never delivers
		}
	}
	q.ch <- v
	return nil
}
func (q *blockingRef) SendCtx(ctx context.Context, v uint64) error {
	select {
	case q.ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
func (q *blockingRef) Recv() (uint64, error) {
	v, ok := <-q.ch
	if !ok {
		return 0, queueapi.ErrClosed
	}
	return v, nil
}
func (q *blockingRef) RecvCtx(ctx context.Context) (uint64, error) {
	select {
	case v, ok := <-q.ch:
		if !ok {
			return 0, queueapi.ErrClosed
		}
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func TestBlockingCheckerAcceptsCorrectQueue(t *testing.T) {
	q := newBlockingRef(64, 0)
	err := RunBlocking(q, Config{Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 64})
	if err != nil {
		t.Fatalf("correct blocking queue rejected: %v", err)
	}
}

func TestBlockingCheckerCatchesLoss(t *testing.T) {
	q := newBlockingRef(64, 100) // silently drops every 100th value
	err := RunBlocking(q, Config{Producers: 2, Consumers: 2, PerProducer: 2000, Capacity: 64})
	if err == nil {
		t.Fatal("lost values not detected by blocking checker")
	}
}

func TestBlockingCheckerRejectsNonBlockingQueue(t *testing.T) {
	if err := RunBlocking(&mutexQueue{}, Config{Producers: 1, Consumers: 1, PerProducer: 1}); err == nil {
		t.Fatal("queue without Closer/Waitable accepted")
	}
}

func TestCheckerAcceptsCorrectQueue(t *testing.T) {
	q := &mutexQueue{}
	if err := Run(q, Config{Producers: 2, Consumers: 2, PerProducer: 2000, Capacity: 64}); err != nil {
		t.Fatalf("correct queue rejected: %v", err)
	}
	if err := RunSPSC(&mutexQueue{}, 5000); err != nil {
		t.Fatalf("correct queue rejected by SPSC: %v", err)
	}
	if err := RunDrain(&mutexQueue{}, 5000); err != nil {
		t.Fatalf("correct queue rejected by drain: %v", err)
	}
}

func TestBatchCheckerAcceptsCorrectQueue(t *testing.T) {
	// The mutex queue has no native Batcher, so this also exercises
	// the queueapi fallback path end to end.
	q := &mutexQueue{}
	if err := RunBatch(q, Config{Producers: 2, Consumers: 2, PerProducer: 2000, Capacity: 64}, 8); err != nil {
		t.Fatalf("correct queue rejected by batch checker: %v", err)
	}
}

func TestBatchCheckerCatchesDuplicates(t *testing.T) {
	err := RunBatch(&dupQueue{}, Config{Producers: 1, Consumers: 1, PerProducer: 200, Capacity: 64}, 4)
	if err == nil {
		t.Fatal("duplicate deliveries not detected by batch checker")
	}
}

func TestCheckerCatchesDuplicates(t *testing.T) {
	err := Run(&dupQueue{}, Config{Producers: 1, Consumers: 1, PerProducer: 100, Capacity: 64})
	if err == nil {
		t.Fatal("duplicate deliveries not detected")
	}
}

func TestCheckerCatchesFIFOViolation(t *testing.T) {
	err := RunSPSC(&lifoQueue{}, 1000)
	if err == nil || !strings.Contains(err.Error(), "FIFO") {
		t.Fatalf("LIFO order not detected: %v", err)
	}
}
