// Package ymc reproduces Yang & Mellor-Crummey's wait-free queue
// (PPoPP '16) as an evaluation baseline. YMC applies F&A to the
// infinite-array queue: tickets index into a linked list of fixed-size
// segments allocated on demand.
//
// Faithfulness notes (see ARCHITECTURE.md):
//
//   - The fast paths (F&A ticket, cell CAS, ⊤-poisoning by overrunning
//     dequeuers) follow the paper directly.
//   - The enqueue slow path keeps the paper's structure: a published
//     request with a pending/committed state word; dequeuers that reach
//     a cell holding a pending request help commit it, which is what
//     makes slow enqueues complete.
//   - The dequeue slow path is simplified to unbounded retries (lock-
//     free, not wait-free). The wCQ paper itself disqualifies YMC's
//     wait-freedom (its reclamation blocks when memory is exhausted);
//     the baseline's role in the evaluation is an F&A throughput and
//     memory-growth reference, which this port preserves.
//   - Reclamation uses the Go GC instead of YMC's custom scheme — the
//     very component Ramalhete & Correia showed to be flawed.
//
// Cell values are encoded as payload+1, with 0 = ⊥ (empty) and ^0 = ⊤
// (poisoned), so payloads must be below 2^64-2; the harness encodes
// IDs well under that.
package ymc

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pad"
)

const (
	// SegOrder gives 2^10 cells per segment, the paper's default.
	SegOrder = 10
	segSize  = 1 << SegOrder
	segMask  = segSize - 1

	// patience bounds fast-path attempts, as in the paper.
	patience = 10

	top = ^uint64(0) // ⊤: cell abandoned by an overrunning dequeuer
)

// enqReq is a published slow-path enqueue request. state packs a
// pending bit (bit 63) with the committed ticket.
type enqReq struct {
	val   uint64
	state atomic.Uint64
}

const pendingBit = uint64(1) << 63

// cell pairs the value slot with the enqueue-request slot used by the
// helping protocol. (The deq-request slot of the original is unused by
// the simplified dequeue path.)
type cell struct {
	val atomic.Uint64 // 0=⊥, ^0=⊤, else payload+1
	enq atomic.Pointer[enqReq]
}

func (c *cell) loadVal() uint64 { return c.val.Load() }
func (c *cell) casVal(o, n uint64) bool {
	return c.val.CompareAndSwap(o, n)
}

// topReq poisons a cell's request slot so no slow enqueue can commit
// into it.
var topReq = &enqReq{}

type segment struct {
	id    uint64
	next  atomic.Pointer[segment]
	cells [segSize]cell
}

// Queue is the YMC queue.
//
//wfq:isolate
type Queue struct {
	_             pad.Line
	tail          atomic.Uint64 // enqueue ticket counter
	_             pad.Line
	head          atomic.Uint64 // dequeue ticket counter
	_             pad.Line
	segHead       atomic.Pointer[segment] // lowest live segment (GC frontier)
	_             pad.Line
	segsAllocated atomic.Int64 //wfq:cold once per segment allocation
	handles       atomic.Int64 //wfq:cold registration only
	maxThreads    int64
}

// Handle carries per-thread segment hints (the paper's per-thread
// head/tail segment pointers).
type Handle struct {
	q      *Queue
	enqSeg *segment
	deqSeg *segment
}

// New returns an empty queue for at most maxThreads handles.
func New(maxThreads int) *Queue {
	q := &Queue{maxThreads: int64(maxThreads)}
	s := &segment{}
	q.segHead.Store(s)
	q.segsAllocated.Store(1)
	return q
}

// Register returns a per-thread handle.
func (q *Queue) Register() (*Handle, error) {
	if q.handles.Add(1) > q.maxThreads {
		q.handles.Add(-1)
		return nil, fmt.Errorf("ymc: thread census exhausted (%d)", q.maxThreads)
	}
	s := q.segHead.Load()
	return &Handle{q: q, enqSeg: s, deqSeg: s}, nil
}

// findCell walks (and extends) the segment list from *hint to the
// segment containing ticket, updating the hint.
// findCell returns nil when the ticket's segment is unreachable (the
// GC frontier passed it), which only happens for tickets whose cell
// has already been fully resolved by a dequeuer.
func (q *Queue) findCell(hint **segment, ticket uint64) *cell {
	s := *hint
	id := ticket >> SegOrder
	if s.id > id {
		// The hint overshot (e.g. a slow enqueue revisiting its commit
		// ticket); restart from the global frontier.
		s = q.segHead.Load()
		if s.id > id {
			return nil
		}
	}
	for s.id < id {
		next := s.next.Load()
		if next == nil {
			ns := &segment{id: s.id + 1}
			if s.next.CompareAndSwap(nil, ns) {
				q.segsAllocated.Add(1)
				next = ns
			} else {
				next = s.next.Load()
			}
		}
		s = next
	}
	*hint = s
	return &s.cells[ticket&segMask]
}

// advanceFrontier moves the GC frontier up to the segment all tickets
// below minTicket have left.
func (q *Queue) advanceFrontier(minTicket uint64) {
	id := minTicket >> SegOrder
	for {
		s := q.segHead.Load()
		if s.id >= id {
			return
		}
		next := s.next.Load()
		if next == nil {
			return
		}
		q.segHead.CompareAndSwap(s, next)
	}
}

// Enqueue appends v. The fast path is the paper's F&A + CAS; the slow
// path publishes a request that overrunning dequeuers help commit.
func (h *Handle) Enqueue(v uint64) {
	q := h.q
	ev := v + 1
	for i := 0; i < patience; i++ {
		t := q.tail.Add(1) - 1
		c := q.findCell(&h.enqSeg, t)
		if c != nil && c.casVal(0, ev) {
			return
		}
	}
	// Slow path.
	r := &enqReq{val: ev}
	r.state.Store(pendingBit)
	for r.state.Load()&pendingBit != 0 {
		t := q.tail.Add(1) - 1
		c := q.findCell(&h.enqSeg, t)
		if c == nil {
			continue
		}
		if c.enq.CompareAndSwap(nil, r) || c.enq.Load() == r {
			// The request is visible in this cell: try to commit here.
			r.state.CompareAndSwap(pendingBit, t)
		}
		if st := r.state.Load(); st&pendingBit == 0 {
			// Committed (by us or a helping dequeuer) at ticket st.
			if tc := q.findCell(&h.enqSeg, st); tc != nil {
				tc.casVal(0, ev)
			}
			return
		}
	}
	// Committed by a helper while we were between tickets. A nil cell
	// means the committing dequeuer already delivered the value.
	st := r.state.Load()
	if tc := q.findCell(&h.enqSeg, st); tc != nil {
		tc.casVal(0, ev)
	}
}

// helpEnq lets a dequeuer at cell c (ticket h) resolve a pending
// slow-path enqueue request before poisoning the cell. It returns the
// value if the request committed here.
func (q *Queue) helpEnq(c *cell, h uint64) (uint64, bool) {
	r := c.enq.Load()
	if r == nil {
		c.enq.CompareAndSwap(nil, topReq)
		r = c.enq.Load()
	}
	if r == nil || r == topReq {
		return 0, false
	}
	// A slow enqueue is visible here: help commit it to THIS ticket.
	r.state.CompareAndSwap(pendingBit, h)
	if st := r.state.Load(); st&pendingBit == 0 && st == h {
		c.casVal(0, r.val)
		return r.val, true
	}
	return 0, false
}

// Dequeue removes the oldest value; ok is false when empty.
//
// Fast path per the paper: take a ticket, spin briefly on the cell,
// poison it with ⊤ if no enqueuer shows up. The retry loop is bounded
// only by queue emptiness (lock-free; see package comment).
func (h *Handle) Dequeue() (uint64, bool) {
	q := h.q
	for {
		hd := q.head.Add(1) - 1
		c := q.findCell(&h.deqSeg, hd)
		if c == nil {
			continue
		}
		for spin := 0; spin < 64; spin++ {
			if v := c.loadVal(); v != 0 && v != top {
				q.advanceFrontier(q.head.Load())
				return v - 1, true
			}
		}
		// Help any pending slow enqueue into this cell, else poison it.
		if v, ok := q.helpEnq(c, hd); ok {
			q.advanceFrontier(q.head.Load())
			return v - 1, true
		}
		if !c.casVal(0, top) {
			v := c.loadVal()
			if v != top {
				q.advanceFrontier(q.head.Load())
				return v - 1, true
			}
		}
		if q.tail.Load() <= hd+1 {
			// Overran all enqueuers: empty.
			q.fixState()
			return 0, false
		}
	}
}

// fixState pulls Tail up to Head after dequeuers overrun, as in CRQ.
func (q *Queue) fixState() {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if t >= h {
			return
		}
		if q.tail.CompareAndSwap(t, h) {
			return
		}
	}
}

// SegsAllocated reports how many segments were ever allocated (the
// Fig. 10a growth signal).
func (q *Queue) SegsAllocated() int64 { return q.segsAllocated.Load() }
