package ymc

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(2)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for i := uint64(0); i < 100; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("phantom value")
	}
}

func TestSegmentGrowthAndFrontier(t *testing.T) {
	q := New(2)
	h, _ := q.Register()
	n := uint64(3 * segSize) // span several segments
	for i := uint64(0); i < n; i++ {
		h.Enqueue(i)
	}
	if q.SegsAllocated() < 3 {
		t.Fatalf("segments=%d, want >=3", q.SegsAllocated())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d across segments", v, ok, i)
		}
	}
	// The frontier must have moved so old segments can be collected.
	if q.segHead.Load().id == 0 {
		t.Fatal("frontier never advanced")
	}
}

func TestZeroValuePayload(t *testing.T) {
	// 0 is a valid payload despite the ⊥=0 encoding (stored as v+1).
	q := New(1)
	h, _ := q.Register()
	h.Enqueue(0)
	v, ok := h.Dequeue()
	if !ok || v != 0 {
		t.Fatalf("got (%d,%v), want (0,true)", v, ok)
	}
}

func TestSlowPathCommit(t *testing.T) {
	// Directly exercise the request-helping protocol: a request
	// committed by helpEnq must deliver exactly once.
	q := New(2)
	h, _ := q.Register()
	// Drive an enqueue through the slow path by exhausting patience:
	// poison the next `patience` cells as an overrunning dequeuer
	// would.
	for i := 0; i < patience; i++ {
		hd := q.tail.Load() + uint64(i)
		c := q.findCell(&h.deqSeg, hd)
		c.casVal(0, top)
	}
	h.Enqueue(42)
	v, ok := h.Dequeue()
	if !ok || v != 42 {
		t.Fatalf("got (%d,%v), want 42 via slow path", v, ok)
	}
}

func TestRegisterCensus(t *testing.T) {
	q := New(1)
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("census exceeded")
	}
}

func TestConcurrentSmoke(t *testing.T) {
	const g, per = 4, 4000
	q := New(g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Enqueue(uint64(j))
				h.Dequeue()
			}
		}(h)
	}
	wg.Wait()
}
