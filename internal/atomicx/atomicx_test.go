package atomicx

import (
	"sync"
	"testing"
)

func TestCounterAddReturnsOld(t *testing.T) {
	for _, mode := range []Mode{NativeFAA, EmulatedFAA} {
		var c Counter
		c.Init(mode, 10)
		if got := c.Add(1); got != 10 {
			t.Errorf("%v: Add returned %d, want 10 (old value)", mode, got)
		}
		if got := c.Load(); got != 11 {
			t.Errorf("%v: Load = %d, want 11", mode, got)
		}
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	for _, mode := range []Mode{NativeFAA, EmulatedFAA} {
		var c Counter
		c.Init(mode, 0)
		seen := make([]map[uint64]bool, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			seen[g] = make(map[uint64]bool, perG)
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					seen[g][c.Add(1)] = true
				}
			}(g)
		}
		wg.Wait()
		if got := c.Load(); got != goroutines*perG {
			t.Fatalf("%v: final %d, want %d", mode, got, goroutines*perG)
		}
		// Every F&A ticket must be unique across goroutines.
		all := make(map[uint64]int)
		for g := range seen {
			for v := range seen[g] {
				all[v]++
			}
		}
		if len(all) != goroutines*perG {
			t.Fatalf("%v: %d unique tickets, want %d", mode, len(all), goroutines*perG)
		}
		for v, n := range all {
			if n != 1 {
				t.Fatalf("%v: ticket %d issued %d times", mode, v, n)
			}
		}
	}
}

func TestCounterOr(t *testing.T) {
	for _, mode := range []Mode{NativeFAA, EmulatedFAA} {
		var c Counter
		c.Init(mode, 0b0101)
		if old := c.Or(0b0011); old != 0b0101 {
			t.Errorf("%v: Or returned %#b, want 0b0101", mode, old)
		}
		if got := c.Load(); got != 0b0111 {
			t.Errorf("%v: Load = %#b, want 0b0111", mode, got)
		}
		// Idempotent when all bits already set.
		if old := c.Or(0b0111); old != 0b0111 {
			t.Errorf("%v: second Or returned %#b", mode, old)
		}
	}
}

func TestCounterCAS(t *testing.T) {
	var c Counter
	c.Init(NativeFAA, 5)
	if !c.CompareAndSwap(5, 9) {
		t.Fatal("CAS(5,9) failed")
	}
	if c.CompareAndSwap(5, 1) {
		t.Fatal("stale CAS succeeded")
	}
	if c.Load() != 9 {
		t.Fatalf("Load = %d, want 9", c.Load())
	}
}

func TestModeString(t *testing.T) {
	if NativeFAA.String() != "native-faa" || EmulatedFAA.String() != "emulated-faa" {
		t.Fatal("Mode.String mismatch")
	}
}
