// Package atomicx wraps the handful of atomic read-modify-write
// operations the queue algorithms rely on, and provides the
// "emulated F&A" mode used to reproduce the paper's PowerPC results
// (Fig. 12) on a machine that has native fetch-and-add.
//
// The paper's evaluation distinguishes two hardware regimes:
//
//   - x86-64: native (wait-free) F&A and atomic OR; double-width CAS.
//   - PowerPC/MIPS: LL/SC only — F&A becomes a CAS/LL-SC loop, and wCQ
//     runs its §4 reduced-width encoding.
//
// Go exposes only the native path. To exercise the second regime we
// route every F&A through Counter, which either issues a hardware
// XADD (atomic.Uint64.Add) or spins on CompareAndSwap exactly like an
// LL/SC expansion would. The emulation flag is fixed at construction
// time so the branch predicts perfectly and does not distort the
// comparison.
package atomicx

import "sync/atomic"

// Mode selects how fetch-and-add is executed.
type Mode uint8

const (
	// NativeFAA issues hardware fetch-and-add (x86-64 XADD, AArch64
	// LDADD). This is the paper's x86 configuration.
	NativeFAA Mode = iota
	// EmulatedFAA expands fetch-and-add into a CAS retry loop, the way
	// PowerPC/MIPS expand it via LL/SC. This is the paper's Fig. 12
	// configuration.
	EmulatedFAA
	// CountingFAA behaves like EmulatedFAA and additionally counts
	// every fetch-and-add the counter executes (Adds reads the tally).
	// It exists so tests can assert F&A amortization — e.g. that a
	// native batch operation issues exactly one Head/Tail F&A per
	// fast-path batch — without instrumenting the native hot path.
	CountingFAA
)

// String names the mode as the figures do.
func (m Mode) String() string {
	switch m {
	case EmulatedFAA:
		return "emulated-faa"
	case CountingFAA:
		return "counting-faa"
	}
	return "native-faa"
}

// Emulated reports whether the mode routes fetch-and-add through a
// CAS loop (EmulatedFAA and its counting variant).
func (m Mode) Emulated() bool { return m != NativeFAA }

// Counter is a 64-bit atomic counter whose Add either uses native F&A
// or a CAS loop depending on the Mode it was created with. The zero
// value is a native-mode counter at 0.
type Counter struct {
	v       atomic.Uint64
	emulate bool
	count   bool
	adds    atomic.Int64
}

// Init sets the mode and initial value. Must be called before the
// counter is shared.
func (c *Counter) Init(mode Mode, v uint64) {
	c.emulate = mode.Emulated()
	c.count = mode == CountingFAA
	c.v.Store(v)
}

// Load returns the current value.
//
//wfq:noalloc
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store unconditionally writes v.
//
//wfq:noalloc
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Add atomically adds delta and returns the PREVIOUS value (the
// algorithms in the paper are written against F&A, which returns the
// old value, unlike atomic.Uint64.Add).
//
//wfq:noalloc
func (c *Counter) Add(delta uint64) uint64 {
	if !c.emulate {
		return c.v.Add(delta) - delta
	}
	if c.count {
		c.adds.Add(1)
	}
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+delta) {
			return old
		}
	}
}

// Adds returns how many fetch-and-add operations this counter has
// executed. Only CountingFAA counters tally; in every other mode Adds
// reports 0.
//
//wfq:noalloc
func (c *Counter) Adds() int64 { return c.adds.Load() }

// CompareAndSwap is a plain CAS on the counter word.
//
//wfq:noalloc
func (c *Counter) CompareAndSwap(old, new uint64) bool {
	return c.v.CompareAndSwap(old, new)
}

// Or atomically ORs bits into the counter word and returns the old
// value. Used by consume() (⊥c marking) and queue finalization.
//
//wfq:noalloc
func (c *Counter) Or(bits uint64) uint64 {
	if !c.emulate {
		return c.v.Or(bits)
	}
	for {
		old := c.v.Load()
		if old&bits == bits {
			return old
		}
		if c.v.CompareAndSwap(old, old|bits) {
			return old
		}
	}
}
