package park

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
)

// TestStaggeredWakeAllWakesEveryWaiter is the no-lost-wakeup
// regression for the tranched WakeAll: many real parked goroutines, a
// tranche size far smaller than the herd, and every single waiter
// must come back. Run under -race -cpu 2,4 in CI.
func TestStaggeredWakeAllWakesEveryWaiter(t *testing.T) {
	const waiters = 100
	var p Point
	p.SetStrategy(&backoff.Strategy{WakeTranche: 3})
	sink := metrics.New()
	p.SetMetrics(sink)

	var registered, woken sync.WaitGroup
	registered.Add(waiters)
	woken.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			w := p.Prepare()
			registered.Done()
			<-w.Ready()
			p.Finish(w)
			woken.Done()
		}()
	}
	registered.Wait()
	for p.Waiters() != waiters {
		// Prepare has returned everywhere, so the count is already
		// there; this is belt and braces against a reordered Done.
		time.Sleep(time.Millisecond)
	}
	p.WakeAll()

	done := make(chan struct{})
	go func() { woken.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("staggered WakeAll lost wakeups: %d still registered", p.Waiters())
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after WakeAll", p.Waiters())
	}

	snap := sink.Snapshot()
	if got := snap.Counts[metrics.Wake]; got != waiters {
		t.Fatalf("wake count = %d, want %d", got, waiters)
	}
	wantTranches := uint64((waiters + 2) / 3)
	if got := snap.Counts[metrics.WakeTranche]; got != wantTranches {
		t.Fatalf("tranche count = %d, want %d (tranche size 3)", got, wantTranches)
	}
	if snap.Tranches.Count != wantTranches || snap.Tranches.Max != 3 {
		t.Fatalf("tranche-size histogram = count %d max %d, want count %d max 3",
			snap.Tranches.Count, snap.Tranches.Max, wantTranches)
	}
}

// TestWakeAllSingleTrancheFastPath: a herd no larger than the tranche
// is released in one tranche, like the pre-stagger WakeAll.
func TestWakeAllSingleTrancheFastPath(t *testing.T) {
	var p Point
	p.SetStrategy(&backoff.Strategy{WakeTranche: 8})
	sink := metrics.New()
	p.SetMetrics(sink)
	ws := make([]*Waiter, 5)
	for i := range ws {
		ws[i] = p.Prepare()
	}
	p.WakeAll()
	for _, w := range ws {
		select {
		case <-w.Ready():
			p.Finish(w)
		case <-time.After(time.Second):
			t.Fatal("waiter not woken")
		}
	}
	snap := sink.Snapshot()
	if got := snap.Counts[metrics.WakeTranche]; got != 1 {
		t.Fatalf("tranche count = %d, want 1", got)
	}
	if snap.Tranches.Max != 5 {
		t.Fatalf("tranche size = %d, want 5", snap.Tranches.Max)
	}
}

// TestSpinWaitHit: a condition that comes true within the spin budget
// returns true, counts a SpinHit, and records the wait duration.
func TestSpinWaitHit(t *testing.T) {
	var p Point
	sink := metrics.New()
	p.SetMetrics(sink)
	rng := backoff.NewRand(1)
	calls := 0
	ok := p.SpinWait(&rng, func() bool { calls++; return calls >= 3 })
	if !ok {
		t.Fatal("SpinWait missed a condition satisfied on the third re-check")
	}
	snap := sink.Snapshot()
	if snap.Counts[metrics.SpinHit] != 1 || snap.Counts[metrics.SpinMiss] != 0 {
		t.Fatalf("hit/miss = %d/%d, want 1/0",
			snap.Counts[metrics.SpinHit], snap.Counts[metrics.SpinMiss])
	}
	if snap.Parked.Count != 1 {
		t.Fatalf("wait histogram count = %d, want 1 (spin hits record)", snap.Parked.Count)
	}
}

// TestSpinWaitMiss: a condition that never comes true exhausts the
// budgets, returns false, and counts a SpinMiss.
func TestSpinWaitMiss(t *testing.T) {
	var p Point
	sink := metrics.New()
	p.SetMetrics(sink)
	rng := backoff.NewRand(1)
	if p.SpinWait(&rng, func() bool { return false }) {
		t.Fatal("SpinWait hit an always-false condition")
	}
	snap := sink.Snapshot()
	if snap.Counts[metrics.SpinMiss] != 1 {
		t.Fatalf("miss count = %d, want 1", snap.Counts[metrics.SpinMiss])
	}
}

// TestSpinWaitParkStrategy: under KindPark, SpinWait is an immediate
// false without evaluating the condition — exactly the pre-adaptive
// wait path, which keeps it an honest gate baseline.
func TestSpinWaitParkStrategy(t *testing.T) {
	var p Point
	p.SetStrategy(backoff.Park())
	sink := metrics.New()
	p.SetMetrics(sink)
	rng := backoff.NewRand(1)
	evaluated := false
	if p.SpinWait(&rng, func() bool { evaluated = true; return true }) {
		t.Fatal("KindPark SpinWait returned true")
	}
	if evaluated {
		t.Fatal("KindPark SpinWait evaluated the condition")
	}
	snap := sink.Snapshot()
	if snap.Counts[metrics.SpinHit]+snap.Counts[metrics.SpinMiss] != 0 {
		t.Fatal("KindPark SpinWait recorded spin outcomes")
	}
}

// TestSpinWaitAdaptiveCollapsesAndProbes: persistent misses drive the
// budget to zero (SpinWait stops evaluating cond except for probes),
// then persistent hits on the probing waits recover it.
func TestSpinWaitAdaptiveCollapsesAndProbes(t *testing.T) {
	var p Point
	rng := backoff.NewRand(1)
	for i := 0; i < 200; i++ {
		p.SpinWait(&rng, func() bool { return false })
	}
	if r := p.SpinHitRate(); r > 0.07 {
		t.Fatalf("hit rate %f after 200 misses, want < 0.07", r)
	}
	// Collapsed: most waits return false without touching cond.
	evaluated := 0
	for i := 0; i < 64; i++ {
		p.SpinWait(&rng, func() bool { evaluated++; return false })
	}
	if evaluated > 64*backoff.ProbeSpins {
		t.Fatalf("collapsed budget still evaluated cond %d times over 64 waits", evaluated)
	}
	// Probes observe hits and the rate recovers.
	for i := 0; i < 2000; i++ {
		if p.SpinWait(&rng, func() bool { return true }) && p.SpinHitRate() > 0.5 {
			return
		}
	}
	t.Fatalf("hit rate %f never recovered via probes", p.SpinHitRate())
}

// TestSpinWaitConcurrent exercises SpinWait racing real wakes and
// parks (race-detector food): producers flip an atomic flag, waiters
// spin-then-park on it.
func TestSpinWaitConcurrent(t *testing.T) {
	var p Point
	var flag atomic.Int64
	var wg sync.WaitGroup
	const rounds = 200
	wg.Add(2)
	go func() { // consumer
		defer wg.Done()
		rng := backoff.NewRand(7)
		for i := 0; i < rounds; i++ {
			for {
				if flag.Load() > 0 {
					flag.Add(-1)
					break
				}
				if p.SpinWait(&rng, func() bool { return flag.Load() > 0 }) {
					continue
				}
				w := p.Prepare()
				if flag.Load() > 0 {
					p.Abort(w)
					continue
				}
				<-w.Ready()
				p.Finish(w)
			}
		}
	}()
	go func() { // producer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			flag.Add(1)
			p.Wake(1)
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("spin/park handoff deadlocked")
	}
}
