package park

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func TestWakeWithNoWaitersIsNoop(t *testing.T) {
	var p Point
	p.Wake(1)
	p.WakeAll()
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d", p.Waiters())
	}
}

func TestPrepareWakeFinish(t *testing.T) {
	var p Point
	w := p.Prepare()
	if p.Waiters() != 1 {
		t.Fatalf("waiters = %d after Prepare", p.Waiters())
	}
	p.Wake(1)
	select {
	case <-w.Ready():
	case <-time.After(time.Second):
		t.Fatal("wake not delivered")
	}
	p.Finish(w)
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after wake", p.Waiters())
	}
}

func TestAbortBeforeWake(t *testing.T) {
	var p Point
	w := p.Prepare()
	p.Abort(w)
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after abort", p.Waiters())
	}
	p.Wake(1) // must not deliver to the aborted (recycled) waiter
}

func TestAbortForwardsConsumedWake(t *testing.T) {
	// w1 is woken but aborts (as a context-cancelled caller would);
	// the wake must be forwarded to w2.
	var p Point
	w1 := p.Prepare()
	w2 := p.Prepare()
	p.Wake(1) // targets w1 (FIFO)
	p.Abort(w1)
	select {
	case <-w2.Ready():
	case <-time.After(time.Second):
		t.Fatal("wake lost: not forwarded after abort")
	}
	p.Finish(w2)
}

func TestWakeN(t *testing.T) {
	var p Point
	ws := make([]*Waiter, 5)
	for i := range ws {
		ws[i] = p.Prepare()
	}
	p.Wake(3)
	for i := 0; i < 3; i++ {
		select {
		case <-ws[i].Ready():
			p.Finish(ws[i])
		case <-time.After(time.Second):
			t.Fatalf("waiter %d not woken by Wake(3)", i)
		}
	}
	for i := 3; i < 5; i++ {
		select {
		case <-ws[i].Ready():
			t.Fatalf("waiter %d woken beyond Wake(3)", i)
		default:
		}
	}
	p.WakeAll()
	for i := 3; i < 5; i++ {
		<-ws[i].Ready()
		p.Finish(ws[i])
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d at end", p.Waiters())
	}
}

func TestFIFOWakeOrder(t *testing.T) {
	var p Point
	a, b := p.Prepare(), p.Prepare()
	p.Wake(1)
	select {
	case <-b.Ready():
		t.Fatal("second waiter woken before first")
	case <-a.Ready():
	case <-time.After(time.Second):
		t.Fatal("no wake")
	}
	p.Finish(a)
	p.Wake(1)
	<-b.Ready()
	p.Finish(b)
}

// TestNoLostWakeupProtocol hammers the register/re-check/wake protocol
// from many goroutines: a shared counter is the condition, every
// increment is followed by Wake(1), and consumers park whenever the
// re-check fails. Every increment must eventually be consumed.
func TestNoLostWakeupProtocol(t *testing.T) {
	var p Point
	var avail atomic.Int64
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perProd; n++ {
				avail.Add(1)
				p.Wake(1)
			}
		}()
	}
	total := int64(producers * perProd)
	var consumed atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Try to take one unit.
				for {
					cur := avail.Load()
					if cur <= 0 {
						break
					}
					if avail.CompareAndSwap(cur, cur-1) {
						if consumed.Add(1) == total {
							p.WakeAll() // release parked siblings
						}
						break
					}
				}
				if consumed.Load() >= total {
					return
				}
				w := p.Prepare()
				if avail.Load() > 0 || consumed.Load() >= total {
					p.Abort(w)
					continue
				}
				select {
				case <-w.Ready():
					p.Finish(w)
				case <-ctx.Done():
					p.Abort(w)
					t.Error("lost wakeup: consumer timed out")
					return
				}
			}
		}()
	}
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
}

// --- Claim-protocol (direct handoff) tests -------------------------

func TestClaimDeliverHandoff(t *testing.T) {
	var p Point
	var cell uint64
	w := p.PrepareXfer(unsafe.Pointer(&cell))
	cw, cp := p.Claim()
	if cw != w || cp != unsafe.Pointer(&cell) {
		t.Fatalf("Claim = %p, %p; want %p, %p", cw, cp, w, &cell)
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after Claim (claim must unlink)", p.Waiters())
	}
	*(*uint64)(cp) = 42
	p.Deliver(cw)
	select {
	case <-w.Ready():
	case <-time.After(time.Second):
		t.Fatal("Deliver sent no token")
	}
	if !w.Done() {
		t.Fatal("Done() = false after Deliver")
	}
	if cell != 42 {
		t.Fatalf("cell = %d, want 42", cell)
	}
	p.Finish(w)
}

func TestDisarmWithdrawsClaimability(t *testing.T) {
	var p Point
	var cell int
	w := p.PrepareXfer(unsafe.Pointer(&cell))
	if !w.Disarm() {
		t.Fatal("Disarm lost with no claimer")
	}
	if cw, _ := p.Claim(); cw != nil {
		t.Fatal("Claim succeeded on a disarmed waiter")
	}
	if p.Abort(w) {
		t.Fatal("Abort reported a handoff on a disarmed waiter")
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d at end", p.Waiters())
	}
}

func TestClaimBeatsDisarm(t *testing.T) {
	var p Point
	var cell int
	w := p.PrepareXfer(unsafe.Pointer(&cell))
	cw, cp := p.Claim()
	if cw == nil {
		t.Fatal("Claim failed on an armed waiter")
	}
	if w.Disarm() {
		t.Fatal("Disarm won after Claim already had")
	}
	*(*int)(cp) = 7
	p.Deliver(cw)
	<-w.Ready()
	if !w.Done() || cell != 7 {
		t.Fatalf("Done = %v, cell = %d after losing Disarm", w.Done(), cell)
	}
	p.Finish(w)
}

// TestAbortLosesToClaim is the constructed-interleaving regression for
// the one linearization where "stop waiting" loses: the claimer wins
// the CAS and unlinks while the owner is deciding to abort. Abort must
// then block until the claimer's Deliver and return true, and the cell
// value counts as delivered — the owner consumes it instead of
// reporting its cancellation.
func TestAbortLosesToClaim(t *testing.T) {
	var p Point
	var cell uint64
	w := p.PrepareXfer(unsafe.Pointer(&cell))
	cw, cp := p.Claim() // claimer wins before the owner aborts
	if cw == nil {
		t.Fatal("Claim failed on an armed waiter")
	}
	aborted := make(chan bool, 1)
	go func() { aborted <- p.Abort(w) }()
	// Abort blocks on the token only Deliver sends, so it cannot have
	// resolved yet; this select documents the ordering rather than
	// proving it (the proof is the one-slot channel protocol).
	select {
	case r := <-aborted:
		t.Fatalf("Abort returned %v before Deliver", r)
	case <-time.After(10 * time.Millisecond):
	}
	*(*uint64)(cp) = 99
	p.Deliver(cw)
	select {
	case r := <-aborted:
		if !r {
			t.Fatal("Abort = false after a claimed handoff delivered")
		}
	case <-time.After(time.Second):
		t.Fatal("Abort never returned after Deliver")
	}
	if cell != 99 {
		t.Fatalf("cell = %d, want 99", cell)
	}
}

func TestDeliverWakeAbandonsClaim(t *testing.T) {
	// A claimer that cannot publish wakes the owner plainly; the owner
	// sees a spurious wake (Done false) and retries its normal path.
	var p Point
	var cell int
	w := p.PrepareXfer(unsafe.Pointer(&cell))
	cw, _ := p.Claim()
	if cw == nil {
		t.Fatal("Claim failed on an armed waiter")
	}
	p.DeliverWake(cw)
	select {
	case <-w.Ready():
	case <-time.After(time.Second):
		t.Fatal("DeliverWake sent no token")
	}
	if w.Done() {
		t.Fatal("Done() = true after an abandoned claim")
	}
	p.Finish(w)
}

func TestArmUpgradesPlainRegistration(t *testing.T) {
	var p Point
	var cell int
	w := p.Prepare()
	if cw, _ := p.Claim(); cw != nil {
		t.Fatal("Claim succeeded on a plain (unarmed) waiter")
	}
	w.Arm(unsafe.Pointer(&cell))
	cw, cp := p.Claim()
	if cw != w {
		t.Fatal("Claim failed after Arm")
	}
	*(*int)(cp) = 5
	p.Deliver(cw)
	<-w.Ready()
	if !w.Done() || cell != 5 {
		t.Fatalf("Done = %v, cell = %d after armed claim", w.Done(), cell)
	}
	p.Finish(w)
}

func TestClaimSkipsUnarmedWaiters(t *testing.T) {
	// A plain waiter ahead of an armed one must not block the claim:
	// the scan passes unarmed registrations and claims the oldest armed
	// one, leaving the plain waiter queued for a normal wake.
	var p Point
	var cell int
	plain := p.Prepare()
	armed := p.PrepareXfer(unsafe.Pointer(&cell))
	cw, _ := p.Claim()
	if cw != armed {
		t.Fatalf("Claim = %p, want the armed waiter %p", cw, armed)
	}
	if p.Waiters() != 1 {
		t.Fatalf("waiters = %d; the plain waiter must stay queued", p.Waiters())
	}
	p.Deliver(cw)
	<-armed.Ready()
	p.Finish(armed)
	p.Wake(1)
	<-plain.Ready()
	p.Finish(plain)
}

// TestClaimDisarmRace hammers the armed→claimed vs armed→idle CAS from
// both sides: every registration must resolve to exactly one of
// "claimed and delivered" or "disarmed and never touched". Run with
// -race.
func TestClaimDisarmRace(t *testing.T) {
	var p Point
	const rounds = 20000
	var delivered, kept atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // claimer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if w, cp := p.Claim(); w != nil {
				*(*uint64)(cp) = 1
				p.Deliver(w)
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		var cell uint64
		w := p.PrepareXfer(unsafe.Pointer(&cell))
		if w.Disarm() {
			// Withdrawn: no handoff can land; the cell must stay zero.
			if cell != 0 {
				t.Fatalf("round %d: disarmed cell = %d", i, cell)
			}
			kept.Add(1)
			if p.Abort(w) {
				t.Fatalf("round %d: Abort reported a handoff after a won Disarm", i)
			}
			continue
		}
		// A claimer won: the token and the value must both arrive.
		<-w.Ready()
		if !w.Done() || cell != 1 {
			t.Fatalf("round %d: lost Disarm but Done = %v, cell = %d", i, w.Done(), cell)
		}
		delivered.Add(1)
		p.Finish(w)
	}
	close(stop)
	wg.Wait()
	if delivered.Load()+kept.Load() != rounds {
		t.Fatalf("accounting: %d delivered + %d kept != %d rounds",
			delivered.Load(), kept.Load(), rounds)
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d at end", p.Waiters())
	}
}
