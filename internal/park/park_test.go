package park

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWakeWithNoWaitersIsNoop(t *testing.T) {
	var p Point
	p.Wake(1)
	p.WakeAll()
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d", p.Waiters())
	}
}

func TestPrepareWakeFinish(t *testing.T) {
	var p Point
	w := p.Prepare()
	if p.Waiters() != 1 {
		t.Fatalf("waiters = %d after Prepare", p.Waiters())
	}
	p.Wake(1)
	select {
	case <-w.Ready():
	case <-time.After(time.Second):
		t.Fatal("wake not delivered")
	}
	p.Finish(w)
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after wake", p.Waiters())
	}
}

func TestAbortBeforeWake(t *testing.T) {
	var p Point
	w := p.Prepare()
	p.Abort(w)
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d after abort", p.Waiters())
	}
	p.Wake(1) // must not deliver to the aborted (recycled) waiter
}

func TestAbortForwardsConsumedWake(t *testing.T) {
	// w1 is woken but aborts (as a context-cancelled caller would);
	// the wake must be forwarded to w2.
	var p Point
	w1 := p.Prepare()
	w2 := p.Prepare()
	p.Wake(1) // targets w1 (FIFO)
	p.Abort(w1)
	select {
	case <-w2.Ready():
	case <-time.After(time.Second):
		t.Fatal("wake lost: not forwarded after abort")
	}
	p.Finish(w2)
}

func TestWakeN(t *testing.T) {
	var p Point
	ws := make([]*Waiter, 5)
	for i := range ws {
		ws[i] = p.Prepare()
	}
	p.Wake(3)
	for i := 0; i < 3; i++ {
		select {
		case <-ws[i].Ready():
			p.Finish(ws[i])
		case <-time.After(time.Second):
			t.Fatalf("waiter %d not woken by Wake(3)", i)
		}
	}
	for i := 3; i < 5; i++ {
		select {
		case <-ws[i].Ready():
			t.Fatalf("waiter %d woken beyond Wake(3)", i)
		default:
		}
	}
	p.WakeAll()
	for i := 3; i < 5; i++ {
		<-ws[i].Ready()
		p.Finish(ws[i])
	}
	if p.Waiters() != 0 {
		t.Fatalf("waiters = %d at end", p.Waiters())
	}
}

func TestFIFOWakeOrder(t *testing.T) {
	var p Point
	a, b := p.Prepare(), p.Prepare()
	p.Wake(1)
	select {
	case <-b.Ready():
		t.Fatal("second waiter woken before first")
	case <-a.Ready():
	case <-time.After(time.Second):
		t.Fatal("no wake")
	}
	p.Finish(a)
	p.Wake(1)
	<-b.Ready()
	p.Finish(b)
}

// TestNoLostWakeupProtocol hammers the register/re-check/wake protocol
// from many goroutines: a shared counter is the condition, every
// increment is followed by Wake(1), and consumers park whenever the
// re-check fails. Every increment must eventually be consumed.
func TestNoLostWakeupProtocol(t *testing.T) {
	var p Point
	var avail atomic.Int64
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perProd; n++ {
				avail.Add(1)
				p.Wake(1)
			}
		}()
	}
	total := int64(producers * perProd)
	var consumed atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Try to take one unit.
				for {
					cur := avail.Load()
					if cur <= 0 {
						break
					}
					if avail.CompareAndSwap(cur, cur-1) {
						if consumed.Add(1) == total {
							p.WakeAll() // release parked siblings
						}
						break
					}
				}
				if consumed.Load() >= total {
					return
				}
				w := p.Prepare()
				if avail.Load() > 0 || consumed.Load() >= total {
					p.Abort(w)
					continue
				}
				select {
				case <-w.Ready():
					p.Finish(w)
				case <-ctx.Done():
					p.Abort(w)
					t.Error("lost wakeup: consumer timed out")
					return
				}
			}
		}()
	}
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d of %d", consumed.Load(), total)
	}
}
