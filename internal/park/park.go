// Package park provides a futex-style parking lot for goroutines
// waiting on a condition over a nonblocking queue ("not empty", "not
// full"). It is the sleep/wake half of the blocking Chan facade: the
// wait-free rings stay untouched, and blocking callers park here
// instead of spin-polling.
//
// Waiting is a three-phase state machine (see SpinWait): (1) a
// bounded spin re-checking the condition, (2) a short jittered
// Gosched phase, (3) the futex park below. The spin budget adapts per
// Point from the observed spin-success rate (an EWMA over
// SpinHit/SpinMiss outcomes), so an uncontended point converges to
// pure spin and an oversubscribed one to immediate park; the
// internal/backoff Strategy threaded in via SetStrategy tunes or
// disables the spin phases.
//
// The park protocol mirrors a futex wait/wake pair and has no lost
// wakeups:
//
//	waiter:  w := p.Prepare()          waker:  make condition true
//	         re-check condition                p.Wake(1)
//	         (satisfied? p.Abort(w))
//	         <-w.Ready(); p.Finish(w)
//
// If the waker's Wake observes no registered waiters (one atomic
// load — the only cost wakers pay when nobody sleeps), the waiter's
// Prepare had not happened yet, so its re-check is ordered after the
// waker's condition write and observes it. Otherwise the waiter is
// registered and Wake delivers a token. Waiters must always re-check
// the condition after waking: wakes can be spurious (forwarded from
// an aborted waiter), never missing.
//
// WakeAll releases waiters in jittered tranches (strategy
// TrancheSize, default GOMAXPROCS) instead of all at once, so a
// Close or a sharded not-full broadcast does not make the scheduler
// swallow a thundering herd. The staggering preserves the invariant
// that every waiter registered when WakeAll was called is woken by
// that call.
package park

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
)

// Waiter is one goroutine's registration at a Point. It is created by
// Point.Prepare and must be retired by exactly one of Point.Abort
// (wake not consumed from Ready) or Point.Finish (wake consumed).
type Waiter struct {
	ch     chan struct{}
	next   *Waiter
	prev   *Waiter
	queued bool      // still on the Point's list; guarded by Point.mu
	t0     time.Time // Prepare time, for the parked-duration histogram; zero when metrics are off
}

// Ready returns the channel a wake token is delivered on. It becomes
// readable exactly once per registration; select on it against a
// context or timer.
func (w *Waiter) Ready() <-chan struct{} { return w.ch }

// waiterPool recycles Waiters (and their one-slot channels) so a
// steady park/unpark workload does not allocate.
var waiterPool = sync.Pool{New: func() any { return &Waiter{ch: make(chan struct{}, 1)} }}

// Point is one parkable condition. The zero value is ready to use.
// Wakers that find no one sleeping pay a single atomic load.
type Point struct {
	waiters atomic.Int32 // registered-and-not-yet-woken count (fast-path gate)
	met     *metrics.Sink
	strat   *backoff.Strategy // nil = adaptive defaults; set before sharing
	adapt   backoff.EWMA      // spin-hit rate estimate driving the adaptive budget
	mu      sync.Mutex
	head    *Waiter // FIFO: head is woken first
	tail    *Waiter
	// wakeRng jitters the inter-tranche stagger of WakeAll; stepped
	// only under mu.
	wakeRng backoff.Rand
}

// SetMetrics points the parking lot at a metrics sink (nil disables):
// park/wake/spurious-wake counts and the parked-duration histogram.
// Call it before the Point is shared.
func (p *Point) SetMetrics(m *metrics.Sink) { p.met = m }

// SetStrategy selects the wait strategy (nil = adaptive defaults).
// Call it before the Point is shared.
func (p *Point) SetStrategy(s *backoff.Strategy) { p.strat = s }

// SpinHitRate reports the Point's current spin-success estimate in
// [0, 1] — the EWMA the adaptive budget is derived from. For tests
// and introspection.
func (p *Point) SpinHitRate() float64 { return p.adapt.Rate() }

// SpinWait is phases 1 and 2 of the three-phase wait: it re-checks
// cond through a bounded spin and then a short jittered Gosched
// phase, returning true the moment cond does (the caller never
// parks), false when the budgets expire (the caller proceeds to the
// Prepare/re-check/park protocol). rng is the caller's private jitter
// stream (one per handle).
//
// Under the adaptive strategy the spin bound tracks this Point's
// spin-success EWMA: every SpinWait outcome feeds the estimate, a
// high hit rate earns the full budget and a rate under ~6% collapses
// it to zero — except for one probing wait in 16 (spin-only, no
// yields), which keeps the estimate alive so the budget can recover
// when contention eases. A hit slower than backoff.SpinHitBudget is
// profitability-gated: it still returns true, but it decays the
// estimate (spinning that resolves slower than a park round-trip is
// a loss, however often it "succeeds"). KindSpin always spends the
// full budgets; KindPark returns false immediately (the pre-adaptive
// behavior).
//
// Hits record into the same blocking-wait histogram parks do (with
// their much shorter durations), so the wait-latency ladder stays
// comparable across strategies.
//
//wfq:allocok allocation-free itself; calls a caller-provided closure the checker cannot vet
func (p *Point) SpinWait(rng *backoff.Rand, cond func() bool) bool {
	st := p.strat
	mode := st.Mode()
	if mode == backoff.KindPark {
		return false
	}
	spins := st.SpinBudget()
	adaptive := mode == backoff.KindAdaptive
	probing := false
	if adaptive {
		spins = p.adapt.Budget(spins)
		if spins == 0 {
			if !backoff.Probe(rng) {
				// Converged to immediate park; don't even count the
				// outcome, or misses would swamp the estimate the
				// probes exist to keep honest.
				return false
			}
			probing = true
			spins = backoff.ProbeSpins
		}
	}
	var t0 time.Time
	if adaptive || p.met.Enabled() {
		t0 = time.Now()
	}
	hit := false
	for i := 0; i < spins; i++ {
		if cond() {
			hit = true
			break
		}
	}
	if !hit && !probing {
		// Phase 2: yield the processor between re-checks. The jittered
		// count decorrelates a herd of spinners arriving together; on a
		// single-P runtime the Gosched is also what lets the producer
		// this waiter is waiting on run at all. Probing waits skip this
		// phase: a probe samples whether cheap spinning works again, and
		// a yield-phase "success" on a loaded host is exactly the
		// Pyrrhic outcome the collapsed budget is avoiding.
		yields := 1 + rng.Intn(st.YieldBudget())
		for i := 0; i < yields; i++ {
			runtime.Gosched()
			if cond() {
				hit = true
				break
			}
		}
	}
	var elapsed time.Duration
	if !t0.IsZero() {
		elapsed = time.Since(t0)
	}
	if adaptive {
		if hit && elapsed > backoff.SpinHitBudget {
			// Pyrrhic hit: the condition came true, but slower than a
			// park round-trip would have been. Reinforcing the estimate
			// here is the oversubscription trap — yields always succeed
			// eventually — so it decays instead.
			p.adapt.Decay()
		} else {
			p.adapt.Observe(hit)
		}
	}
	if hit {
		p.met.Inc(metrics.SpinHit)
		if p.met.Enabled() {
			p.met.ObserveParked(uint64(elapsed))
		}
		return true
	}
	p.met.Inc(metrics.SpinMiss)
	return false
}

// Prepare registers the calling goroutine as a waiter. The caller
// MUST re-check its condition after Prepare returns and Abort if it
// is already satisfied; only then may it block on Ready.
//
//wfq:allocok pool-recycled waiter: allocates only until the pool is primed
func (p *Point) Prepare() *Waiter {
	w := waiterPool.Get().(*Waiter)
	w.queued = true
	if p.met.Enabled() {
		p.met.Inc(metrics.Park)
		w.t0 = time.Now()
	}
	p.mu.Lock()
	if p.tail == nil {
		p.head, p.tail = w, w
	} else {
		w.prev = p.tail
		p.tail.next = w
		p.tail = w
	}
	p.waiters.Add(1)
	p.mu.Unlock()
	return w
}

// unlink removes w from the list. Caller holds p.mu and w.queued.
func (p *Point) unlink(w *Waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		p.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		p.tail = w.prev
	}
	w.next, w.prev = nil, nil
	w.queued = false
	p.waiters.Add(-1)
}

// Wake delivers a token to up to n waiters in FIFO order. When no one
// is registered it is a single atomic load.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) Wake(n int) {
	if n <= 0 || p.waiters.Load() == 0 {
		return
	}
	met := p.met
	p.mu.Lock()
	for ; n > 0 && p.head != nil; n-- {
		w := p.head
		p.unlink(w)
		met.Inc(metrics.Wake)
		if !w.t0.IsZero() {
			met.ObserveParked(uint64(time.Since(w.t0)))
		}
		w.ch <- struct{}{} // one-slot buffer, at most one token per registration: never blocks
	}
	p.mu.Unlock()
}

// WakeAll wakes every waiter registered at the moment of the call
// (used on close and for the sharded not-full broadcast), releasing
// them in jittered tranches of the strategy's TrancheSize (default
// GOMAXPROCS) with the lock dropped and a few Gosched calls between
// tranches, so a large herd reaches the scheduler in runnable-sized
// waves instead of all at once.
//
// Invariant: no lost wakeups. The target count is snapshotted at
// entry and waiters are FIFO (new arrivals append at the tail), so
// waking `target` waiters in order covers everyone registered at call
// time; waiters that register mid-stagger are beyond the snapshot and
// belong to the condition's next transition (their own Prepare
// re-check protocol covers them). The snapshot also bounds the loop:
// continuous new arrivals cannot turn WakeAll into a livelock.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) WakeAll() {
	target := int(p.waiters.Load())
	if target <= 0 {
		return
	}
	met := p.met
	tranche := p.strat.TrancheSize()
	for target > 0 {
		p.mu.Lock()
		woken := 0
		for woken < tranche && p.head != nil {
			w := p.head
			p.unlink(w)
			met.Inc(metrics.Wake)
			if !w.t0.IsZero() {
				met.ObserveParked(uint64(time.Since(w.t0)))
			}
			w.ch <- struct{}{}
			woken++
		}
		empty := p.head == nil
		stagger := 0
		if !empty && woken >= tranche {
			stagger = 1 + int(p.wakeRng.Next()&3)
		}
		p.mu.Unlock()
		if woken > 0 {
			met.Inc(metrics.WakeTranche)
			met.ObserveTranche(uint64(woken))
		}
		target -= woken
		if empty || woken == 0 {
			return
		}
		for i := 0; i < stagger; i++ {
			runtime.Gosched()
		}
	}
}

// Abort retires a registration without consuming from Ready. If the
// waiter had already been woken, the token is drained and the wake is
// forwarded to the next waiter, so a waker's signal is never lost to
// a caller that stopped waiting (context expiry, condition satisfied
// during the re-check).
func (p *Point) Abort(w *Waiter) {
	p.mu.Lock()
	if w.queued {
		p.unlink(w)
		p.mu.Unlock()
		p.recycle(w)
		return
	}
	p.mu.Unlock()
	// Already woken: the token was buffered under the lock, so this
	// never blocks. Pass the signal on. For the waker the delivery was
	// wasted — the classic spurious wake — which is what the forwarded
	// Wake(1) compensates for.
	<-w.ch
	p.met.Inc(metrics.SpuriousWake)
	p.recycle(w)
	p.Wake(1)
}

// Finish retires a registration whose token was consumed from Ready.
func (p *Point) Finish(w *Waiter) { p.recycle(w) }

// Waiters reports how many goroutines are currently registered
// (woken-but-not-yet-retired waiters do not count). For tests and
// introspection; racy by nature.
func (p *Point) Waiters() int { return int(p.waiters.Load()) }

func (p *Point) recycle(w *Waiter) {
	w.next, w.prev, w.queued = nil, nil, false
	w.t0 = time.Time{}
	waiterPool.Put(w)
}
