// Package park provides a futex-style parking lot for goroutines
// waiting on a condition over a nonblocking queue ("not empty", "not
// full"). It is the sleep/wake half of the blocking Chan facade: the
// wait-free rings stay untouched, and blocking callers park here
// instead of spin-polling.
//
// The protocol mirrors a futex wait/wake pair and has no lost
// wakeups:
//
//	waiter:  w := p.Prepare()          waker:  make condition true
//	         re-check condition                p.Wake(1)
//	         (satisfied? p.Abort(w))
//	         <-w.Ready(); p.Finish(w)
//
// If the waker's Wake observes no registered waiters (one atomic
// load — the only cost wakers pay when nobody sleeps), the waiter's
// Prepare had not happened yet, so its re-check is ordered after the
// waker's condition write and observes it. Otherwise the waiter is
// registered and Wake delivers a token. Waiters must always re-check
// the condition after waking: wakes can be spurious (forwarded from
// an aborted waiter), never missing.
package park

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Waiter is one goroutine's registration at a Point. It is created by
// Point.Prepare and must be retired by exactly one of Point.Abort
// (wake not consumed from Ready) or Point.Finish (wake consumed).
type Waiter struct {
	ch     chan struct{}
	next   *Waiter
	prev   *Waiter
	queued bool      // still on the Point's list; guarded by Point.mu
	t0     time.Time // Prepare time, for the parked-duration histogram; zero when metrics are off
}

// Ready returns the channel a wake token is delivered on. It becomes
// readable exactly once per registration; select on it against a
// context or timer.
func (w *Waiter) Ready() <-chan struct{} { return w.ch }

// waiterPool recycles Waiters (and their one-slot channels) so a
// steady park/unpark workload does not allocate.
var waiterPool = sync.Pool{New: func() any { return &Waiter{ch: make(chan struct{}, 1)} }}

// Point is one parkable condition. The zero value is ready to use.
// Wakers that find no one sleeping pay a single atomic load.
type Point struct {
	waiters atomic.Int32 // registered-and-not-yet-woken count (fast-path gate)
	met     *metrics.Sink
	mu      sync.Mutex
	head    *Waiter // FIFO: head is woken first
	tail    *Waiter
}

// SetMetrics points the parking lot at a metrics sink (nil disables):
// park/wake/spurious-wake counts and the parked-duration histogram.
// Call it before the Point is shared.
func (p *Point) SetMetrics(m *metrics.Sink) { p.met = m }

// Prepare registers the calling goroutine as a waiter. The caller
// MUST re-check its condition after Prepare returns and Abort if it
// is already satisfied; only then may it block on Ready.
//
//wfq:allocok pool-recycled waiter: allocates only until the pool is primed
func (p *Point) Prepare() *Waiter {
	w := waiterPool.Get().(*Waiter)
	w.queued = true
	if p.met.Enabled() {
		p.met.Inc(metrics.Park)
		w.t0 = time.Now()
	}
	p.mu.Lock()
	if p.tail == nil {
		p.head, p.tail = w, w
	} else {
		w.prev = p.tail
		p.tail.next = w
		p.tail = w
	}
	p.waiters.Add(1)
	p.mu.Unlock()
	return w
}

// unlink removes w from the list. Caller holds p.mu and w.queued.
func (p *Point) unlink(w *Waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		p.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		p.tail = w.prev
	}
	w.next, w.prev = nil, nil
	w.queued = false
	p.waiters.Add(-1)
}

// Wake delivers a token to up to n waiters in FIFO order. When no one
// is registered it is a single atomic load.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) Wake(n int) {
	if n <= 0 || p.waiters.Load() == 0 {
		return
	}
	met := p.met
	p.mu.Lock()
	for ; n > 0 && p.head != nil; n-- {
		w := p.head
		p.unlink(w)
		met.Inc(metrics.Wake)
		if !w.t0.IsZero() {
			met.ObserveParked(uint64(time.Since(w.t0)))
		}
		w.ch <- struct{}{} // one-slot buffer, at most one token per registration: never blocks
	}
	p.mu.Unlock()
}

// WakeAll wakes every registered waiter (used on close).
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) WakeAll() {
	if p.waiters.Load() == 0 {
		return
	}
	met := p.met
	p.mu.Lock()
	for p.head != nil {
		w := p.head
		p.unlink(w)
		met.Inc(metrics.Wake)
		if !w.t0.IsZero() {
			met.ObserveParked(uint64(time.Since(w.t0)))
		}
		w.ch <- struct{}{}
	}
	p.mu.Unlock()
}

// Abort retires a registration without consuming from Ready. If the
// waiter had already been woken, the token is drained and the wake is
// forwarded to the next waiter, so a waker's signal is never lost to
// a caller that stopped waiting (context expiry, condition satisfied
// during the re-check).
func (p *Point) Abort(w *Waiter) {
	p.mu.Lock()
	if w.queued {
		p.unlink(w)
		p.mu.Unlock()
		p.recycle(w)
		return
	}
	p.mu.Unlock()
	// Already woken: the token was buffered under the lock, so this
	// never blocks. Pass the signal on. For the waker the delivery was
	// wasted — the classic spurious wake — which is what the forwarded
	// Wake(1) compensates for.
	<-w.ch
	p.met.Inc(metrics.SpuriousWake)
	p.recycle(w)
	p.Wake(1)
}

// Finish retires a registration whose token was consumed from Ready.
func (p *Point) Finish(w *Waiter) { p.recycle(w) }

// Waiters reports how many goroutines are currently registered
// (woken-but-not-yet-retired waiters do not count). For tests and
// introspection; racy by nature.
func (p *Point) Waiters() int { return int(p.waiters.Load()) }

func (p *Point) recycle(w *Waiter) {
	w.next, w.prev, w.queued = nil, nil, false
	w.t0 = time.Time{}
	waiterPool.Put(w)
}
