// Package park provides a futex-style parking lot for goroutines
// waiting on a condition over a nonblocking queue ("not empty", "not
// full"). It is the sleep/wake half of the blocking Chan facade: the
// wait-free rings stay untouched, and blocking callers park here
// instead of spin-polling.
//
// Waiting is a three-phase state machine (see SpinWait): (1) a
// bounded spin re-checking the condition, (2) a short jittered
// Gosched phase, (3) the futex park below. The spin budget adapts per
// Point from the observed spin-success rate (an EWMA over
// SpinHit/SpinMiss outcomes), so an uncontended point converges to
// pure spin and an oversubscribed one to immediate park; the
// internal/backoff Strategy threaded in via SetStrategy tunes or
// disables the spin phases.
//
// The park protocol mirrors a futex wait/wake pair and has no lost
// wakeups:
//
//	waiter:  w := p.Prepare()          waker:  make condition true
//	         re-check condition                p.Wake(1)
//	         (satisfied? p.Abort(w))
//	         <-w.Ready(); p.Finish(w)
//
// If the waker's Wake observes no registered waiters (one atomic
// load — the only cost wakers pay when nobody sleeps), the waiter's
// Prepare had not happened yet, so its re-check is ordered after the
// waker's condition write and observes it. Otherwise the waiter is
// registered and Wake delivers a token. Waiters must always re-check
// the condition after waking: wakes can be spurious (forwarded from
// an aborted waiter), never missing.
//
// WakeAll releases waiters in jittered tranches (strategy
// TrancheSize, default GOMAXPROCS) instead of all at once, so a
// Close or a sharded not-full broadcast does not make the scheduler
// swallow a thundering herd. The staggering preserves the invariant
// that every waiter registered when WakeAll was called is woken by
// that call.
//
// # Direct handoff
//
// A waiter registered with PrepareXfer is additionally *claimable*: it
// carries a pointer to a transfer cell owned by the waiting goroutine,
// and a waker that can satisfy the waiter directly (a sender with a
// value for a parked receiver, a receiver completing a parked sender's
// pending enqueue) may Claim it instead of waking it plainly. Claim
// CAS-transitions the waiter armed→claimed — racing exactly one-shot
// against the owner's Disarm (armed→idle), so a registration is either
// claimed once or withdrawn once, never both — then the claimer
// publishes through the cell and calls Deliver, which stores the done
// state before sending the token. The token's channel send/receive is
// the happens-before edge that makes the cell write visible (and
// race-detector-clean) to the woken owner. An owner that stops waiting
// (context expiry, condition satisfied) goes through Disarm/Abort:
// Abort reports whether a handoff landed first, in which case the
// value in the cell counts as delivered and must be consumed — nothing
// is ever duplicated or dropped. Spin hits cannot starve the handoff
// path: the pre-registration spin phases consume the condition itself
// (a real dequeue attempt), so a spinner is invisible to wakers —
// Waiters() reads 0 and senders use the wait-free ring the spinner is
// draining — while from PrepareXfer onward the waiter is claimable
// through its re-checks and the park alike.
package park

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/backoff"
	"repro/internal/metrics"
)

// Transfer-cell claim states. A plain registration (Prepare) stays
// xferIdle; PrepareXfer arms the waiter, Claim CASes armed→claimed
// (exactly one winner against the owner's Disarm, which CASes
// armed→idle), and Deliver stores done after the claimer's cell write
// and before the token.
const (
	xferIdle uint32 = iota
	xferArmed
	xferClaimed
	xferDone
)

// Waiter is one goroutine's registration at a Point. It is created by
// Point.Prepare and must be retired by exactly one of Point.Abort
// (wake not consumed from Ready) or Point.Finish (wake consumed).
type Waiter struct {
	ch     chan struct{}
	next   *Waiter
	prev   *Waiter
	queued bool      // still on the Point's list; guarded by Point.mu
	t0     time.Time // Prepare time, for the parked-duration histogram; zero when metrics are off
	// state is the handoff claim state (xfer*): armed by PrepareXfer,
	// CASed claimed by Point.Claim, stored done by Point.Deliver, CASed
	// back to idle by Disarm. Plain registrations stay idle.
	state atomic.Uint32
	// cell points at the owner's typed transfer cell. It lives in the
	// owner's handle — not here — so the pool-shared Waiter stays
	// untyped and the value write is private to the claim/deliver pair.
	// nil unless armed.
	cell unsafe.Pointer
}

// Ready returns the channel a wake token is delivered on. It becomes
// readable exactly once per registration; select on it against a
// context or timer.
func (w *Waiter) Ready() <-chan struct{} { return w.ch }

// waiterPool recycles Waiters (and their one-slot channels) so a
// steady park/unpark workload does not allocate.
var waiterPool = sync.Pool{New: func() any { return &Waiter{ch: make(chan struct{}, 1)} }}

// Point is one parkable condition. The zero value is ready to use.
// Wakers that find no one sleeping pay a single atomic load.
type Point struct {
	waiters atomic.Int32 // registered-and-not-yet-woken count (fast-path gate)
	met     *metrics.Sink
	strat   *backoff.Strategy // nil = adaptive defaults; set before sharing
	adapt   backoff.EWMA      // spin-hit rate estimate driving the adaptive budget
	mu      sync.Mutex
	head    *Waiter // FIFO: head is woken first
	tail    *Waiter
	// wakeRng jitters the inter-tranche stagger of WakeAll; stepped
	// only under mu.
	wakeRng backoff.Rand
}

// SetMetrics points the parking lot at a metrics sink (nil disables):
// park/wake/spurious-wake counts and the parked-duration histogram.
// Call it before the Point is shared.
func (p *Point) SetMetrics(m *metrics.Sink) { p.met = m }

// SetStrategy selects the wait strategy (nil = adaptive defaults).
// Call it before the Point is shared.
func (p *Point) SetStrategy(s *backoff.Strategy) { p.strat = s }

// SpinHitRate reports the Point's current spin-success estimate in
// [0, 1] — the EWMA the adaptive budget is derived from. For tests
// and introspection.
func (p *Point) SpinHitRate() float64 { return p.adapt.Rate() }

// SpinWait is phases 1 and 2 of the three-phase wait: it re-checks
// cond through a bounded spin and then a short jittered Gosched
// phase, returning true the moment cond does (the caller never
// parks), false when the budgets expire (the caller proceeds to the
// Prepare/re-check/park protocol). rng is the caller's private jitter
// stream (one per handle).
//
// Under the adaptive strategy the spin bound tracks this Point's
// spin-success EWMA: every SpinWait outcome feeds the estimate, a
// high hit rate earns the full budget and a rate under ~6% collapses
// it to zero — except for one probing wait in 16 (spin-only, no
// yields), which keeps the estimate alive so the budget can recover
// when contention eases. A hit slower than backoff.SpinHitBudget is
// profitability-gated: it still returns true, but it decays the
// estimate (spinning that resolves slower than a park round-trip is
// a loss, however often it "succeeds"). KindSpin always spends the
// full budgets; KindPark returns false immediately (the pre-adaptive
// behavior).
//
// Hits record into the same blocking-wait histogram parks do (with
// their much shorter durations), so the wait-latency ladder stays
// comparable across strategies.
//
//wfq:allocok allocation-free itself; calls a caller-provided closure the checker cannot vet
func (p *Point) SpinWait(rng *backoff.Rand, cond func() bool) bool {
	st := p.strat
	mode := st.Mode()
	if mode == backoff.KindPark {
		return false
	}
	spins := st.SpinBudget()
	adaptive := mode == backoff.KindAdaptive
	probing := false
	if adaptive {
		spins = p.adapt.Budget(spins)
		if spins == 0 {
			if !backoff.Probe(rng) {
				// Converged to immediate park; don't even count the
				// outcome, or misses would swamp the estimate the
				// probes exist to keep honest.
				return false
			}
			probing = true
			spins = backoff.ProbeSpins
		}
	}
	var t0 time.Time
	if adaptive || p.met.Enabled() {
		t0 = time.Now()
	}
	hit := false
	for i := 0; i < spins; i++ {
		if cond() {
			hit = true
			break
		}
	}
	if !hit && !probing {
		// Phase 2: yield the processor between re-checks. The jittered
		// count decorrelates a herd of spinners arriving together; on a
		// single-P runtime the Gosched is also what lets the producer
		// this waiter is waiting on run at all. Probing waits skip this
		// phase: a probe samples whether cheap spinning works again, and
		// a yield-phase "success" on a loaded host is exactly the
		// Pyrrhic outcome the collapsed budget is avoiding.
		yields := 1 + rng.Intn(st.YieldBudget())
		for i := 0; i < yields; i++ {
			runtime.Gosched()
			if cond() {
				hit = true
				break
			}
		}
	}
	var elapsed time.Duration
	if !t0.IsZero() {
		elapsed = time.Since(t0)
	}
	if adaptive {
		if hit && elapsed > backoff.SpinHitBudget {
			// Pyrrhic hit: the condition came true, but slower than a
			// park round-trip would have been. Reinforcing the estimate
			// here is the oversubscription trap — yields always succeed
			// eventually — so it decays instead.
			p.adapt.Decay()
		} else {
			p.adapt.Observe(hit)
		}
	}
	if hit {
		p.met.Inc(metrics.SpinHit)
		if p.met.Enabled() {
			p.met.ObserveParked(uint64(elapsed))
		}
		return true
	}
	p.met.Inc(metrics.SpinMiss)
	return false
}

// Prepare registers the calling goroutine as a waiter. The caller
// MUST re-check its condition after Prepare returns and Abort if it
// is already satisfied; only then may it block on Ready.
//
//wfq:allocok pool-recycled waiter: allocates only until the pool is primed
func (p *Point) Prepare() *Waiter {
	w := waiterPool.Get().(*Waiter)
	p.enqueueWaiter(w)
	return w
}

// PrepareXfer is Prepare for a claimable waiter: it arms the
// registration with the owner's transfer cell before the waiter
// becomes visible on the list, so a waker may Claim it and publish a
// value (or a completed enqueue) straight through the cell. The same
// re-check-then-Abort contract as Prepare applies, with one addition:
// after any wake — and after a failed Disarm — the owner must consult
// Done to learn whether a handoff landed in its cell.
//
//wfq:allocok pool-recycled waiter: allocates only until the pool is primed
func (p *Point) PrepareXfer(cell unsafe.Pointer) *Waiter {
	w := waiterPool.Get().(*Waiter)
	w.cell = cell
	w.state.Store(xferArmed)
	p.enqueueWaiter(w)
	return w
}

// enqueueWaiter links w at the tail (FIFO) and publishes the
// registration. Arming state must be set before this call: once the
// waiter is listed, claimers can reach it.
//
//wfq:allocok allocation-free; sync.Mutex and time calls are outside the checker whitelist
func (p *Point) enqueueWaiter(w *Waiter) {
	w.queued = true
	if p.met.Enabled() {
		p.met.Inc(metrics.Park)
		w.t0 = time.Now()
	}
	p.mu.Lock()
	if p.tail == nil {
		p.head, p.tail = w, w
	} else {
		w.prev = p.tail
		p.tail.next = w
		p.tail = w
	}
	p.waiters.Add(1)
	p.mu.Unlock()
}

// unlink removes w from the list. Caller holds p.mu and w.queued.
func (p *Point) unlink(w *Waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		p.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		p.tail = w.prev
	}
	w.next, w.prev = nil, nil
	w.queued = false
	p.waiters.Add(-1)
}

// Wake delivers a token to up to n waiters in FIFO order. When no one
// is registered it is a single atomic load.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) Wake(n int) {
	if n <= 0 || p.waiters.Load() == 0 {
		return
	}
	met := p.met
	p.mu.Lock()
	for ; n > 0 && p.head != nil; n-- {
		w := p.head
		p.unlink(w)
		met.Inc(metrics.Wake)
		if !w.t0.IsZero() {
			met.ObserveParked(uint64(time.Since(w.t0)))
		}
		w.ch <- struct{}{} // one-slot buffer, at most one token per registration: never blocks
	}
	p.mu.Unlock()
}

// WakeAll wakes every waiter registered at the moment of the call
// (used on close and for the sharded not-full broadcast), releasing
// them in jittered tranches of the strategy's TrancheSize (default
// GOMAXPROCS) with the lock dropped and a few Gosched calls between
// tranches, so a large herd reaches the scheduler in runnable-sized
// waves instead of all at once.
//
// Invariant: no lost wakeups. The target count is snapshotted at
// entry and waiters are FIFO (new arrivals append at the tail), so
// waking `target` waiters in order covers everyone registered at call
// time; waiters that register mid-stagger are beyond the snapshot and
// belong to the condition's next transition (their own Prepare
// re-check protocol covers them). The snapshot also bounds the loop:
// continuous new arrivals cannot turn WakeAll into a livelock.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) WakeAll() {
	target := int(p.waiters.Load())
	if target <= 0 {
		return
	}
	met := p.met
	tranche := p.strat.TrancheSize()
	for target > 0 {
		p.mu.Lock()
		woken := 0
		for woken < tranche && p.head != nil {
			w := p.head
			p.unlink(w)
			met.Inc(metrics.Wake)
			if !w.t0.IsZero() {
				met.ObserveParked(uint64(time.Since(w.t0)))
			}
			w.ch <- struct{}{}
			woken++
		}
		empty := p.head == nil
		stagger := 0
		if !empty && woken >= tranche {
			stagger = 1 + int(p.wakeRng.Next()&3)
		}
		p.mu.Unlock()
		if woken > 0 {
			met.Inc(metrics.WakeTranche)
			met.ObserveTranche(uint64(woken))
		}
		target -= woken
		if empty || woken == 0 {
			return
		}
		for i := 0; i < stagger; i++ {
			runtime.Gosched()
		}
	}
}

// claimScanCap bounds how many queued waiters one Claim examines
// under the lock. Armed waiters cluster at the head in practice (every
// blocking Recv/Send arms), so the cap almost never bites; it exists
// so a claim racing a run of disarming waiters cannot turn the Point's
// mutex hold into a scan of the whole park list.
const claimScanCap = 8

// Claim removes and returns the oldest claimable (armed) waiter along
// with its transfer cell, or (nil, nil) when none is claimable within
// the scan cap. The armed→claimed CAS races the owner's Disarm, so
// exactly one of them wins each registration. A successful Claim
// obligates the caller to send exactly one token: write the value
// through the cell and Deliver, or — if publishing fails — wake the
// owner plainly with DeliverWake so it retries its normal path.
//
//wfq:allocok allocation-free; sync.Mutex calls are outside the checker whitelist
func (p *Point) Claim() (*Waiter, unsafe.Pointer) {
	if p.waiters.Load() == 0 {
		return nil, nil
	}
	p.mu.Lock()
	scanned := 0
	for w := p.head; w != nil && scanned < claimScanCap; w = w.next {
		if w.state.CompareAndSwap(xferArmed, xferClaimed) {
			p.unlink(w)
			p.mu.Unlock()
			return w, w.cell
		}
		scanned++
	}
	p.mu.Unlock()
	return nil, nil
}

// Deliver completes a claimed handoff. The caller has already written
// the value through the claimed waiter's cell; Deliver publishes the
// done state before the token, so the woken owner that consumed the
// token observes both (the one-slot channel send/receive is the
// happens-before edge that keeps the unsafe cell write race-free).
//
//wfq:allocok allocation-free; time calls are outside the checker whitelist
func (p *Point) Deliver(w *Waiter) {
	w.state.Store(xferDone)
	p.met.Inc(metrics.Wake)
	if !w.t0.IsZero() {
		p.met.ObserveParked(uint64(time.Since(w.t0)))
	}
	w.ch <- struct{}{} // one-slot buffer, at most one token per registration: never blocks
}

// DeliverWake wakes a claimed waiter WITHOUT marking the handoff done:
// the claim is abandoned (the claimer could not publish — e.g. the
// ring slot it freed was stolen before it could enqueue on the owner's
// behalf) and the owner resumes its normal retry path, exactly like a
// spurious plain wake.
//
//wfq:allocok allocation-free; time calls are outside the checker whitelist
func (p *Point) DeliverWake(w *Waiter) {
	p.met.Inc(metrics.Wake)
	if !w.t0.IsZero() {
		p.met.ObserveParked(uint64(time.Since(w.t0)))
	}
	w.ch <- struct{}{}
}

// Arm upgrades a plain (Prepare) registration to a claimable one at
// park-commit time: the cell write precedes the atomic state store, so
// a claimer that wins the armed→claimed CAS observes the cell. Unlike
// PrepareXfer — which arms before the waiter is listed — Arm is for
// callers whose registered re-check must stay free to operate on the
// queue (a sender's re-check enqueues, which an armed waiter may not
// do without disarming first); they arm only once the re-check has
// failed and the park is committed. At most once per registration,
// before blocking on Ready.
//
//wfq:noalloc
func (w *Waiter) Arm(cell unsafe.Pointer) {
	w.cell = cell
	w.state.Store(xferArmed)
}

// Disarm withdraws an armed waiter from claimability: true means the
// owner reclaimed exclusive use of its cell (no handoff can land
// anymore, and the owner may touch the queue itself); false means a
// claimer won the CAS first, and the owner MUST consume the token and
// take the handed-off result (see Done). Only valid on a waiter
// registered with PrepareXfer, at most once.
//
//wfq:noalloc
func (w *Waiter) Disarm() bool {
	return w.state.CompareAndSwap(xferArmed, xferIdle)
}

// Done reports whether a handoff completed on this registration: the
// owner's cell holds the delivered value (receivers) or records that
// the pending value was published on the owner's behalf (senders).
//
//wfq:noalloc
func (w *Waiter) Done() bool { return w.state.Load() == xferDone }

// Abort retires a registration without consuming from Ready. If the
// waiter had already been woken, the token is drained and the wake is
// forwarded to the next waiter, so a waker's signal is never lost to
// a caller that stopped waiting (context expiry, condition satisfied
// during the re-check).
//
// The return reports whether a claimed handoff completed on this
// registration first: true means the value in the owner's cell counts
// as delivered and the caller must consume it (returning success, not
// the abort's error) — the one linearization where "stop waiting"
// loses the race to a claimer that already published. Plain (Prepare)
// registrations always return false.
func (p *Point) Abort(w *Waiter) bool {
	p.mu.Lock()
	if w.queued {
		// Still listed, hence not claimed: Claim unlinks under this
		// same lock before releasing, so a queued waiter has no
		// claimer. (It may be armed; recycle resets that.)
		p.unlink(w)
		p.mu.Unlock()
		p.recycle(w)
		return false
	}
	p.mu.Unlock()
	// Already woken or claimed: a token is in flight and arrives on the
	// one-slot buffer, so this receive completes. (A claimer sends its
	// token right after publishing; there is no abandoned-claim state.)
	<-w.ch
	if w.state.Load() == xferDone {
		// A handoff landed between the owner's decision to abort and
		// the claim. The token was this handoff's own — nothing to
		// forward — and the cell value must be consumed by the caller.
		p.recycle(w)
		return true
	}
	// Pass the signal on. For the waker the delivery was wasted — the
	// classic spurious wake — which is what the forwarded Wake(1)
	// compensates for.
	p.met.Inc(metrics.SpuriousWake)
	p.recycle(w)
	p.Wake(1)
	return false
}

// Finish retires a registration whose token was consumed from Ready.
func (p *Point) Finish(w *Waiter) { p.recycle(w) }

// Waiters reports how many goroutines are currently registered
// (woken-but-not-yet-retired waiters do not count). Racy by nature; it
// is the handoff paths' fast-path gate (one atomic load when nobody
// sleeps) as well as a test/introspection hook.
//
//wfq:noalloc
func (p *Point) Waiters() int { return int(p.waiters.Load()) }

func (p *Point) recycle(w *Waiter) {
	w.next, w.prev, w.queued = nil, nil, false
	w.t0 = time.Time{}
	w.cell = nil
	w.state.Store(xferIdle)
	waiterPool.Put(w)
}
