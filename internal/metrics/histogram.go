// Log-bucketed, HDR-style latency histogram.
//
// Values (nanoseconds by convention, though the histogram is
// unit-agnostic) are binned into 8 sub-buckets per power of two:
// bucket width scales with magnitude, so the relative quantile error
// is bounded by 1/16 (half a sub-bucket) across the full uint64 range
// while the whole table stays under 4 KiB. Recording is three atomic
// RMWs on fixed storage — no allocation, no locks — and snapshots are
// plain value types that merge associatively, so per-shard histograms
// can be combined for free exactly like the counter stripes.

package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits sets the sub-bucket resolution: 2^histSubBits
	// sub-buckets per octave, bounding relative error at
	// 1 / 2^(histSubBits+1).
	histSubBits = 3
	histSubs    = 1 << histSubBits

	// NumHistBuckets is the total bucket count: histSubs exact
	// buckets for values < histSubs, then histSubs sub-buckets for
	// each of the 64-histSubBits remaining octaves.
	NumHistBuckets = histSubs + (64-histSubBits)*histSubs
)

// Histogram is a concurrent log-bucketed histogram. The zero value is
// ready to use; a nil *Histogram no-ops on Record like a nil *Sink.
// All storage is fixed at declaration, so recording never allocates.
type Histogram struct {
	buckets [NumHistBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// NewHistogram returns an empty enabled histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// histBucket maps a value to its bucket index.
//
//wfq:noalloc
func histBucket(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the MSB; >= histSubBits here
	sub := (v >> (uint(e) - histSubBits)) & (histSubs - 1)
	return histSubs + (e-histSubBits)*histSubs + int(sub)
}

// histBounds returns the inclusive lower bound and width of a bucket.
func histBounds(idx int) (lo, width uint64) {
	if idx < histSubs {
		return uint64(idx), 1
	}
	octave := uint(idx-histSubs) / histSubs
	sub := uint64(idx-histSubs) % histSubs
	return (histSubs + sub) << octave, 1 << octave
}

// Record adds one observation. Safe for concurrent use; no-op on a nil
// receiver.
//
//wfq:noalloc
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordSince records the nanoseconds elapsed since t — the one-line
// form of the closed-loop timing pattern (stamp, operate, record).
// No-op on a nil receiver.
//
//wfq:noalloc
func (h *Histogram) RecordSince(t time.Time) {
	if h == nil {
		return
	}
	h.Record(uint64(time.Since(t)))
}

// RecordElapsed records a duration, clamping negatives to zero. This
// is the open-loop (coordinated-omission-safe) recording primitive:
// callers pass completion-time minus INTENDED start time, which the
// schedule fixes before the operation runs, so an operation delayed
// behind a backlog is charged its whole queueing delay instead of
// restarting the clock when it finally gets service. The clamp only
// matters for an operation completing ahead of a skewed schedule
// stamp; real queueing delay is always nonnegative. No-op on a nil
// receiver.
//
//wfq:noalloc
func (h *Histogram) RecordElapsed(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Snapshot copies the current state. Not an atomic cut: observations
// racing with the snapshot may be partially included, which is
// harmless for monitoring. A nil Histogram yields the zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram. Snapshots
// merge associatively and commutatively: bucket counts and sums add,
// maxima take the max, so any grouping of partial merges yields the
// same result.
type HistogramSnapshot struct {
	// Buckets holds per-bucket observation counts.
	Buckets [NumHistBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
	// Max is the largest observed value (exact, not bucketed).
	Max uint64
}

// Merge accumulates o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the arithmetic mean of the observations (exact, from
// the running sum), or 0 if the histogram is empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank,
// represented as the midpoint of the bucket holding that rank; the
// relative error is bounded by 1/16. q >= 1 returns the exact Max;
// an empty snapshot returns 0. Representatives are clamped to Max so
// upper quantiles never exceed the largest real observation.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			lo, width := histBounds(i)
			rep := lo + width/2
			if rep > s.Max {
				rep = s.Max
			}
			return rep
		}
	}
	return s.Max
}
