package metrics

import (
	"sync"
	"testing"
)

// TestSinkCounts: totals across stripes must be exact regardless of
// which stripes the increments landed on.
func TestSinkCounts(t *testing.T) {
	s := New()
	const workers = 8
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Inc(EnqSlowPath)
				s.Add(Park, 2)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(EnqSlowPath); got != workers*per {
		t.Fatalf("Count(EnqSlowPath) = %d, want %d", got, workers*per)
	}
	if got := s.Count(Park); got != 2*workers*per {
		t.Fatalf("Count(Park) = %d, want %d", got, 2*workers*per)
	}
	snap := s.Snapshot()
	if snap.Counts[EnqSlowPath] != workers*per || snap.Counts[Park] != 2*workers*per {
		t.Fatalf("Snapshot counts = %v", snap.Counts)
	}
	if snap.Counts[DeqSlowPath] != 0 {
		t.Fatalf("untouched counter nonzero: %v", snap.Counts)
	}
}

// TestNilSink: the disabled mode is a nil pointer; every method must
// be a safe no-op.
func TestNilSink(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports Enabled")
	}
	s.Inc(Wake)
	s.Add(Wake, 3)
	s.ObserveParked(100)
	if s.Count(Wake) != 0 {
		t.Fatal("nil sink counted")
	}
	snap := s.Snapshot()
	if snap != (Snapshot{}) {
		t.Fatalf("nil sink snapshot not zero: %+v", snap)
	}
}

// TestEventNames: every event needs a stable, unique wire name — the
// daemon exports them as Prometheus label values.
func TestEventNames(t *testing.T) {
	seen := make(map[string]Event)
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		if name == "" || name == "unknown" {
			t.Errorf("event %d has no name", e)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("events %d and %d share name %q", prev, e, name)
		}
		seen[name] = e
	}
	if NumEvents.String() != "unknown" {
		t.Errorf("out-of-range event stringifies to %q", NumEvents.String())
	}
}

// TestSnapshotMerge: merging sink snapshots adds counters and merges
// the parked histograms.
func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Inc(StealAttempt)
	a.ObserveParked(1000)
	b.Inc(StealAttempt)
	b.Inc(StealHit)
	b.ObserveParked(3000)

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Counts[StealAttempt] != 2 || sa.Counts[StealHit] != 1 {
		t.Fatalf("merged counts = %v", sa.Counts)
	}
	if sa.Parked.Count != 2 || sa.Parked.Max != 3000 {
		t.Fatalf("merged parked = count %d max %d", sa.Parked.Count, sa.Parked.Max)
	}
}

// TestRecordingDoesNotAllocate pins the zero-alloc contract the
// hotalloc annotations promise: enabled-sink increments and histogram
// records must not allocate (in particular, the stack-address stripe
// probe must not force an escape).
func TestRecordingDoesNotAllocate(t *testing.T) {
	s := New()
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() {
		s.Inc(DeqSlowPath)
		s.ObserveParked(512)
		h.Record(4096)
	}); n != 0 {
		t.Fatalf("recording allocates %v per run", n)
	}
}

// Counter overhead: enabled sink vs disabled (nil) sink vs no
// instrumentation at all. The disabled column is the price every hot
// path pays for carrying metrics; it must be a lone predictable
// branch.
func BenchmarkInc(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		s := New()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.Inc(EnqSlowPath)
			}
		})
	})
	b.Run("disabled", func(b *testing.B) {
		var s *Sink
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.Inc(EnqSlowPath)
			}
		})
	})
	b.Run("absent", func(b *testing.B) {
		var x uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				x++
			}
		})
		_ = x
	})
}

// BenchmarkRecord measures histogram recording with and without a
// receiver, mirroring BenchmarkInc.
func BenchmarkRecord(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		h := NewHistogram()
		b.RunParallel(func(pb *testing.PB) {
			var v uint64
			for pb.Next() {
				v += 1023
				h.Record(v)
			}
		})
	})
	b.Run("disabled", func(b *testing.B) {
		var h *Histogram
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Record(1023)
			}
		})
	})
}
