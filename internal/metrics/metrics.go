// Package metrics is the always-on observability substrate for the
// queue stack: per-CPU-sharded event counters and log-bucketed latency
// histograms cheap enough to leave enabled in the hot paths.
//
// The design mirrors internal/atomicx.Counter's construction-time mode
// flag, taken one step further: "disabled" is simply a nil *Sink. Every
// recording method has a nil-receiver guard, so code threads a *Sink
// through unconditionally and pays exactly one predictable branch when
// metrics are off — no interface dispatch, no function-pointer
// indirection, no per-call-site flag.
//
// When a Sink is enabled, counter increments land on one of several
// cache-line-padded stripes selected from the calling goroutine's stack
// address, so concurrent writers on different CPUs do not contend on a
// single cache line. Reads (Snapshot) sum the stripes; they are
// intended for scrape-rate consumers (the wcqstressd daemon, test
// assertions), not for the data path.
//
// All recording methods are allocation-free and carry //wfq:noalloc so
// the hotalloc analyzer proves they may be called from the queues'
// //wfq:noalloc hot paths without voiding the zero-alloc guarantee.
package metrics

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/pad"
)

// Event enumerates the load-bearing occurrences instrumented across the
// queue stack. Counters are monotone; rates are derived by the scraper.
type Event uint8

// The event taxonomy. Each constant names one rare-by-construction
// branch in the stack; the fast paths (patience-loop hits, batch
// reservations that land in one F&A) are deliberately not counted —
// their throughput is observable from the daemon's own op counters.
const (
	// EnqSlowPath counts enqueue attempts that left the fast path: a
	// wCQ handle publishing a slow-path request after exhausting its
	// patience, or an SCQ enqueue re-spinning after a failed first
	// TryEnqueue.
	EnqSlowPath Event = iota
	// DeqSlowPath is the dequeue-side analogue of EnqSlowPath.
	DeqSlowPath
	// ThresholdReset counts stores that re-arm the 3n-1 emptiness
	// threshold (paper §3.2). Steady-state operation keeps the
	// threshold saturated, so resets signal empty/full transitions.
	ThresholdReset
	// BatchDegrade counts batch operations that fell back to the
	// scalar path: an EnqueueBatch finishing element-by-element after
	// losing its reservation, or a DequeueBatch that retreated to a
	// scalar Dequeue after contention emptied its window.
	BatchDegrade
	// StealAttempt counts foreign-shard steal scans by a sharded
	// dequeue that found its home shard empty (scalar) or short
	// (batch).
	StealAttempt
	// StealHit counts StealAttempts that yielded at least one value;
	// hit/attempt is the steal success rate.
	StealHit
	// RingSeal counts unbounded-queue tail rings sealed because they
	// filled, forcing growth onto a fresh ring.
	RingSeal
	// RingRecycle counts retired rings parked in the pool for reuse
	// (as opposed to being abandoned to the collector).
	RingRecycle
	// RingPoolHit counts ring acquisitions served from the recycle
	// pool rather than a fresh allocation.
	RingPoolHit
	// RingAlloc counts ring acquisitions that had to allocate.
	RingAlloc
	// Park counts waiters registered on a park.Point (i.e. goroutines
	// that committed to blocking after the lock-free re-check).
	Park
	// Wake counts wake tokens delivered to parked waiters by Wake or
	// WakeAll.
	Wake
	// SpuriousWake counts wake tokens that raced with an aborting
	// waiter and were drained (and forwarded) by Abort — wakes that
	// did not translate into a parked goroutine resuming with work.
	SpuriousWake
	// CloseDrain counts receive operations that observed the
	// closed-and-drained state of a Chan and returned ErrClosed.
	CloseDrain
	// SpinHit counts waits satisfied during the spin/yield phases of
	// the three-phase wait machine — blocking avoided entirely. The
	// SpinHit:(SpinHit+SpinMiss) ratio is what the adaptive spin
	// budget tracks per park point.
	SpinHit
	// SpinMiss counts waits whose spin and yield budgets expired
	// without the condition coming true, forcing a futex park (or at
	// least a Prepare/re-check round).
	SpinMiss
	// WakeTranche counts staggered WakeAll release tranches; the
	// tranche-size distribution is in Snapshot.Tranches, and
	// Wake/WakeTranche approximates the mean tranche size when
	// broadcast wakes dominate.
	WakeTranche
	// HandoffSend counts sends that bypassed the ring entirely: the
	// queue was verifiably empty with a receiver parked (or
	// spin-waiting) on notEmpty, so the value was published straight
	// into the claimed waiter's transfer cell.
	HandoffSend
	// HandoffRecv counts receives that completed a parked sender's
	// pending enqueue directly after freeing a slot, so the woken
	// sender skipped its retry loop.
	HandoffRecv
	// HandoffMiss counts rendezvous attempts that reached the claim (or
	// takeover enqueue) and lost it to a concurrent Disarm, wake, or
	// racing producer, falling back to the ring path. A send that skips
	// handoff because buffered values exist is NOT a miss — FIFO forbids
	// the handoff there by design, so no rendezvous was attempted.
	// (HandoffSend+HandoffRecv) / (HandoffSend+HandoffRecv+HandoffMiss)
	// is the handoff hit rate: the fraction of attempted rendezvous that
	// actually moved a value past the ring.
	HandoffMiss

	// NumEvents is the number of event kinds; valid events are
	// 0 <= e < NumEvents.
	NumEvents
)

// eventNames are the stable wire names used by String and the daemon's
// Prometheus/expvar export; keep them lower_snake so they can be pasted
// into label values verbatim.
var eventNames = [NumEvents]string{
	"enq_slow",
	"deq_slow",
	"threshold_reset",
	"batch_degrade",
	"steal_attempt",
	"steal_hit",
	"ring_seal",
	"ring_recycle",
	"ring_pool_hit",
	"ring_alloc",
	"park",
	"wake",
	"spurious_wake",
	"close_drain",
	"spin_hit",
	"spin_miss",
	"wake_tranche",
	"handoff_send",
	"handoff_recv",
	"handoff_miss",
}

// String returns the stable lower_snake wire name of the event.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return "unknown"
}

// stripePad rounds the counter block up to a whole number of cache
// lines so adjacent stripes in the slice never share a line.
const stripePad = (pad.CacheLineSize - (int(NumEvents)*8)%pad.CacheLineSize) % pad.CacheLineSize

// stripe is one cache-line-isolated block of event counters. Each
// recording goroutine hashes to a stripe; Snapshot sums across them.
//
//wfq:padded
type stripe struct {
	counts [NumEvents]atomic.Uint64
	_      [stripePad]byte
}

// maxStripes caps the stripe slice; beyond this, contention on a
// scrape-rate counter is negligible and memory would be wasted.
const maxStripes = 64

// Sink accumulates event counts and the parked-duration histogram for
// one queue instance (or one composition — the same *Sink is threaded
// through every layer, so a sharded-unbounded-Chan stack aggregates
// into a single Sink for free).
//
// A nil *Sink is the disabled mode: every recording method no-ops
// after a single nil check. Construct an enabled Sink with New.
type Sink struct {
	stripes []stripe
	mask    uintptr

	// parked is the distribution of time waiters spent blocked on a
	// park.Point, in nanoseconds. Both resolutions of a blocking wait
	// record here — spin/yield-phase hits (sub-microsecond) and real
	// futex parks — so the distribution is the wait-latency ladder a
	// strategy comparison reads, not just the parked tail.
	parked Histogram

	// tranches is the distribution of staggered WakeAll tranche sizes
	// (waiters released per tranche).
	tranches Histogram
}

// New returns an enabled Sink with one counter stripe per (power-of-two
// rounded) GOMAXPROCS, capped at maxStripes.
func New() *Sink {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n > maxStripes {
		n = maxStripes
	}
	return &Sink{
		stripes: make([]stripe, n),
		mask:    uintptr(n - 1),
	}
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Enabled reports whether the sink records anything. It is the single
// predictable branch disabled-mode callers pay.
//
//wfq:noalloc
func (s *Sink) Enabled() bool { return s != nil }

// stripeFor picks the calling goroutine's counter stripe. Goroutine
// stacks start at 8 KiB and grow in powers of two, so bits 13+ of a
// stack address spread concurrent goroutines across stripes; the value
// is stable for the life of a call frame, which is all the precision a
// statistical counter needs. The address is consumed as a uintptr
// immediately, so the marker byte never escapes.
//
//wfq:noalloc
func (s *Sink) stripeFor() *stripe {
	var marker byte
	i := (uintptr(unsafe.Pointer(&marker)) >> 13) & s.mask
	return &s.stripes[i]
}

// Inc adds one to the event's counter. No-op on a nil Sink.
//
//wfq:noalloc
func (s *Sink) Inc(e Event) {
	if s == nil {
		return
	}
	s.stripeFor().counts[e].Add(1)
}

// Add adds n to the event's counter. No-op on a nil Sink.
//
//wfq:noalloc
func (s *Sink) Add(e Event, n uint64) {
	if s == nil {
		return
	}
	s.stripeFor().counts[e].Add(n)
}

// ObserveParked records one parked duration (nanoseconds) into the
// sink's parked-time histogram. No-op on a nil Sink.
//
//wfq:noalloc
func (s *Sink) ObserveParked(ns uint64) {
	if s == nil {
		return
	}
	s.parked.Record(ns)
}

// ObserveTranche records one staggered WakeAll tranche's size (number
// of waiters released together). No-op on a nil Sink.
//
//wfq:noalloc
func (s *Sink) ObserveTranche(n uint64) {
	if s == nil {
		return
	}
	s.tranches.Record(n)
}

// Count returns the event's total across all stripes. Nil Sinks report
// zero. It is a read-side helper; the data path never calls it.
func (s *Sink) Count(e Event) uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for i := range s.stripes {
		t += s.stripes[i].counts[e].Load()
	}
	return t
}

// Snapshot is a point-in-time copy of a Sink's counters and parked-time
// histogram. Snapshots are plain values: mergeable, comparable field by
// field, safe to retain.
type Snapshot struct {
	// Counts holds one total per Event, indexed by the Event value.
	Counts [NumEvents]uint64
	// Parked is the blocking-wait duration distribution in
	// nanoseconds: spin/yield-phase hits and futex parks both record
	// here (see Sink.ObserveParked).
	Parked HistogramSnapshot
	// Tranches is the staggered WakeAll tranche-size distribution.
	Tranches HistogramSnapshot
	// Waiters is the live parked population at snapshot time. The
	// Sink does not track it — Sink.Snapshot leaves it zero — because
	// it is a gauge over park.Point state, not a counter: the blocking
	// facades (Chan.Stats) fill it from their park points.
	Waiters int
}

// Snapshot sums the stripes and captures the parked histogram. A nil
// Sink yields the zero Snapshot. The result is not an atomic cut
// across counters — fine for scraping, meaningless for invariants.
func (s *Sink) Snapshot() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	for i := range s.stripes {
		for e := range out.Counts {
			out.Counts[e] += s.stripes[i].counts[e].Load()
		}
	}
	out.Parked = s.parked.Snapshot()
	out.Tranches = s.tranches.Snapshot()
	return out
}

// Handoffs returns the total number of direct handoffs in the
// snapshot: ring-bypassing sends to parked receivers plus completed
// pending enqueues for parked senders.
func (s *Snapshot) Handoffs() uint64 {
	return s.Counts[HandoffSend] + s.Counts[HandoffRecv]
}

// HandoffRate returns the fraction of handoff attempts that succeeded,
// in [0, 1] — the hit rate figure h1 reports. Zero when no attempt was
// recorded.
func (s *Snapshot) HandoffRate() float64 {
	hits := s.Handoffs()
	total := hits + s.Counts[HandoffMiss]
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// EachCount calls f once per event in taxonomy order with the event's
// stable wire name and total — the iteration exporters (expvar,
// Prometheus text) want without depending on the Event constants.
func (s *Snapshot) EachCount(f func(event string, n uint64)) {
	for e, n := range s.Counts {
		f(Event(e).String(), n)
	}
}

// Merge accumulates o into s (counter totals add, histograms merge).
// Useful when compositions are built from independently-sinked parts.
func (s *Snapshot) Merge(o Snapshot) {
	for e := range s.Counts {
		s.Counts[e] += o.Counts[e]
	}
	s.Parked.Merge(o.Parked)
	s.Tranches.Merge(o.Tranches)
	s.Waiters += o.Waiters
}
