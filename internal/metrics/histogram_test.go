package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the nearest-rank quantile on an exact sorted sample,
// using the same rank convention as HistogramSnapshot.Quantile.
func refQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TestHistogramQuantileAccuracy checks the bucketed quantiles against
// an exact sorted reference over a log-uniform sample spanning ns to
// seconds. The representative is a bucket midpoint, so the relative
// error must stay within half a sub-bucket: 1/16.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	const n = 20000
	vals := make([]uint64, n)
	for i := range vals {
		// Log-uniform over roughly [1, 2^30]: pick an exponent, then
		// a uniform mantissa within that octave.
		e := uint(rng.Intn(30))
		v := (uint64(1) << e) + uint64(rng.Int63n(1<<e))
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	if s.Max != vals[n-1] {
		t.Fatalf("Max = %d, want %d", s.Max, vals[n-1])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		got := s.Quantile(q)
		want := refQuantile(vals, q)
		rel := relErr(got, want)
		if rel > 1.0/16+1e-9 {
			t.Errorf("Quantile(%v) = %d, reference %d, rel err %.4f > 1/16", q, got, want, rel)
		}
	}
}

func relErr(got, want uint64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return float64(got)
	}
	d := float64(got) - float64(want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

// TestHistogramSmallValuesExact: values below the first octave get
// unit-width buckets, so their quantiles are exact.
func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := uint64(0); v < histSubs; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	for v := uint64(0); v < histSubs; v++ {
		q := (float64(v) + 0.5) / float64(histSubs)
		if got := s.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %d, want exact %d", q, got, v)
		}
	}
	if got := s.Quantile(1); got != histSubs-1 {
		t.Errorf("Quantile(1) = %d, want %d", got, histSubs-1)
	}
}

// TestHistogramBucketRoundTrip: every bucket's bounds must map back to
// the same bucket at both edges, and buckets must tile the range with
// no gaps or overlaps.
func TestHistogramBucketRoundTrip(t *testing.T) {
	var nextLo uint64
	for i := 0; i < NumHistBuckets; i++ {
		lo, width := histBounds(i)
		if lo != nextLo {
			t.Fatalf("bucket %d: lo = %d, want contiguous %d", i, lo, nextLo)
		}
		if histBucket(lo) != i {
			t.Fatalf("bucket %d: histBucket(lo=%d) = %d", i, lo, histBucket(lo))
		}
		hi := lo + width - 1
		if hi >= lo && histBucket(hi) != i { // hi<lo only on final-bucket overflow
			t.Fatalf("bucket %d: histBucket(hi=%d) = %d", i, hi, histBucket(hi))
		}
		nextLo = lo + width
		if nextLo == 0 {
			// Wrapped past 1<<64-1: must be the last bucket.
			if i != NumHistBuckets-1 {
				t.Fatalf("bucket %d wrapped before the last bucket", i)
			}
		}
	}
	if histBucket(^uint64(0)) != NumHistBuckets-1 {
		t.Fatalf("histBucket(max uint64) = %d, want %d", histBucket(^uint64(0)), NumHistBuckets-1)
	}
}

// TestHistogramMergeAssociative: merging snapshots is exact integer
// arithmetic, so any grouping must yield identical results.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func() HistogramSnapshot {
		h := NewHistogram()
		for i := 0; i < 1000; i++ {
			h.Record(uint64(rng.Int63n(1 << 40)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatal("Merge is not associative")
	}

	ba := b // commutativity: b+a == a+b
	ba.Merge(a)
	ab := a
	ab.Merge(b)
	if ab != ba {
		t.Fatal("Merge is not commutative")
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; with exact totals the only nondeterminism the race
// detector can flag is a real bug.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(uint64(rng.Int63n(1 << 32)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != Count %d", bucketSum, s.Count)
	}
}

// TestHistogramNilAndEmpty: nil histograms and empty snapshots are
// inert, matching the nil-Sink disabled mode.
func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Record(42) // must not panic
	h.RecordSince(time.Now())
	h.RecordElapsed(time.Second)
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
}

// quantileLadder is the fixed percentile set the open-loop harness and
// every exporter report, in ascending order.
var quantileLadder = []float64{0.5, 0.9, 0.99, 0.999, 1}

// checkMonotone asserts p50 <= p90 <= p99 <= p99.9 <= max on a
// snapshot — the invariant every latency report leans on.
func checkMonotone(t *testing.T, label string, s HistogramSnapshot) {
	t.Helper()
	prev := uint64(0)
	for _, q := range quantileLadder {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("%s: Quantile(%v) = %d < previous %d (quantiles not monotone)", label, q, v, prev)
		}
		prev = v
	}
	if s.Count > 0 && prev != s.Max {
		t.Fatalf("%s: Quantile(1) = %d != Max %d", label, prev, s.Max)
	}
}

// TestHistogramQuantileMonotoneAdversarial drives the quantile ladder
// over the distributions most likely to break a bucketed nearest-rank
// implementation: bimodal with the mass split across distant octaves
// (the open-loop saturation shape — a fast mode and a stalled tail),
// a single sample, every sample identical at a bucket edge, and a
// uint64-max spike.
func TestHistogramQuantileMonotoneAdversarial(t *testing.T) {
	cases := map[string]func(h *Histogram){
		"bimodal": func(h *Histogram) {
			for i := 0; i < 9000; i++ {
				h.Record(1_000) // fast mode: ~1µs
			}
			for i := 0; i < 1000; i++ {
				h.Record(500_000_000) // stalled tail: 500ms
			}
		},
		"single-sample": func(h *Histogram) { h.Record(12345) },
		"single-zero":   func(h *Histogram) { h.Record(0) },
		"all-max": func(h *Histogram) {
			for i := 0; i < 100; i++ {
				h.Record(^uint64(0))
			}
		},
		"all-identical-bucket-edge": func(h *Histogram) {
			for i := 0; i < 1000; i++ {
				h.Record(1 << 20)
			}
		},
		"max-plus-noise": func(h *Histogram) {
			h.Record(^uint64(0))
			for i := 0; i < 1000; i++ {
				h.Record(uint64(i))
			}
		},
	}
	for name, fill := range cases {
		h := NewHistogram()
		fill(h)
		s := h.Snapshot()
		checkMonotone(t, name, s)
		// Upper quantiles are clamped to Max, never past it.
		if s.Quantile(0.999) > s.Max {
			t.Fatalf("%s: p99.9 %d exceeds Max %d", name, s.Quantile(0.999), s.Max)
		}
	}
	// Degenerate shapes with exact expectations.
	h := NewHistogram()
	h.Record(12345)
	if got := h.Snapshot().Quantile(0.5); got != 12345 {
		t.Fatalf("single sample: p50 = %d, want the sample itself (clamped to Max)", got)
	}
	h = NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(^uint64(0))
	}
	// Mid-ladder quantiles report the bucket midpoint, so they sit
	// below Max but within the documented 1/16 relative error; q >= 1
	// short-circuits to the exact Max.
	max := ^uint64(0)
	for _, q := range quantileLadder {
		got := h.Snapshot().Quantile(q)
		if got > max {
			t.Fatalf("all-max: Quantile(%v) = %d exceeds Max", q, got)
		}
		if rel := (float64(max) - float64(got)) / float64(max); rel > 1.0/16 {
			t.Fatalf("all-max: Quantile(%v) = %d, relative error %f > 1/16", q, got, rel)
		}
	}
	if got := h.Snapshot().Quantile(1); got != max {
		t.Fatalf("all-max: Quantile(1) = %d, want exact Max", got)
	}
}

// TestHistogramMergeThenQuantileEqualsRecordThenQuantile: recording a
// stream into one histogram and recording its shards into separate
// histograms merged afterwards must agree — exactly on bucket counts,
// and within the documented 1/16 relative error on every quantile
// (exact here, since identical buckets yield identical representatives;
// the bound is asserted anyway to pin the documented contract). This
// is the property the open-loop harness and the daemon lean on when
// they merge per-consumer histograms at scrape time.
func TestHistogramMergeThenQuantileEqualsRecordThenQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewHistogram()
	const shards = 5
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	for i := 0; i < 50000; i++ {
		// The open-loop recording shape: mostly a tight service-time
		// mode, a heavy tail when the schedule falls behind.
		v := uint64(rng.Int63n(4_000)) + 500
		if rng.Intn(100) == 0 {
			v = uint64(rng.Int63n(1_000_000_000))
		}
		whole.Record(v)
		parts[rng.Intn(shards)].Record(v)
	}
	var merged HistogramSnapshot
	for _, p := range parts {
		merged.Merge(p.Snapshot())
	}
	direct := whole.Snapshot()
	if merged != direct {
		t.Fatal("merge-then-snapshot differs from record-then-snapshot on identical input")
	}
	for _, q := range quantileLadder {
		if rel := relErr(merged.Quantile(q), direct.Quantile(q)); rel > 1.0/16+1e-9 {
			t.Fatalf("Quantile(%v): merged %d vs direct %d, rel err %f", q, merged.Quantile(q), direct.Quantile(q), rel)
		}
	}
	checkMonotone(t, "merged", merged)
}

// TestHistogramRecordHelpers pins the two timestamp helpers: elapsed
// durations land in a plausible bucket, and negative elapsed (a
// completion ahead of its intended schedule stamp) clamps to zero
// instead of wrapping to a huge unsigned value — the wraparound would
// silently blow up every upper quantile.
func TestHistogramRecordHelpers(t *testing.T) {
	h := NewHistogram()
	h.RecordElapsed(-time.Second)
	if s := h.Snapshot(); s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative elapsed must clamp to 0: %+v count=%d max=%d", s, s.Count, s.Max)
	}
	h = NewHistogram()
	h.RecordElapsed(1500 * time.Nanosecond)
	if s := h.Snapshot(); s.Count != 1 || s.Max != 1500 {
		t.Fatalf("RecordElapsed(1.5µs): count=%d max=%d, want 1/1500", s.Count, s.Max)
	}
	h = NewHistogram()
	start := time.Now().Add(-time.Millisecond) // elapsed >= 1ms by construction
	h.RecordSince(start)
	s := h.Snapshot()
	if s.Count != 1 || s.Max < uint64(time.Millisecond) {
		t.Fatalf("RecordSince: count=%d max=%d, want >= 1ms in ns", s.Count, s.Max)
	}
}
