// Package benchfmt defines wcqbench/v1, the machine-readable result
// format shared by cmd/wcqbench (one File per run, pretty-printed) and
// cmd/wcqstressd (one File per snapshot interval, appended as JSON
// Lines). Keeping the schema in one place means the daemon's live
// snapshots and the bench's figure tables stay comparable point for
// point, and the CI smoke can validate either with the same code.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
)

// Schema is the format identifier stamped into every File.
const Schema = "wcqbench/v1"

// File is one wcqbench/v1 record: a run header plus one Point per
// (figure, queue, threads) — or, for daemon snapshots, per workload.
type File struct {
	Schema     string  `json:"schema"`
	Time       string  `json:"time"` // RFC 3339
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Ops        int     `json:"ops"`
	Reps       int     `json:"reps"`
	Points     []Point `json:"points"`
}

// Point is one measurement. The bench keys points by
// (figure, queue, threads[, batch|burst]); the daemon stamps the
// figure "live" and reuses the same axes for its rolling interval.
type Point struct {
	Figure   string  `json:"figure"`
	Queue    string  `json:"queue"`
	Threads  int     `json:"threads"`
	Batch    int     `json:"batch,omitempty"`
	Burst    int     `json:"burst,omitempty"`
	MopsMin  float64 `json:"mops_min,omitempty"`
	MopsMean float64 `json:"mops_mean,omitempty"`
	// MopsMax is the best rep's throughput: the noise-robust estimator
	// the relative perf smokes compare, since a single scheduler stall
	// on a shared runner poisons a mean but not a max.
	MopsMax  float64 `json:"mops_max,omitempty"`
	MemoryMB float64 `json:"memory_mb,omitempty"`
	// FootprintMB is the queue's own Footprint() after the run: the
	// real summed allocation of the sharded compositions and the
	// post-run retention of the unbounded queues (see harness.Point).
	FootprintMB float64 `json:"footprint_mb,omitempty"`
	// Load is the offered-load fraction of the queue's calibrated
	// closed-loop capacity (open-loop figure l1 points only; 0
	// otherwise). 1.0 is the saturation knee by construction.
	Load float64 `json:"load,omitempty"`
	// OfferedMops is the open-loop arrival rate in millions of
	// transfers per second that Load resolved to on this host.
	OfferedMops float64 `json:"offered_mops,omitempty"`
	// Latency carries the coordinated-omission-safe end-to-end latency
	// percentiles of an open-loop point (enqueue intended-time to
	// dequeue) — or, on wait-strategy (w1) points, the blocking-wait
	// ladder (spin-phase hits and futex parks) — in microseconds. Nil
	// on closed-loop points.
	Latency *LatencyUS `json:"latency_us,omitempty"`
	// Wait names the blocking-wait strategy a wait-strategy figure
	// point ran under ("park", "adaptive", "spin"); empty elsewhere.
	Wait string `json:"wait,omitempty"`
	// SpinHitRate is the fraction of blocking waits resolved in the
	// spin/yield phases without parking, in [0, 1] (wait-strategy
	// points only).
	SpinHitRate float64 `json:"spin_hit_rate,omitempty"`
	// Producers/Consumers record the explicit blocking role split of a
	// handoff (h1) point; 0 elsewhere (the split is then derived from
	// Threads).
	Producers int `json:"producers,omitempty"`
	Consumers int `json:"consumers,omitempty"`
	// Handoff names the direct-handoff setting a handoff-figure point
	// ran under ("on", "off"); empty elsewhere.
	Handoff string `json:"handoff,omitempty"`
	// HandoffRate is the fraction of handoff attempts that delivered a
	// value past the ring, in [0, 1] (handoff points only).
	HandoffRate float64 `json:"handoff_rate,omitempty"`
	Err         string  `json:"error,omitempty"`
}

// LatencyUS is the fixed percentile ladder every latency-carrying
// point reports, in microseconds. Values come from a log-bucketed
// metrics.Histogram, so each percentile carries its documented <=1/16
// relative error and Max is exact.
type LatencyUS struct {
	// P50, P90, P99 and P999 are the 50th/90th/99th/99.9th latency
	// percentiles in microseconds.
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	// Max is the largest observed latency in microseconds (exact).
	Max float64 `json:"max"`
	// Count is the number of recorded operations behind the ladder.
	Count uint64 `json:"count"`
}

// NewLatencyUS flattens a nanosecond histogram snapshot into the
// wcqbench/v1 microsecond percentile ladder; an empty snapshot yields
// nil, so callers can assign the result straight into Point.Latency.
func NewLatencyUS(h metrics.HistogramSnapshot) *LatencyUS {
	if h.Count == 0 {
		return nil
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	return &LatencyUS{
		P50:   us(h.Quantile(0.50)),
		P90:   us(h.Quantile(0.90)),
		P99:   us(h.Quantile(0.99)),
		P999:  us(h.Quantile(0.999)),
		Max:   us(h.Max),
		Count: h.Count,
	}
}

// validate checks the ladder invariants: a non-empty sample and
// percentiles that are nonnegative and monotone up to Max.
func (l *LatencyUS) validate() error {
	if l.Count == 0 {
		return fmt.Errorf("latency ladder with zero count")
	}
	prev, prevName := 0.0, "0"
	for _, p := range []struct {
		name string
		v    float64
	}{{"p50", l.P50}, {"p90", l.P90}, {"p99", l.P99}, {"p999", l.P999}, {"max", l.Max}} {
		if p.v < prev {
			return fmt.Errorf("latency %s %f < %s %f (percentiles not monotone)", p.name, p.v, prevName, prev)
		}
		prev, prevName = p.v, p.name
	}
	return nil
}

// New returns a File with the run header stamped (schema, wall time,
// GOMAXPROCS, CPU count) and no points yet.
func New(ops, reps int) File {
	return File{
		Schema:     Schema,
		Time:       time.Now().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Ops:        ops,
		Reps:       reps,
	}
}

// Validate checks the structural invariants every wcqbench/v1 consumer
// relies on: the schema tag, a parseable RFC 3339 timestamp, a sane
// header, and points that name their figure and queue with a positive
// thread count. Points carrying an error are exempt from the
// measurement checks — an errored point records that the queue could
// not run (e.g. LCRQ under emulation), not a measurement.
func (f *File) Validate() error {
	if f.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", f.Schema, Schema)
	}
	if _, err := time.Parse(time.RFC3339, f.Time); err != nil {
		return fmt.Errorf("benchfmt: bad timestamp %q: %w", f.Time, err)
	}
	if f.GoMaxProcs < 1 || f.NumCPU < 1 {
		return fmt.Errorf("benchfmt: implausible host header (gomaxprocs %d, num_cpu %d)",
			f.GoMaxProcs, f.NumCPU)
	}
	for i, p := range f.Points {
		if p.Figure == "" || p.Queue == "" {
			return fmt.Errorf("benchfmt: point %d missing figure or queue: %+v", i, p)
		}
		if p.Threads < 1 {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has thread count %d",
				i, p.Figure, p.Queue, p.Threads)
		}
		if p.Err != "" {
			continue
		}
		if p.MopsMean < 0 || p.MopsMin < 0 || p.MopsMin > p.MopsMean {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has inconsistent throughput (min %f, mean %f)",
				i, p.Figure, p.Queue, p.MopsMin, p.MopsMean)
		}
		// MopsMax is optional (older logs omit it), but when present it
		// must bound the mean from above.
		if p.MopsMax != 0 && p.MopsMax < p.MopsMean {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has inconsistent throughput (mean %f, max %f)",
				i, p.Figure, p.Queue, p.MopsMean, p.MopsMax)
		}
		if p.Load < 0 || p.OfferedMops < 0 {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has negative offered load (load %f, offered %f)",
				i, p.Figure, p.Queue, p.Load, p.OfferedMops)
		}
		if p.SpinHitRate < 0 || p.SpinHitRate > 1 {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has spin-hit rate %f outside [0, 1]",
				i, p.Figure, p.Queue, p.SpinHitRate)
		}
		if p.HandoffRate < 0 || p.HandoffRate > 1 {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has handoff rate %f outside [0, 1]",
				i, p.Figure, p.Queue, p.HandoffRate)
		}
		if p.Producers < 0 || p.Consumers < 0 {
			return fmt.Errorf("benchfmt: point %d (%s/%s) has negative role split (%d:%d)",
				i, p.Figure, p.Queue, p.Producers, p.Consumers)
		}
		if p.Latency != nil {
			if err := p.Latency.validate(); err != nil {
				return fmt.Errorf("benchfmt: point %d (%s/%s): %w", i, p.Figure, p.Queue, err)
			}
		}
	}
	return nil
}

// Append validates f and appends it to path as one compact JSON line
// (the daemon's snapshot log format: one File per interval).
func Append(path string, f File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	out, err := json.Marshal(f)
	if err != nil {
		return err
	}
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	_, err = fh.Write(append(out, '\n'))
	return err
}

// ValidateStream reads JSON-Lines wcqbench/v1 records from r,
// validating each, and returns how many it saw. It is the CI-smoke
// side of Append: a snapshot log passes iff every line parses and
// validates. Blank lines are skipped.
func ValidateStream(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f File
		if err := json.Unmarshal(line, &f); err != nil {
			return n, fmt.Errorf("benchfmt: record %d does not parse: %w", n+1, err)
		}
		if err := f.Validate(); err != nil {
			return n, fmt.Errorf("benchfmt: record %d: %w", n+1, err)
		}
		n++
	}
	return n, sc.Err()
}

// ValidateFile runs ValidateStream over the file at path.
func ValidateFile(path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	return ValidateStream(fh)
}
