package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validFile() File {
	f := New(1000, 3)
	f.Points = []Point{
		{Figure: "p2", Queue: "wCQ", Threads: 4, Batch: 32, MopsMin: 1.5, MopsMean: 2.0},
		{Figure: "p2", Queue: "LCRQ", Threads: 4, Err: "not available without CAS2"},
		{Figure: "l1", Queue: "Chan", Threads: 4, Load: 0.5, OfferedMops: 1.2,
			MopsMin: 2.4, MopsMean: 2.4,
			Latency: &LatencyUS{P50: 2.1, P90: 4.5, P99: 11.0, P999: 40.2, Max: 210.5, Count: 100000}},
	}
	return f
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	f := validFile()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"wrong schema", func(f *File) { f.Schema = "wcqbench/v0" }},
		{"bad time", func(f *File) { f.Time = "yesterday" }},
		{"zero gomaxprocs", func(f *File) { f.GoMaxProcs = 0 }},
		{"unnamed point", func(f *File) { f.Points[0].Queue = "" }},
		{"zero threads", func(f *File) { f.Points[0].Threads = 0 }},
		{"min above mean", func(f *File) { f.Points[0].MopsMin = 3 }},
		{"negative load", func(f *File) { f.Points[2].Load = -0.5 }},
		{"negative offered", func(f *File) { f.Points[2].OfferedMops = -1 }},
		{"latency ladder not monotone", func(f *File) { f.Points[2].Latency.P99 = 1.0 }},
		{"latency max below p999", func(f *File) { f.Points[2].Latency.Max = 0 }},
		{"latency without samples", func(f *File) { f.Points[2].Latency.Count = 0 }},
		{"negative latency", func(f *File) {
			f.Points[2].Latency = &LatencyUS{P50: -1, P90: 1, P99: 2, P999: 3, Max: 4, Count: 1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile()
			tc.mutate(&f)
			if err := f.Validate(); err == nil {
				t.Fatal("validation passed on a malformed file")
			}
		})
	}
}

func TestAppendAndValidateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshots.jsonl")
	for i := 0; i < 3; i++ {
		if err := Append(path, validFile()); err != nil {
			t.Fatal(err)
		}
	}
	n, err := ValidateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("validated %d records, want 3", n)
	}
}

func TestAppendRefusesInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshots.jsonl")
	f := validFile()
	f.Schema = "nope"
	if err := Append(path, f); err == nil {
		t.Fatal("Append accepted an invalid file")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Append wrote a record it should have refused")
	}
}

func TestValidateStreamRejectsGarbageLine(t *testing.T) {
	if _, err := ValidateStream(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage line validated")
	}
}
