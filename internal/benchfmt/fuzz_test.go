package benchfmt

import (
	"encoding/json"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// randFile generates a structurally valid wcqbench/v1 File from a
// seeded PRNG: the property tests sweep the record space Append can
// actually produce (closed-loop, batch, burst, errored and open-loop
// latency points) far wider than the handwritten fixtures.
func randFile(rng *rand.Rand) File {
	f := New(rng.Intn(1_000_000)+1, rng.Intn(10)+1)
	figures := []string{"10a", "11b", "p2", "u1", "b1", "l1", "live"}
	queues := []string{"wCQ", "SCQ", "Chan", "ChanSharded", "UWCQ"}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		p := Point{
			Figure:  figures[rng.Intn(len(figures))],
			Queue:   queues[rng.Intn(len(queues))],
			Threads: rng.Intn(72) + 1,
		}
		switch rng.Intn(4) {
		case 0: // errored point: measurements are exempt
			p.Err = "not available"
		case 1: // batch/burst closed-loop point
			p.Batch = rng.Intn(128)
			p.Burst = rng.Intn(1 << 18)
			p.MopsMean = rng.Float64() * 40
			p.MopsMin = p.MopsMean * rng.Float64()
			p.MemoryMB = rng.Float64() * 16
			p.FootprintMB = rng.Float64() * 16
		case 2: // open-loop latency point, ladder built the way the
			// harness builds it: through a real histogram, so the
			// percentile invariants hold by construction
			h := metrics.NewHistogram()
			for j, m := 0, rng.Intn(1000)+1; j < m; j++ {
				h.Record(uint64(rng.Int63n(1 << 30)))
			}
			p.Load = rng.Float64() * 1.2
			p.OfferedMops = rng.Float64() * 8
			p.MopsMean = rng.Float64() * 8
			p.MopsMin = p.MopsMean
			p.Latency = NewLatencyUS(h.Snapshot())
		case 3: // plain throughput point
			p.MopsMean = rng.Float64() * 40
			p.MopsMin = p.MopsMean
		}
		f.Points = append(f.Points, p)
	}
	return f
}

// TestAppendValidateRoundTripProperty: every record Append writes must
// come back out of ValidateFile — across a wide sweep of generated
// files, byte-for-byte through the real JSONL path on disk.
func TestAppendValidateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	path := filepath.Join(t.TempDir(), "prop.jsonl")
	const rounds = 64
	for i := 0; i < rounds; i++ {
		if err := Append(path, randFile(rng)); err != nil {
			t.Fatalf("round %d: Append refused a generated-valid file: %v", i, err)
		}
	}
	n, err := ValidateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != rounds {
		t.Fatalf("validated %d records, want %d", n, rounds)
	}
}

// TestValidateStreamToleratesUnknownFields: forward compatibility —
// a reader at schema v1 must accept records that carry fields added
// later (exactly how the latency_us fields themselves arrived), both
// at the top level and inside points.
func TestValidateStreamToleratesUnknownFields(t *testing.T) {
	f := validFile()
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSuffix(string(raw), "}") +
		`,"future_header_field":{"a":1}}`
	line = strings.Replace(line,
		`"figure":"p2"`, `"figure":"p2","future_point_field":[1,2,3]`, 1)
	n, err := ValidateStream(strings.NewReader(line + "\n"))
	if err != nil {
		t.Fatalf("unknown fields rejected: %v", err)
	}
	if n != 1 {
		t.Fatalf("validated %d records, want 1", n)
	}
}

// TestValidateStreamRejectsMalformedLines: truncated JSON, bare
// garbage, a valid JSON value of the wrong shape, and a schema-less
// object must all fail with a record-numbered error, not pass or
// panic.
func TestValidateStreamRejectsMalformedLines(t *testing.T) {
	good, err := json.Marshal(validFile())
	if err != nil {
		t.Fatal(err)
	}
	for name, line := range map[string]string{
		"truncated":    string(good[:len(good)/2]),
		"garbage":      "][;not json at all",
		"wrong shape":  `"just a string"`,
		"empty object": `{}`,
		"null":         `null`,
	} {
		in := string(good) + "\n" + line + "\n"
		n, err := ValidateStream(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: malformed second line validated", name)
			continue
		}
		if n != 1 || !strings.Contains(err.Error(), "record 2") {
			t.Errorf("%s: error should implicate record 2 after 1 good record, got n=%d err=%v", name, n, err)
		}
	}
}

// TestNewLatencyUS pins the snapshot flattening: nanoseconds become
// microseconds, the ladder is monotone, and an empty snapshot yields
// nil rather than a zero ladder that would fail validation.
func TestNewLatencyUS(t *testing.T) {
	if l := NewLatencyUS(metrics.HistogramSnapshot{}); l != nil {
		t.Fatalf("empty snapshot produced a ladder: %+v", l)
	}
	h := metrics.NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(2_000) // 2µs
	}
	h.Record(3_000_000) // one 3ms outlier
	l := NewLatencyUS(h.Snapshot())
	if l == nil || l.Count != 1001 {
		t.Fatalf("ladder %+v, want count 1001", l)
	}
	if l.Max != 3000 {
		t.Fatalf("Max = %f µs, want exact 3000", l.Max)
	}
	if l.P50 < 1 || l.P50 > 3 {
		t.Fatalf("P50 = %f µs, want ~2 (within 1/16 relative error)", l.P50)
	}
	if err := l.validate(); err != nil {
		t.Fatal(err)
	}
}

// FuzzValidateStream throws arbitrary bytes at the JSONL reader: it
// must never panic, must never accept a line json.Unmarshal cannot
// round-trip, and on files it reports valid, a re-marshal of each
// parsed record must validate again (idempotence).
func FuzzValidateStream(f *testing.F) {
	good, err := json.Marshal(validFile())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(good) + "\n")
	f.Add(string(good) + "\n" + string(good) + "\n")
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"schema":"wcqbench/v1"}`)
	f.Add("{not json}\n")
	f.Add(`{"schema":"wcqbench/v1","time":"` + time.Now().Format(time.RFC3339) +
		`","gomaxprocs":1,"num_cpu":1,"ops":1,"reps":1,"points":[{"figure":"l1","queue":"Chan","threads":4,` +
		`"latency_us":{"p50":1,"p90":2,"p99":3,"p999":4,"max":5,"count":9}}]}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		n, err := ValidateStream(strings.NewReader(in))
		if err != nil {
			return
		}
		// The stream validated: every non-blank line must re-validate
		// after a parse/re-marshal round trip.
		count := 0
		for i, line := range strings.Split(in, "\n") {
			if len(line) == 0 {
				continue
			}
			var rec File
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("line %d: ValidateStream passed but Unmarshal fails: %v", i+1, err)
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("line %d: ValidateStream passed but Validate fails on the parsed record: %v", i+1, err)
			}
			re, err := json.Marshal(rec)
			if err != nil {
				t.Fatalf("line %d: re-marshal: %v", i+1, err)
			}
			if _, err := ValidateStream(strings.NewReader(string(re) + "\n")); err != nil {
				t.Fatalf("line %d: re-marshaled record no longer validates: %v", i+1, err)
			}
			count++
		}
		if count != n {
			t.Fatalf("ValidateStream counted %d records, re-scan found %d", n, count)
		}
	})
}
