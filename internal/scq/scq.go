// Package scq implements SCQ, the Scalable Circular Queue of Nikolaev
// (DISC '19), exactly as restated in Figure 3 of the wCQ paper
// (SPAA '22). SCQ is the lock-free substrate that wCQ extends with a
// wait-free slow path; it is also one of the evaluation baselines.
//
// A Ring is a bounded MPMC FIFO of small integer indices in [0, n).
// Following the paper it allocates 2n slots for n usable entries and
// maintains a Threshold of 3n-1 so that dequeuers detect emptiness in
// a lock-free way without ever closing the ring (the LCRQ approach) or
// needing helping (the YMC approach).
//
// Each 64-bit slot packs {Cycle, IsSafe, Index}:
//
//	bits [0, o)    Index      (o = log2(2n); holds ⊥ = 2n-2, ⊥c = 2n-1)
//	bit  o         IsSafe
//	bits (o, 63]   Cycle      (monotonic, 63-o bits — never wraps in practice)
//
// Queue[T] layers arbitrary fixed-size data on top of two Rings via the
// paper's Figure 2 indirection: fq holds free indices, aq holds
// allocated ones, and a plain data array carries the payloads.
package scq

import (
	"fmt"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/metrics"
	"repro/internal/pad"
	"repro/internal/ring"
)

// MaxCatchup bounds the catchup loop. In SCQ catchup is a pure
// performance optimization (the paper bounds it explicitly only in
// wCQ); we bound it here too so both variants share the property.
const MaxCatchup = 64

// Ring is a bounded lock-free MPMC queue of indices in [0, Cap()).
//
//wfq:isolate
type Ring struct {
	order   uint   //wfq:stable log2(nSlots)
	nSlots  uint64 //wfq:stable 2n
	n       uint64 //wfq:stable usable capacity
	posMask uint64 //wfq:stable nSlots-1
	idxMask uint64 //wfq:stable nSlots-1 (index field width == position width)
	bottom  uint64 //wfq:stable ⊥  = 2n-2: slot empty, never consumed this cycle
	bottomC uint64 //wfq:stable ⊥c = 2n-1: slot consumed
	thresh3 int64  //wfq:stable 3n-1
	emulate bool   //wfq:stable emulated-F&A modes (PowerPC-style CAS loops)

	met *metrics.Sink //wfq:stable nil = disabled; set via SetMetrics before sharing

	_         pad.Line
	tail      atomicx.Counter
	_         pad.Line
	head      atomicx.Counter
	_         pad.Line
	threshold atomic.Int64
	_         pad.Line

	entries []atomic.Uint64
}

// NewRing returns an empty Ring holding up to capacity indices, each in
// [0, capacity). capacity must be a power of two >= 2.
func NewRing(capacity uint64, mode atomicx.Mode) (*Ring, error) {
	if capacity < 2 || !ring.IsPow2(capacity) {
		return nil, fmt.Errorf("scq: capacity %d must be a power of two >= 2", capacity)
	}
	nSlots := 2 * capacity
	q := &Ring{
		order:   ring.Order(nSlots),
		nSlots:  nSlots,
		n:       capacity,
		posMask: nSlots - 1,
		idxMask: nSlots - 1,
		bottom:  nSlots - 2,
		bottomC: nSlots - 1,
		thresh3: int64(3*capacity - 1),
		emulate: mode.Emulated(),
		entries: make([]atomic.Uint64, nSlots),
	}
	q.tail.Init(mode, nSlots) // start at cycle 1 so entries at cycle 0 read "old"
	q.head.Init(mode, nSlots)
	q.threshold.Store(-1) // empty
	empty := q.pack(0, 1, q.bottom)
	for i := range q.entries {
		q.entries[i].Store(empty)
	}
	return q, nil
}

// NewFullRing returns a Ring pre-filled with the indices 0..capacity-1
// in order, the state a free-index ring (fq) starts in.
func NewFullRing(capacity uint64, mode atomicx.Mode) (*Ring, error) {
	q, err := NewRing(capacity, mode)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < capacity; i++ {
		// Single-threaded: the fast path cannot fail.
		for t, ok := q.TryEnqueue(i); !ok; t, ok = q.TryEnqueue(i) {
			_ = t
		}
	}
	return q, nil
}

// Cap returns the usable capacity n.
//
//wfq:noalloc
func (q *Ring) Cap() uint64 { return q.n }

// SetMetrics points the ring at a metrics sink (nil disables). Must be
// called before the ring is shared; the field is read-only afterwards.
func (q *Ring) SetMetrics(m *metrics.Sink) { q.met = m }

// Metrics returns the sink this ring records into (nil when disabled).
//
//wfq:noalloc
func (q *Ring) Metrics() *metrics.Sink { return q.met }

// Footprint returns the statically allocated size of the ring in bytes
// (used by the Figure 10a memory-usage reproduction).
//
//wfq:noalloc
func (q *Ring) Footprint() uint64 {
	return uint64(len(q.entries))*8 + 4*pad.CacheLineSize
}

// pack assembles an entry word from cycle, safe bit and index.
//
//wfq:noalloc
func (q *Ring) pack(cycle, safe, index uint64) uint64 {
	return cycle<<(q.order+1) | safe<<q.order | index
}

//wfq:noalloc
func (q *Ring) unpack(w uint64) (cycle, safe, index uint64) {
	return w >> (q.order + 1), w >> q.order & 1, w & q.idxMask
}

// cycleOf maps a Head/Tail counter value to its ring cycle.
//
//wfq:noalloc
func (q *Ring) cycleOf(c uint64) uint64 { return c >> q.order }

// thresholdFAA atomically adds d to Threshold and returns the PREVIOUS
// value, honoring the emulated-F&A mode.
//
//wfq:noalloc
func (q *Ring) thresholdFAA(d int64) int64 {
	if !q.emulate {
		return q.threshold.Add(d) - d
	}
	for {
		old := q.threshold.Load()
		if q.threshold.CompareAndSwap(old, old+d) {
			return old
		}
	}
}

// entryOr ORs bits into an entry word, honoring the emulated mode the
// same way consume() does in the paper (§3.3: OR may be emulated with
// CAS on architectures that lack it).
//
//wfq:noalloc
func (q *Ring) entryOr(e *atomic.Uint64, bits uint64) {
	if !q.emulate {
		e.Or(bits)
		return
	}
	for {
		old := e.Load()
		if old&bits == bits {
			return
		}
		if e.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// Drained reports whether the head counter has caught the tail
// counter, i.e. every issued enqueue ticket has been examined by a
// dequeuer.
//
//wfq:noalloc
func (q *Ring) Drained() bool { return q.head.Load() >= q.tail.Load() }

// enqueueAt runs the per-slot half of try_enq for an already-reserved
// Tail ticket t: the slot examination and the entry CAS, without the
// F&A and without the threshold reset (the callers own both, so the
// batch path can amortize them across a whole reservation).
//
//wfq:noalloc
func (q *Ring) enqueueAt(t, index uint64) bool {
	tCycle := q.cycleOf(t)
	bottom, bottomC := q.bottom, q.bottomC // hoisted: loop-invariant (//wfq:stable)
	e := &q.entries[ring.Remap(t&q.posMask, q.order)]
	for {
		w := e.Load()
		eCycle, safe, idx := q.unpack(w)
		if eCycle < tCycle &&
			(idx == bottom || idx == bottomC) &&
			(safe == 1 || q.head.Load() <= t) {
			if !e.CompareAndSwap(w, q.pack(tCycle, 1, index)) {
				continue // the entry changed; re-examine it
			}
			return true
		}
		return false
	}
}

// resetThreshold performs the post-enqueue threshold reset (the load
// avoids a shared write when the threshold is already pegged, which
// also keeps the reset counter to genuine re-arms).
//
//wfq:noalloc
func (q *Ring) resetThreshold() {
	if q.threshold.Load() != q.thresh3 {
		q.threshold.Store(q.thresh3)
		q.met.Inc(metrics.ThresholdReset)
	}
}

// TryEnqueue performs one fast-path enqueue attempt (try_enq in
// Fig. 3). On failure it returns the Tail ticket it consumed, which the
// wait-free layer uses to seed its slow path; SCQ itself just retries.
//
//wfq:noalloc
func (q *Ring) TryEnqueue(index uint64) (ticket uint64, ok bool) {
	t := q.tail.Add(1)
	if q.enqueueAt(t, index) {
		q.resetThreshold()
		return 0, true
	}
	return t, false
}

// Enqueue inserts index, retrying the fast path until it succeeds.
// Like the paper's Enqueue_SCQ it never reports "full": the intended
// usage (aq/fq index rings) guarantees at most n live indices. SCQ has
// no helped slow path, so "slow" here means leaving the one-attempt
// fast path and entering the retry regime — the lock-free analogue of
// wCQ's patience exhaustion, counted once per operation.
//
//wfq:noalloc
func (q *Ring) Enqueue(index uint64) {
	if _, ok := q.TryEnqueue(index); ok {
		return
	}
	q.met.Inc(metrics.EnqSlowPath)
	for {
		if _, ok := q.TryEnqueue(index); ok {
			return
		}
	}
}

// Deq status codes shared with the wait-free layer.
type deqStatus uint8

const (
	deqRetry deqStatus = iota
	deqGot
	deqEmpty
)

// dequeueAt runs the per-slot half of try_deq for an already-reserved
// Head ticket h: the consume attempt, the slot transition that keeps a
// passed position safe from late enqueuers, and the emptiness
// accounting. Every reserved Head ticket MUST pass through here —
// abandoning one without the slot transition would let a late
// enqueuer of the same cycle publish a value at a position Head has
// already passed, losing it.
//
//wfq:noalloc
func (q *Ring) dequeueAt(h uint64) (index uint64, st deqStatus) {
	hCycle := q.cycleOf(h)
	bottom, bottomC := q.bottom, q.bottomC // hoisted: loop-invariant (//wfq:stable)
	e := &q.entries[ring.Remap(h&q.posMask, q.order)]
	for {
		w := e.Load()
		eCycle, safe, idx := q.unpack(w)
		if eCycle == hCycle {
			// consume: set the index bits to ⊥c, keep cycle/safe.
			q.entryOr(e, bottomC)
			return idx, deqGot
		}
		var nw uint64
		if idx == bottom || idx == bottomC {
			nw = q.pack(hCycle, safe, bottom)
		} else {
			nw = q.pack(eCycle, 0, idx) // mark unsafe, keep the value
		}
		if eCycle < hCycle {
			if !e.CompareAndSwap(w, nw) {
				continue
			}
		}
		// Unable to consume at this position: check for emptiness.
		t := q.tail.Load()
		if t <= h+1 {
			q.catchup(t, h+1)
			q.thresholdFAA(-1)
			return 0, deqEmpty
		}
		if q.thresholdFAA(-1) <= 0 {
			return 0, deqEmpty
		}
		return 0, deqRetry
	}
}

// tryDequeue performs one fast-path dequeue attempt (try_deq in
// Fig. 3).
//
//wfq:noalloc
func (q *Ring) tryDequeue() (ticket, index uint64, st deqStatus) {
	h := q.head.Add(1)
	index, st = q.dequeueAt(h)
	return h, index, st
}

// Dequeue removes and returns the oldest index. ok is false when the
// queue is empty. The retry regime (first deqRetry status) is counted
// as the dequeue-side slow-path entry, once per operation.
//
//wfq:noalloc
func (q *Ring) Dequeue() (index uint64, ok bool) {
	if q.threshold.Load() < 0 {
		return 0, false
	}
	met := q.met // hoisted: loop-invariant (//wfq:stable)
	for slow := false; ; {
		_, idx, st := q.tryDequeue()
		switch st {
		case deqGot:
			return idx, true
		case deqEmpty:
			return 0, false
		}
		if !slow {
			slow = true
			met.Inc(metrics.DeqSlowPath)
		}
	}
}

// EnqueueBatch inserts the indices in order with a single Tail F&A
// reserving len(indices) consecutive tickets, then fills each reserved
// slot with the ordinary per-entry protocol (one uncontended CAS per
// slot on the fast path). A reserved ticket whose slot is unusable is
// abandoned exactly like a failed try_enq ticket; because the elements
// after it would otherwise overtake it, the remaining elements degrade
// to the scalar Enqueue loop in order, preserving per-caller FIFO.
// Like Enqueue it never reports full (aq/fq index-ring discipline).
//
// The threshold is reset once per contiguous fast-path run instead of
// once per element: the reserved tickets are consecutive, so once Head
// reaches the run's first element it consumes the rest with successful
// (non-decrementing) attempts — the first element's reset covers the
// whole run, and the scalar degrade path resets per element as usual.
//
//wfq:noalloc
func (q *Ring) EnqueueBatch(indices []uint64) {
	k := len(indices)
	if k == 0 {
		return
	}
	if k == 1 {
		q.Enqueue(indices[0])
		return
	}
	t0 := q.tail.Add(uint64(k))
	thReset := false
	met := q.met // hoisted: loop-invariant (//wfq:stable)
	for j, idx := range indices {
		if !q.enqueueAt(t0+uint64(j), idx) {
			// Unusable slot: the remaining reserved tickets are
			// abandoned (safe — identical to failed try_enq tickets)
			// and the rest of the batch takes the scalar path.
			met.Inc(metrics.BatchDegrade)
			for _, v := range indices[j:] {
				q.Enqueue(v)
			}
			return
		}
		if !thReset {
			q.resetThreshold()
			thReset = true
		}
	}
}

// DequeueBatch removes up to len(out) of the oldest indices with a
// single Head F&A reserving a run of tickets sized to the visible
// backlog, then runs the ordinary per-entry protocol on every reserved
// ticket (each one must be processed — see dequeueAt). It returns how
// many indices were written; 0 means the ring appeared empty. That
// contract is load-bearing (Chan parks on it), so when every reserved
// ticket lands in a transient retry state the batch falls back to the
// scalar Dequeue rather than reporting a spurious 0.
//
//wfq:noalloc
func (q *Ring) DequeueBatch(out []uint64) int {
	if len(out) == 0 || q.threshold.Load() < 0 {
		return 0
	}
	k := uint64(len(out))
	// Clamp the reservation to the visible backlog so an almost-empty
	// ring does not burn a run of empty-checking tickets. The snapshot
	// is racy; over-reservation is handled by the per-ticket protocol.
	t, h := q.tail.Load(), q.head.Load()
	if t <= h {
		idx, ok := q.Dequeue() // scalar probe with full empty accounting
		if !ok {
			return 0
		}
		out[0] = idx
		return 1
	}
	if backlog := t - h; backlog < k {
		k = backlog
	}
	if k == 1 {
		idx, ok := q.Dequeue()
		if !ok {
			return 0
		}
		out[0] = idx
		return 1
	}
	h0 := q.head.Add(k)
	filled := 0
	sawRetry := false
	for j := uint64(0); j < k; j++ {
		switch idx, st := q.dequeueAt(h0 + j); st {
		case deqGot:
			out[filled] = idx
			filled++
		case deqRetry:
			sawRetry = true
		}
	}
	if filled == 0 && sawRetry {
		q.met.Inc(metrics.BatchDegrade)
		// Every reserved ticket hit a transient state (e.g. the run of
		// tickets abandoned by a partially-degraded EnqueueBatch) while
		// values may sit at later tickets. The scalar path retries until
		// it consumes a value or proves emptiness, so 0 stays "empty".
		if idx, ok := q.Dequeue(); ok {
			out[0] = idx
			return 1
		}
	}
	return filled
}

// catchup advances Tail to Head when dequeuers have overrun all
// enqueuers (so that subsequent empty checks exit quickly). Bounded to
// MaxCatchup iterations; it is purely a performance aid.
//
//wfq:noalloc
func (q *Ring) catchup(tail, head uint64) {
	for i := 0; i < MaxCatchup; i++ {
		if q.tail.CompareAndSwap(tail, head) {
			return
		}
		head = q.head.Load()
		tail = q.tail.Load()
		if tail >= head {
			return
		}
	}
}

// Queue is a bounded lock-free MPMC queue of arbitrary values, built
// from two Rings and a data array via the paper's Figure 2 indirection.
type Queue[T any] struct {
	aq   *Ring
	fq   *Ring
	data []T

	// Sealing state for the unbounded (Appendix A) construction. An
	// enqueue registers in inflight BEFORE checking sealed; Drained
	// therefore implies no enqueue can ever land again.
	_        pad.Line
	sealed   atomic.Bool
	inflight atomic.Int64
	_        pad.Line
}

// NewQueue returns an empty Queue holding up to capacity values.
// capacity must be a power of two >= 2.
func NewQueue[T any](capacity uint64, mode atomicx.Mode) (*Queue[T], error) {
	aq, err := NewRing(capacity, mode)
	if err != nil {
		return nil, err
	}
	fq, err := NewFullRing(capacity, mode)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{aq: aq, fq: fq, data: make([]T, capacity)}, nil
}

// Enqueue appends v. It returns false when the queue is full.
//
//wfq:noalloc
func (q *Queue[T]) Enqueue(v T) bool {
	idx, ok := q.fq.Dequeue()
	if !ok {
		return false
	}
	q.data[idx] = v
	q.aq.Enqueue(idx)
	return true
}

// Seal closes the queue for enqueues: EnqueueSealed fails once the
// seal is visible. Dequeues drain the remaining elements normally.
//
//wfq:noalloc
func (q *Queue[T]) Seal() { q.sealed.Store(true) }

// Reset reopens a sealed queue for enqueues. It is only sound on a
// queue that is Drained and reachable by no other goroutine (the
// unbounded construction's ring recycling, where the retire handshake
// guarantees exclusivity); the rings' monotonic cycle counters carry
// on, so no other state needs rewinding.
//
//wfq:noalloc
func (q *Queue[T]) Reset() { q.sealed.Store(false) }

// Drained reports that no value can ever be produced by this queue
// again: it is sealed, no enqueue is in flight, and every enqueue
// ticket has been examined. The in-flight counter is incremented
// BEFORE the seal check in EnqueueSealed, so (with sequentially
// consistent atomics) observing sealed && inflight==0 proves any
// future EnqueueSealed will observe the seal and fail.
//
//wfq:noalloc
func (q *Queue[T]) Drained() bool {
	return q.sealed.Load() && q.inflight.Load() == 0 && q.aq.Drained()
}

// Empty reports that the queue held no value at some instant during
// the call: aq's head counter had caught up with its tail counter, so
// every enqueued value had been claimed by a dequeue. One-sided (a
// concurrent enqueue may land right after) — the guarantee the
// blocking facade's direct handoff needs to stay FIFO.
//
//wfq:noalloc
func (q *Queue[T]) Empty() bool { return q.aq.Drained() }

// EnqueueSealed appends v unless the queue is full or sealed.
//
//wfq:noalloc
func (q *Queue[T]) EnqueueSealed(v T) bool {
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.sealed.Load() {
		return false
	}
	return q.Enqueue(v)
}

// QueueHandle is a goroutine's view of a Queue. Unlike wCQ's handles
// it draws on no thread census — SCQ is census-free, and Register
// never fails — but like them it must not be shared between
// goroutines: it carries the per-handle index scratch the batch
// operations use, the same zero-allocation strategy as the wCQ
// payload layer (before this type, SCQ batches chunked through a
// 128-slot stack buffer instead — one reservation F&A per chunk; the
// handle pays one per whole batch).
type QueueHandle[T any] struct {
	q *Queue[T]
	// idxBuf carries index runs between fq, the data array and aq in
	// the batch operations. It grows to the largest batch this handle
	// has seen and is then reused forever, so the steady-state batch
	// hot path allocates nothing.
	idxBuf []uint64
}

// Register returns a fresh per-goroutine handle. SCQ has no thread
// census, so any number of handles may be created.
func (q *Queue[T]) Register() *QueueHandle[T] {
	return &QueueHandle[T]{q: q}
}

// scratch returns the handle's index buffer, grown to hold n entries
// but never past the ring capacity — at most Cap() indices can move
// per call, so a batch far larger than the ring must not pin a
// buffer sized to the batch (short counts are within the batch
// contract; the caller resumes with the remainder).
//
//wfq:allocok grows to ring capacity once per handle, then reused
func (h *QueueHandle[T]) scratch(n int) []uint64 {
	if c := int(h.q.Cap()); n > c {
		n = c
	}
	if cap(h.idxBuf) < n {
		h.idxBuf = make([]uint64, n)
	}
	return h.idxBuf[:n]
}

// Enqueue appends v; it returns false when the queue is full.
//
//wfq:noalloc
func (h *QueueHandle[T]) Enqueue(v T) bool { return h.q.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty.
//
//wfq:noalloc
func (h *QueueHandle[T]) Dequeue() (v T, ok bool) { return h.q.Dequeue() }

// EnqueueSealed appends v unless the queue is full or sealed.
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueSealed(v T) bool { return h.q.EnqueueSealed(v) }

// EnqueueBatch appends a prefix of vs in order and returns its length;
// a short count means the queue filled up mid-batch. Index traffic
// with fq/aq moves through the native ring batch operations: one
// reservation F&A per ring for the whole batch.
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	q := h.q
	buf := h.scratch(len(vs))
	n := q.fq.DequeueBatch(buf)
	for j := 0; j < n; j++ {
		q.data[buf[j]] = vs[j]
	}
	q.aq.EnqueueBatch(buf[:n])
	return n
}

// DequeueBatch fills a prefix of out with the oldest values and
// returns its length; 0 means the queue appeared empty.
//
//wfq:noalloc
func (h *QueueHandle[T]) DequeueBatch(out []T) int {
	if len(out) == 0 {
		return 0
	}
	q := h.q
	buf := h.scratch(len(out))
	n := q.aq.DequeueBatch(buf)
	var zero T
	for j := 0; j < n; j++ {
		idx := buf[j]
		out[j] = q.data[idx]
		q.data[idx] = zero // drop references for GC hygiene
	}
	q.fq.EnqueueBatch(buf[:n])
	return n
}

// EnqueueSealedBatch is EnqueueBatch unless the queue is sealed, in
// which case it appends nothing (the unbounded construction's batch
// enqueue rolls over to a fresh ring on a short count).
//
//wfq:noalloc
func (h *QueueHandle[T]) EnqueueSealedBatch(vs []T) int {
	q := h.q
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	if q.sealed.Load() {
		return 0
	}
	return h.EnqueueBatch(vs)
}

// Dequeue removes and returns the oldest value. ok is false when the
// queue is empty.
//
//wfq:noalloc
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	idx, ok := q.aq.Dequeue()
	if !ok {
		var zero T
		return zero, false
	}
	v = q.data[idx]
	var zero T
	q.data[idx] = zero // drop references for GC hygiene
	q.fq.Enqueue(idx)
	return v, true
}

// SetMetrics points both underlying rings at a metrics sink (nil
// disables). Must be called before the queue is shared.
func (q *Queue[T]) SetMetrics(m *metrics.Sink) {
	q.aq.SetMetrics(m)
	q.fq.SetMetrics(m)
}

// Metrics returns the sink the queue records into (nil when disabled).
//
//wfq:noalloc
func (q *Queue[T]) Metrics() *metrics.Sink { return q.aq.Metrics() }

// Cap returns the queue capacity.
//
//wfq:noalloc
func (q *Queue[T]) Cap() uint64 { return q.aq.n }

// Footprint returns the statically allocated byte size (rings + data
// array descriptor; excludes the payloads' own heap, which belongs to
// the caller).
//
//wfq:noalloc
func (q *Queue[T]) Footprint() uint64 {
	return q.aq.Footprint() + q.fq.Footprint() + uint64(cap(q.data))*8
}
