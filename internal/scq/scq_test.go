package scq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/atomicx"
)

func TestNewRingRejectsBadCapacity(t *testing.T) {
	for _, c := range []uint64{0, 1, 3, 6, 100} {
		if _, err := NewRing(c, atomicx.NativeFAA); err == nil {
			t.Errorf("capacity %d: expected error", c)
		}
	}
	if _, err := NewRing(8, atomicx.NativeFAA); err != nil {
		t.Errorf("capacity 8: unexpected error %v", err)
	}
}

func TestRingSequentialFIFO(t *testing.T) {
	q, _ := NewRing(8, atomicx.NativeFAA)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty ring succeeded")
	}
	for i := uint64(0); i < 8; i++ {
		q.Enqueue(i)
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue after drain succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	q, _ := NewRing(4, atomicx.NativeFAA)
	// Push the ring through many full cycles.
	for round := uint64(0); round < 1000; round++ {
		for i := uint64(0); i < 4; i++ {
			q.Enqueue((round + i) % 4)
		}
		for i := uint64(0); i < 4; i++ {
			v, ok := q.Dequeue()
			if !ok || v != (round+i)%4 {
				t.Fatalf("round %d: got (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestRingInterleaved(t *testing.T) {
	q, _ := NewRing(16, atomicx.NativeFAA)
	next := uint64(0)
	exp := uint64(0)
	for i := 0; i < 5000; i++ {
		q.Enqueue(next % 16)
		next++
		if i%3 == 0 {
			v, ok := q.Dequeue()
			if !ok || v != exp%16 {
				t.Fatalf("step %d: got (%d,%v), want %d", i, v, ok, exp%16)
			}
			exp++
		}
		if next-exp >= 16 { // never exceed capacity in this test
			v, ok := q.Dequeue()
			if !ok || v != exp%16 {
				t.Fatalf("drain at %d: got (%d,%v)", i, v, ok)
			}
			exp++
		}
	}
}

func TestNewFullRing(t *testing.T) {
	q, err := NewFullRing(8, atomicx.NativeFAA)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("full ring held more than capacity")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	q, _ := NewRing(32, atomicx.NativeFAA)
	f := func(cycle uint32, safe bool, idx uint8) bool {
		c := uint64(cycle)
		s := uint64(0)
		if safe {
			s = 1
		}
		i := uint64(idx) & q.idxMask
		gc, gs, gi := q.unpack(q.pack(c, s, i))
		return gc == c && gs == s && gi == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdResetOnEnqueue(t *testing.T) {
	q, _ := NewRing(8, atomicx.NativeFAA)
	if q.threshold.Load() != -1 {
		t.Fatalf("initial threshold %d, want -1", q.threshold.Load())
	}
	q.Enqueue(1)
	if got := q.threshold.Load(); got != q.thresh3 {
		t.Fatalf("threshold after enqueue %d, want %d", got, q.thresh3)
	}
	q.Dequeue()
	// Repeated failed dequeues must drive threshold negative again.
	for i := 0; i < int(q.thresh3)+2; i++ {
		q.Dequeue()
	}
	if q.threshold.Load() >= 0 {
		t.Fatalf("threshold %d after exhausting empty dequeues", q.threshold.Load())
	}
}

func TestEmptyDequeueCheap(t *testing.T) {
	q, _ := NewRing(8, atomicx.NativeFAA)
	q.Enqueue(0)
	q.Dequeue()
	for i := 0; i < 100; i++ {
		q.Dequeue()
	}
	h0 := q.head.Load()
	// Once threshold is negative, empty dequeues must not touch Head.
	for i := 0; i < 100; i++ {
		if _, ok := q.Dequeue(); ok {
			t.Fatal("phantom element")
		}
	}
	if q.head.Load() != h0 {
		t.Fatalf("empty dequeues advanced Head by %d", q.head.Load()-h0)
	}
}

// mpmcRing exercises a Ring with p producers and c consumers moving
// total indices through it, checking that every enqueued ticket comes
// out exactly once.
func mpmcRing(t *testing.T, mode atomicx.Mode, p, c, total int) {
	t.Helper()
	const capacity = 64
	q, _ := NewRing(capacity, mode)
	// Tokens are recycled through a counting semaphore so the ring
	// never holds more than its capacity.
	slots := make(chan struct{}, capacity)
	for i := 0; i < capacity; i++ {
		slots <- struct{}{}
	}
	var produced, consumed [capacity]atomicCounter
	var wg sync.WaitGroup
	perProducer := total / p
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				<-slots
				idx := uint64(i % capacity)
				produced[idx].add(1)
				q.Enqueue(idx)
			}
		}()
	}
	var consumedTotal atomicCounter
	want := int64(p * perProducer)
	for g := 0; g < c; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if consumedTotal.load() >= want {
					return
				}
				idx, ok := q.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				consumed[idx].add(1)
				consumedTotal.add(1)
				slots <- struct{}{}
			}
		}()
	}
	wg.Wait()
	for i := range produced {
		if produced[i].load() != consumed[i].load() {
			t.Errorf("index %d: produced %d consumed %d", i, produced[i].load(), consumed[i].load())
		}
	}
}

func TestRingMPMC(t *testing.T) {
	for _, mode := range []atomicx.Mode{atomicx.NativeFAA, atomicx.EmulatedFAA} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			mpmcRing(t, mode, 4, 4, 20000)
		})
	}
}

func TestQueueSequential(t *testing.T) {
	q, err := NewQueue[string](4, atomicx.NativeFAA)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for _, s := range []string{"a", "b", "c", "d"} {
		if !q.Enqueue(s) {
			t.Fatalf("enqueue %q failed", s)
		}
	}
	if q.Enqueue("overflow") {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("got (%q,%v), want %q", v, ok, want)
		}
	}
}

func TestQueueFullEmptyCycles(t *testing.T) {
	q, _ := NewQueue[int](8, atomicx.NativeFAA)
	for round := 0; round < 200; round++ {
		for i := 0; i < 8; i++ {
			if !q.Enqueue(round*8 + i) {
				t.Fatalf("round %d: premature full at %d", round, i)
			}
		}
		if q.Enqueue(-1) {
			t.Fatalf("round %d: full not detected", round)
		}
		for i := 0; i < 8; i++ {
			v, ok := q.Dequeue()
			if !ok || v != round*8+i {
				t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, round*8+i)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatalf("round %d: empty not detected", round)
		}
	}
}

func TestQueueMPMCValues(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 10000
	)
	q, _ := NewQueue[uint64](256, atomicx.NativeFAA)
	var wg sync.WaitGroup
	out := make(chan uint64, producers*perProd)
	var done atomicCounter
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := uint64(g)<<32 | uint64(i)
				for !q.Enqueue(v) {
				}
			}
		}(g)
	}
	for g := 0; g < consumers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done.load() >= producers*perProd {
					return
				}
				if v, ok := q.Dequeue(); ok {
					out <- v
					done.add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(out)
	// Per-producer FIFO: sequence numbers from one producer must arrive
	// in order per consumer... across consumers we only check no loss,
	// no duplication, since interleaving reorders observation.
	seen := make(map[uint64]bool, producers*perProd)
	for v := range out {
		if seen[v] {
			t.Fatalf("duplicate value %x", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProd {
		t.Fatalf("got %d values, want %d", len(seen), producers*perProd)
	}
}

func TestFootprintConstant(t *testing.T) {
	q, _ := NewQueue[uint64](64, atomicx.NativeFAA)
	f0 := q.Footprint()
	for i := 0; i < 10000; i++ {
		q.Enqueue(uint64(i))
		q.Dequeue()
	}
	if q.Footprint() != f0 {
		t.Fatalf("footprint changed: %d -> %d", f0, q.Footprint())
	}
}

// atomicCounter is a tiny local alias used by the concurrent tests.
type atomicCounter struct{ v atomic.Int64 }

func (c *atomicCounter) add(d int64) int64 { return c.v.Add(d) }
func (c *atomicCounter) load() int64       { return c.v.Load() }
