package scq

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/atomicx"
)

// TestBatchSingleFAA pins the whole point of the native batch path:
// one Tail F&A per fast-path enqueue batch and one Head F&A per
// dequeue batch, counted via the CountingFAA mode.
func TestBatchSingleFAA(t *testing.T) {
	q, err := NewRing(256, atomicx.CountingFAA)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint64, 32)
	for i := range in {
		in[i] = uint64(i)
	}
	tail0, head0 := q.tail.Adds(), q.head.Adds()
	q.EnqueueBatch(in)
	if got := q.tail.Adds() - tail0; got != 1 {
		t.Fatalf("EnqueueBatch(32) issued %d Tail F&As, want 1", got)
	}
	out := make([]uint64, 32)
	if n := q.DequeueBatch(out); n != 32 {
		t.Fatalf("DequeueBatch = %d, want 32", n)
	}
	if got := q.head.Adds() - head0; got != 1 {
		t.Fatalf("DequeueBatch(32) issued %d Head F&As, want 1", got)
	}
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("out[%d] = %d, want %d (batch not contiguous FIFO)", i, v, i)
		}
	}
}

// TestDequeueBatchAbandonedRun pins the "0 means empty" contract in
// the state a partially-degraded EnqueueBatch leaves behind: a run of
// reserved-then-abandoned Tail tickets ahead of real values. A batch
// reservation landing entirely on the abandoned run sees only
// transient (retry) tickets; returning 0 there would read as "empty"
// to Chan's parking receivers and strand them with values buffered,
// so DequeueBatch must instead deliver at least one value.
func TestDequeueBatchAbandonedRun(t *testing.T) {
	q, err := NewRing(64, atomicx.NativeFAA)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve and abandon 4 consecutive Tail tickets — exactly the
	// state the EnqueueBatch degrade path produces when a reserved
	// slot turns out unusable.
	q.tail.Add(4)
	const vals = 8
	for i := uint64(0); i < vals; i++ {
		q.Enqueue(i)
	}
	out := make([]uint64, 4)
	for expect := uint64(0); expect < vals; {
		n := q.DequeueBatch(out)
		if n == 0 {
			t.Fatalf("DequeueBatch returned 0 with %d values buffered", vals-expect)
		}
		for _, v := range out[:n] {
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
	}
}

// TestRingBatchFIFO verifies order and counts across repeated batches
// that wrap the ring.
func TestRingBatchFIFO(t *testing.T) {
	q, err := NewRing(64, atomicx.NativeFAA)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	expect := uint64(0)
	out := make([]uint64, 48)
	for round := 0; round < 50; round++ {
		in := make([]uint64, 48)
		for i := range in {
			in[i] = next % (2 * 64)
			next++
		}
		q.EnqueueBatch(in)
		got := 0
		for got < len(in) {
			n := q.DequeueBatch(out[:len(in)-got])
			for _, v := range out[:n] {
				if v != expect%(2*64) {
					t.Fatalf("round %d: got %d, want %d", round, v, expect%(2*64))
				}
				expect++
			}
			got += n
		}
	}
}

// TestQueueBatchConcurrent drives the payload-level batch ops (one
// per-goroutine QueueHandle each, carrying the zero-alloc scratch)
// under real concurrency: exactly-once delivery and per-producer
// order.
func TestQueueBatchConcurrent(t *testing.T) {
	const (
		producers   = 3
		consumers   = 3
		perProducer = 6000
		batch       = 24
	)
	q, err := NewQueue[uint64](256, atomicx.NativeFAA)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int)
	var consumed, total int
	total = producers * perProducer

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.Register()
			buf := make([]uint64, 0, batch)
			for i := 0; i < perProducer; {
				buf = buf[:0]
				for j := i; j < perProducer && len(buf) < batch; j++ {
					buf = append(buf, uint64(p)<<32|uint64(j))
				}
				sent := 0
				for sent < len(buf) {
					n := h.EnqueueBatch(buf[sent:])
					sent += n
					if n == 0 {
						runtime.Gosched()
					}
				}
				i += len(buf)
			}
		}(p)
	}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			h := q.Register()
			out := make([]uint64, batch)
			last := map[uint64]uint64{}
			for {
				mu.Lock()
				done := consumed >= total
				mu.Unlock()
				if done {
					return
				}
				n := h.DequeueBatch(out)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				mu.Lock()
				for _, v := range out[:n] {
					p, seq := v>>32, v&0xffffffff
					if prev, ok := last[p]; ok && seq <= prev {
						t.Errorf("producer %d: seq %d after %d", p, seq, prev)
					}
					last[p] = seq
					seen[v]++
					consumed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if len(seen) != total {
		t.Fatalf("saw %d distinct values, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x delivered %d times", v, n)
		}
	}
}
