package faa

import (
	"testing"

	"repro/internal/atomicx"
)

func TestPseudoQueueCounters(t *testing.T) {
	for _, mode := range []atomicx.Mode{atomicx.NativeFAA, atomicx.EmulatedFAA} {
		q := New(mode)
		if _, ok := q.Dequeue(); ok {
			t.Fatal("dequeue ahead of enqueue reported ok")
		}
		q.Enqueue(7)
		q.Enqueue(8)
		// Head was already bumped once by the failed dequeue; one more
		// dequeue stays behind tail.
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue behind tail reported empty")
		}
	}
}
