// Package faa implements the paper's FAA pseudo-queue: Enqueue and
// Dequeue simply fetch-and-add the Tail and Head counters (plus a
// payload slot write/read so the data path is not optimized away).
//
// It is NOT a real queue — the paper includes it only as a theoretical
// throughput "upper bound" for F&A-based algorithms, and so do we. It
// must never be fed to the correctness checker.
package faa

import (
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/pad"
)

// Queue is the F&A throughput ceiling pseudo-queue.
type Queue struct {
	_    pad.Line
	tail atomicx.Counter
	_    pad.Line
	head atomicx.Counter
	_    pad.Line
	slot atomic.Uint64 // token destination so the payload is "used"
	_    pad.Line
}

// New returns a pseudo-queue using the given F&A mode.
func New(mode atomicx.Mode) *Queue {
	q := &Queue{}
	q.tail.Init(mode, 0)
	q.head.Init(mode, 0)
	return q
}

// Enqueue performs one F&A on Tail and stores v.
func (q *Queue) Enqueue(v uint64) {
	q.tail.Add(1)
	q.slot.Store(v)
}

// Dequeue performs one F&A on Head. It reports ok only when Head has
// not overtaken Tail, mimicking an emptiness check.
func (q *Queue) Dequeue() (uint64, bool) {
	h := q.head.Add(1)
	if h >= q.tail.Load() {
		return 0, false
	}
	return q.slot.Load(), true
}
