// Package ring holds the slot-order arithmetic shared by the circular
// queues (SCQ, wCQ, LCRQ): power-of-two sizing and the Cache_Remap
// permutation described in the SCQ/wCQ papers.
//
// A ring with "order" o has 1<<o slots. Following the papers, a queue
// that stores up to n elements allocates 2n slots (order = log2(n)+1);
// the doubled capacity is what lets the Threshold scheme retain
// lock-freedom on a finite ring.
package ring

import "math/bits"

// EntriesPerLineShift is log2 of the number of 8-byte ring entries that
// fit into one 64-byte cache line.
const EntriesPerLineShift = 3

// Order returns the smallest o such that 1<<o >= v. Order(0) == 0.
//
//wfq:noalloc
func Order(v uint64) uint {
	if v <= 1 {
		return 0
	}
	return uint(64 - bits.LeadingZeros64(v-1))
}

// Remap implements Cache_Remap from the SCQ paper for a ring of 1<<order
// slots whose entries are 8 bytes wide: it permutes slot positions so
// that logically consecutive positions land on distinct cache lines, and
// a given cache line is not revisited for as long as possible.
//
// The permutation swaps the low (order-3) bits with the high 3 bits:
//
//	j = ((i mod 2^(order-3)) << 3) | (i >> (order-3))
//
// For tiny rings (order <= 3, i.e. at most one cache line) it is the
// identity. Remap is a bijection on [0, 2^order); see TestRemapBijection.
//
//wfq:noalloc
func Remap(i uint64, order uint) uint64 {
	if order <= EntriesPerLineShift {
		return i
	}
	low := order - EntriesPerLineShift
	mask := (uint64(1) << low) - 1
	return (i&mask)<<EntriesPerLineShift | i>>low
}

// IsPow2 reports whether v is a power of two (v > 0).
//
//wfq:noalloc
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}
