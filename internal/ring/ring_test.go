package ring

import (
	"testing"
	"testing/quick"
)

func TestOrder(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 16, 16}, {1<<16 + 1, 17}, {1 << 62, 62},
	}
	for _, c := range cases {
		if got := Order(c.in); got != c.want {
			t.Errorf("Order(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestOrderCovers(t *testing.T) {
	// 1<<Order(v) must always be >= v.
	f := func(v uint64) bool {
		v >>= 1 // keep 1<<Order(v) representable
		o := Order(v)
		return o <= 63 && (v == 0 || uint64(1)<<o >= v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1 << 20, 1 << 63} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 1<<20 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestRemapIdentitySmall(t *testing.T) {
	for order := uint(0); order <= EntriesPerLineShift; order++ {
		n := uint64(1) << order
		for i := uint64(0); i < n; i++ {
			if Remap(i, order) != i {
				t.Fatalf("order %d: Remap(%d) != identity", order, i)
			}
		}
	}
}

func TestRemapBijection(t *testing.T) {
	for _, order := range []uint{4, 5, 8, 12} {
		n := uint64(1) << order
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			j := Remap(i, order)
			if j >= n {
				t.Fatalf("order %d: Remap(%d) = %d out of range", order, i, j)
			}
			if seen[j] {
				t.Fatalf("order %d: Remap not injective at %d", order, i)
			}
			seen[j] = true
		}
	}
}

func TestRemapSpreadsAdjacent(t *testing.T) {
	// Consecutive logical positions must land on different cache lines
	// (entries are 8 bytes; a line holds 8 of them).
	const order = 10
	for i := uint64(0); i < (1<<order)-1; i++ {
		a := Remap(i, order) >> EntriesPerLineShift
		b := Remap(i+1, order) >> EntriesPerLineShift
		if a == b {
			t.Fatalf("positions %d and %d share cache line %d", i, i+1, a)
		}
	}
}

func TestRemapLineReuseDistance(t *testing.T) {
	// The same cache line must not be reused earlier than after
	// 2^(order-3) consecutive positions.
	const order = 8
	lastUse := map[uint64]uint64{}
	minDist := uint64(1 << 62)
	for i := uint64(0); i < 1<<order; i++ {
		line := Remap(i, order) >> EntriesPerLineShift
		if prev, ok := lastUse[line]; ok {
			if d := i - prev; d < minDist {
				minDist = d
			}
		}
		lastUse[line] = i
	}
	if want := uint64(1) << (order - EntriesPerLineShift); minDist < want {
		t.Fatalf("cache line reused after %d steps, want >= %d", minDist, want)
	}
}
