// Package lcrq implements LCRQ (Morrison & Afek, PPoPP '13): a linked
// list of CRQ ring buffers. CRQ rings use F&A on Head/Tail for
// scalability but are livelock-prone; when an enqueuer starves it
// CLOSES the ring and appends a fresh one to the outer Michael & Scott
// list. That closing behaviour is what makes LCRQ fast but memory
// hungry — the effect Fig. 10a of the wCQ paper shows.
//
// Porting note (no DWCAS in Go): CRQ updates each cell's
// (index, value) pair with CAS2. Here a cell is a single 64-bit word
// {safe:1 | occupied:1 | pending:1 | ticket:61} plus a side value
// array indexed by the cell position. An enqueuer first claims the
// cell with the PENDING bit set, then writes the value, then clears
// PENDING; a dequeuer holding the cell's ticket waits out PENDING
// before reading the value. Writing the value before the claim — the
// obvious ordering — is unsound: an enqueuer whose claim CAS is about
// to fail may have its value store land after the winner's, so the
// winner's cell would yield the loser's value (duplicating it, since
// the loser retries elsewhere) and lose the winner's. The paper
// itself presents LCRQ as x86-only (true CAS2); the emulated-F&A
// (PowerPC) figures omit LCRQ for the same reason.
package lcrq

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
	"repro/internal/ring"
)

// DefaultRingOrder gives 2^12-cell rings, the paper's default ("each
// ring buffer, for better performance, needs to have at least 2^12
// entries").
const DefaultRingOrder = 12

// starvationBound is how many failed enqueue F&A attempts a thread
// tolerates before closing the ring.
const starvationBound = 1 << 10

const (
	cellSafeBit = uint64(1) << 63
	cellOccBit  = uint64(1) << 62
	// cellPendingBit marks a claimed cell whose value is not yet
	// written (see the porting note above).
	cellPendingBit = uint64(1) << 61
	ticketMask     = cellPendingBit - 1
	closedBit      = uint64(1) << 63 // on the ring's Tail counter
)

// crq is one closable ring.
type crq struct {
	order   uint
	size    uint64
	posMask uint64

	_     pad.Line
	tail  atomic.Uint64 // ticket counter | closedBit
	_     pad.Line
	head  atomic.Uint64 // ticket counter
	_     pad.Line
	next  atomic.Pointer[crq]
	_     pad.Line
	cells []atomic.Uint64
	vals  []atomic.Uint64
}

func newCRQ(order uint) *crq {
	size := uint64(1) << order
	c := &crq{
		order:   order,
		size:    size,
		posMask: size - 1,
		cells:   make([]atomic.Uint64, size),
		vals:    make([]atomic.Uint64, size),
	}
	for i := range c.cells {
		// Unoccupied, safe, ticket = position (first usable ticket).
		c.cells[i].Store(cellSafeBit | uint64(i))
	}
	return c
}

// enqueue returns false when the ring is closed (caller appends a new
// ring).
func (c *crq) enqueue(v uint64) bool {
	tries := 0
	for {
		t := c.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		pos := ring.Remap(t&c.posMask, c.order)
		cell := &c.cells[pos]
		w := cell.Load()
		ticket := w & ticketMask
		if w&cellOccBit == 0 && ticket <= t &&
			(w&cellSafeBit != 0 || c.head.Load() <= t) {
			// Claim the cell first (PENDING), then publish the value.
			// Only the claim winner may touch vals[pos], so a loser
			// can never overwrite the winner's value.
			if cell.CompareAndSwap(w, cellSafeBit|cellOccBit|cellPendingBit|t) {
				c.vals[pos].Store(v)
				c.cells[pos].And(^cellPendingBit)
				return true
			}
		}
		// Starvation / overflow check: close the ring.
		h := c.head.Load()
		tries++
		if t-h >= c.size || tries > starvationBound {
			c.tail.Or(closedBit)
			return false
		}
	}
}

// dequeue returns ok=false when the ring is empty (the caller checks
// next for a successor ring).
func (c *crq) dequeue() (uint64, bool) {
	for {
		h := c.head.Add(1) - 1
		pos := ring.Remap(h&c.posMask, c.order)
		cell := &c.cells[pos]
		var w, ticket uint64
		for {
			w = cell.Load()
			ticket = w & ticketMask
			if w&cellOccBit != 0 {
				if ticket > h {
					// A future cycle's value: ticket h never produced
					// one. Leave the cell alone and run the empty test.
					break
				}
				if ticket == h {
					if w&cellPendingBit != 0 {
						// Claimed but the value is not written yet; the
						// claimant publishes it in a bounded number of
						// its own steps.
						runtime.Gosched()
						continue
					}
					// Our value: read it, then release the cell for
					// ticket h+size.
					v := c.vals[pos].Load()
					if cell.CompareAndSwap(w, w&cellSafeBit|(h+c.size)) {
						return v, true
					}
					continue
				}
				// An older enqueue lives here: mark unsafe so its
				// cycle's dequeuer skips it, then give up on the cell.
				if cell.CompareAndSwap(w, w&^cellSafeBit) {
					break
				}
				continue
			}
			// Empty cell: advance its ticket past us so a late
			// enqueuer of ticket h cannot use it.
			nt := ticket
			if nt < h+c.size {
				nt = h + c.size
			}
			if cell.CompareAndSwap(w, w&cellSafeBit|nt) {
				break
			}
		}
		// Nothing consumable at h: empty test.
		t := c.tail.Load() &^ closedBit
		if t <= h+1 {
			c.fixState()
			return 0, false
		}
	}
}

// fixState is CRQ's catchup: when dequeuers overrun enqueuers, pull
// Tail up to Head so both restart aligned.
func (c *crq) fixState() {
	for {
		h := c.head.Load()
		tw := c.tail.Load()
		if tw&closedBit != 0 || tw >= h {
			return
		}
		if c.tail.CompareAndSwap(tw, h) {
			return
		}
	}
}

// empty reports whether the ring holds no consumable entries.
func (c *crq) empty() bool {
	return c.head.Load() >= c.tail.Load()&^closedBit
}

// Queue is the full LCRQ: an MS-style list of crq rings.
type Queue struct {
	_     pad.Line
	head  atomic.Pointer[crq]
	_     pad.Line
	tail  atomic.Pointer[crq]
	_     pad.Line
	order uint
	// ringsAllocated counts rings ever created, the memory-growth
	// signal for Fig. 10a.
	ringsAllocated atomic.Int64
}

// New returns an empty LCRQ with rings of 2^order cells.
func New(order uint) *Queue {
	if order == 0 {
		order = DefaultRingOrder
	}
	q := &Queue{order: order}
	first := newCRQ(order)
	q.ringsAllocated.Store(1)
	q.head.Store(first)
	q.tail.Store(first)
	return q
}

// Enqueue appends v; it always succeeds (new rings are linked on
// demand — the unbounded-memory trade-off the wCQ paper criticizes).
func (q *Queue) Enqueue(v uint64) {
	for {
		tailRing := q.tail.Load()
		if next := tailRing.next.Load(); next != nil {
			q.tail.CompareAndSwap(tailRing, next)
			continue
		}
		if tailRing.enqueue(v) {
			return
		}
		// Ring closed: append a fresh ring seeded with v.
		nr := newCRQ(q.order)
		if !nr.enqueue(v) {
			panic("lcrq: fresh ring rejected enqueue")
		}
		if tailRing.next.CompareAndSwap(nil, nr) {
			q.ringsAllocated.Add(1)
			q.tail.CompareAndSwap(tailRing, nr)
			return
		}
	}
}

// Dequeue removes the oldest value; ok is false when the whole queue
// is empty.
func (q *Queue) Dequeue() (uint64, bool) {
	for {
		headRing := q.head.Load()
		if v, ok := headRing.dequeue(); ok {
			return v, true
		}
		// Ring drained: if no successor the queue is empty; otherwise
		// retire the ring and advance.
		if headRing.next.Load() == nil {
			return 0, false
		}
		if !headRing.empty() {
			continue // racing enqueuers refilled it
		}
		q.head.CompareAndSwap(headRing, headRing.next.Load())
	}
}

// RingsAllocated reports how many CRQ rings this queue ever created.
func (q *Queue) RingsAllocated() int64 { return q.ringsAllocated.Load() }

// FootprintPerRing returns the byte size of one ring, so harnesses can
// report allocated-memory growth.
func (q *Queue) FootprintPerRing() uint64 {
	return (uint64(1) << q.order) * 16
}
