package lcrq

import (
	"sync"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(4)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("phantom value")
	}
}

func TestOverflowLinksNewRing(t *testing.T) {
	// 2^2-cell rings: the 5th element cannot fit, the ring closes and
	// a new one is linked.
	q := New(2)
	for i := uint64(0); i < 20; i++ {
		q.Enqueue(i)
	}
	if q.RingsAllocated() < 2 {
		t.Fatalf("no ring closure after overfilling: rings=%d", q.RingsAllocated())
	}
	for i := uint64(0); i < 20; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d across ring boundary", v, ok, i)
		}
	}
}

func TestCloseOnStarvation(t *testing.T) {
	// Force the starvation path directly: a closed ring must reject
	// enqueues permanently, and the outer list must route around it.
	q := New(4)
	q.Enqueue(1)
	head := q.head.Load()
	head.tail.Or(closedBit) // simulate the starvation closure
	if head.enqueue(99) {
		t.Fatal("closed ring accepted an enqueue")
	}
	q.Enqueue(2) // must land in a fresh ring
	if q.RingsAllocated() != 2 {
		t.Fatalf("rings=%d, want 2", q.RingsAllocated())
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("got (%d,%v), want 1", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != 2 {
		t.Fatalf("got (%d,%v), want 2 from successor ring", v, ok)
	}
}

func TestFootprintGrowsWithRings(t *testing.T) {
	q := New(3)
	f0 := q.RingsAllocated()
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(i) // never dequeue → overflow closures
	}
	if q.RingsAllocated() <= f0 {
		t.Fatal("rings did not grow")
	}
	if q.FootprintPerRing() != 8*16 {
		t.Fatalf("per-ring footprint %d", q.FootprintPerRing())
	}
}

func TestWrapAround(t *testing.T) {
	q := New(3) // 8 cells
	for round := 0; round < 200; round++ {
		for i := uint64(0); i < 5; i++ {
			q.Enqueue(uint64(round)*5 + i)
		}
		for i := uint64(0); i < 5; i++ {
			v, ok := q.Dequeue()
			if !ok || v != uint64(round)*5+i {
				t.Fatalf("round %d: got (%d,%v)", round, v, ok)
			}
		}
	}
	if q.RingsAllocated() != 1 {
		t.Fatalf("steady in-capacity cycling closed rings: %d", q.RingsAllocated())
	}
}

func TestConcurrentSmoke(t *testing.T) {
	// Exactly-once under concurrency is covered by the conformance
	// suite (internal/queues); this exercises ring turnover races.
	q := New(2)
	var wg sync.WaitGroup
	const per = 2000
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(uint64(g*per + i))
				q.Dequeue()
			}
		}(g)
	}
	wg.Wait()
}
