package sharded_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/queueapi"
	"repro/internal/ringcore"
	"repro/internal/sharded"
)

// apiQueue adapts the generic sharded queue to queueapi for the
// checker (the production adapter lives in internal/queues; this one
// keeps the package's own tests self-contained).
type apiQueue struct{ q *sharded.Queue[uint64] }
type apiHandle struct{ h *sharded.Handle[uint64] }

func (a *apiQueue) Handle() (queueapi.Handle, error) {
	h, err := a.q.Register()
	if err != nil {
		return nil, err
	}
	return &apiHandle{h: h}, nil
}
func (a *apiQueue) Cap() uint64       { return a.q.Cap() }
func (a *apiQueue) Footprint() uint64 { return a.q.Footprint() }
func (a *apiQueue) Name() string      { return "sharded-test" }

func (h *apiHandle) Enqueue(v uint64) bool       { return h.h.Enqueue(v) }
func (h *apiHandle) Dequeue() (uint64, bool)     { return h.h.Dequeue() }
func (h *apiHandle) EnqueueBatch(v []uint64) int { return h.h.EnqueueBatch(v) }
func (h *apiHandle) DequeueBatch(o []uint64) int { return h.h.DequeueBatch(o) }

func mustNew(t *testing.T, capacity uint64, threads int, opts *sharded.Options) *sharded.Queue[uint64] {
	t.Helper()
	q, err := sharded.New[uint64](capacity, threads, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConstructionValidation(t *testing.T) {
	cases := []struct {
		name     string
		capacity uint64
		threads  int
		opts     *sharded.Options
	}{
		{"zero shards invalid", 64, 4, &sharded.Options{Shards: -1}},
		{"capacity not divisible", 100, 4, &sharded.Options{Shards: 3}},
		{"per-shard capacity below 2", 4, 4, &sharded.Options{Shards: 4}},
		{"per-shard capacity not power of two", 24, 4, &sharded.Options{Shards: 2}},
		{"zero capacity", 0, 4, nil},
	}
	for _, c := range cases {
		if _, err := sharded.New[uint64](c.capacity, c.threads, c.opts); err == nil {
			t.Errorf("%s: accepted (capacity=%d, opts=%+v)", c.name, c.capacity, c.opts)
		}
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	q := mustNew(t, 256, 4, nil)
	if q.Shards() != sharded.DefaultShards {
		t.Fatalf("Shards() = %d, want default %d", q.Shards(), sharded.DefaultShards)
	}
	if q.Cap() != 256 {
		t.Fatalf("Cap() = %d, want 256", q.Cap())
	}
	if q.Footprint() == 0 {
		t.Fatal("zero footprint")
	}
	if q.Kind() != ringcore.KindWCQ {
		t.Fatalf("Kind() = %v, want wCQ", q.Kind())
	}
	if q.Unbounded() {
		t.Fatal("default shards reported unbounded")
	}
}

func TestPerHandleFIFO(t *testing.T) {
	// A single handle enqueues to one shard, so its values come back
	// in strict order no matter how many shards exist.
	q := mustNew(t, 64, 2, &sharded.Options{Shards: 8})
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue returned a value")
	}
}

func TestWorkStealing(t *testing.T) {
	// Values enqueued via one handle (one home shard) must be visible
	// to a handle whose home is a different shard.
	q := mustNew(t, 64, 4, &sharded.Options{Shards: 4})
	producer, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	thief, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if !producer.Enqueue(42) {
		t.Fatal("enqueue failed")
	}
	v, ok := thief.Dequeue()
	if !ok || v != 42 {
		t.Fatalf("steal got (%d,%v), want 42", v, ok)
	}
}

func TestNoShardStarvation(t *testing.T) {
	// Register one handle per shard, enqueue through each, then drain
	// everything through a single consumer: the rotating cursor must
	// visit every shard.
	const shards = 4
	q := mustNew(t, 64, shards+1, &sharded.Options{Shards: shards})
	for i := 0; i < shards; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatal(err)
		}
		if !h.Enqueue(uint64(i)) {
			t.Fatalf("enqueue to shard %d failed", i)
		}
	}
	consumer, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < shards; i++ {
		v, ok := consumer.Dequeue()
		if !ok {
			t.Fatalf("drain stalled after %d values", i)
		}
		seen[v] = true
	}
	if len(seen) != shards {
		t.Fatalf("drained %d distinct values, want %d", len(seen), shards)
	}
}

func TestEnqueueBatchPrefixOnFull(t *testing.T) {
	// A short EnqueueBatch count must be a prefix: the home shard here
	// holds 4, so a batch of 6 enqueues exactly the first 4.
	q := mustNew(t, 8, 2, &sharded.Options{Shards: 2})
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	batch := []uint64{10, 11, 12, 13, 14, 15}
	if n := h.EnqueueBatch(batch); n != 4 {
		t.Fatalf("EnqueueBatch = %d, want 4 (per-shard capacity)", n)
	}
	for i := uint64(10); i < 14; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
}

func TestDequeueBatchDrainsAcrossShards(t *testing.T) {
	q := mustNew(t, 64, 3, &sharded.Options{Shards: 2})
	h1, _ := q.Register()
	h2, _ := q.Register()
	for i := uint64(0); i < 5; i++ {
		h1.Enqueue(i)
		h2.Enqueue(100 + i)
	}
	consumer, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 16)
	if n := consumer.DequeueBatch(out); n != 10 {
		t.Fatalf("DequeueBatch = %d, want 10 (both shards drained)", n)
	}
	if n := consumer.DequeueBatch(out); n != 0 {
		t.Fatalf("empty queue yielded %d values", n)
	}
}

func TestSCQBackend(t *testing.T) {
	q := mustNew(t, 64, 4, &sharded.Options{Shards: 4, Kind: ringcore.KindSCQ})
	if q.Kind() != ringcore.KindSCQ {
		t.Fatalf("Kind() = %v, want SCQ", q.Kind())
	}
	a := &apiQueue{q: q}
	if err := checker.Run(a, checker.Config{Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerMPMC(t *testing.T) {
	// Global no-loss/no-dup plus per-producer FIFO under concurrency —
	// the linearizable-per-shard composition property.
	q := mustNew(t, 256, 16, &sharded.Options{Shards: 4})
	a := &apiQueue{q: q}
	if err := checker.Run(a, checker.Config{Producers: 4, Consumers: 4, PerProducer: 5000, Capacity: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerBatchedMPMC(t *testing.T) {
	q := mustNew(t, 256, 16, &sharded.Options{Shards: 4})
	a := &apiQueue{q: q}
	if err := checker.RunBatch(a, checker.Config{Producers: 4, Consumers: 4, PerProducer: 5000, Capacity: 256}, 32); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerSlowPath(t *testing.T) {
	// Patience 1 forces the wCQ helped slow path inside every shard.
	q := mustNew(t, 64, 14, &sharded.Options{
		Shards: 2,
		Core:   &ringcore.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1},
	})
	a := &apiQueue{q: q}
	if err := checker.Run(a, checker.Config{Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedShards(t *testing.T) {
	// capacity is each shard's ring size here; tiny rings force real
	// turnover inside every shard during the checker run.
	q := mustNew(t, 16, 16, &sharded.Options{Shards: 4, Unbounded: true})
	if !q.Unbounded() {
		t.Fatal("Unbounded() = false")
	}
	if q.Cap() != 0 {
		t.Fatalf("Cap() = %d, want 0 (no global bound)", q.Cap())
	}
	rest := q.Footprint()
	if rest == 0 {
		t.Fatal("zero footprint at rest")
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	// One handle's values go to its home shard and grow it far past a
	// single ring; FIFO must survive the rollovers, and the footprint
	// must rise and then come back near rest after the drain.
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("unbounded shard reported full at %d", i)
		}
	}
	if q.Footprint() <= rest {
		t.Fatal("footprint did not grow across a buffered burst")
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if got := q.Footprint(); got > 8*rest {
		t.Fatalf("retained %d B after drain (rest %d B)", got, rest)
	}
	a := &apiQueue{q: q}
	if err := checker.Run(a, checker.Config{Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedShardsSCQKind(t *testing.T) {
	q := mustNew(t, 16, 16, &sharded.Options{Shards: 2, Unbounded: true, Kind: ringcore.KindSCQ})
	a := &apiQueue{q: q}
	if err := checker.RunBatch(a, checker.Config{Producers: 3, Consumers: 3, PerProducer: 3000, Capacity: 64}, 16); err != nil {
		t.Fatal(err)
	}
}
