// Package sharded composes N independent wCQ (or SCQ) shards into one
// MPMC FIFO that spreads the single fetch-and-add hot word of the
// underlying queues across N head/tail pairs — the "independent
// sub-structure" scaling step the paper's evaluation motivates once a
// single ring saturates.
//
// # Semantics
//
// Each handle has a fixed home shard assigned round-robin at
// registration; all of its enqueues go there, so any one handle's
// values traverse exactly one linearizable FIFO and per-(shard,handle)
// order is preserved — the per-producer FIFO property the checker
// verifies survives sharding. Dequeue probes the home shard first
// (one probe in balanced workloads, and every handle preferentially
// drains the shard it fills), then steals round-robin from a
// persistent per-handle cursor, visiting every shard before reporting
// empty — so no shard starves even with a single consumer.
//
// The relaxations relative to a single wCQ are the usual sharding
// trade-offs, and are deliberate:
//
//   - Global inter-producer ordering is not linearizable: values from
//     different handles live in different shards and may be observed
//     in either order. Per-handle order is strict.
//   - Enqueue reports full when the handle's HOME shard is full, even
//     if other shards have room (capacity is per-shard, Cap() is the
//     sum). Producers that spin on full make progress as long as any
//     consumer is draining, because consumers scan every shard.
//   - Dequeue reports empty only after one full scan of all shards; a
//     value enqueued to an already-scanned shard during the scan may
//     be missed once, like any emptiness check that is not a snapshot.
//
// # Batching
//
// EnqueueBatch/DequeueBatch amortize the per-operation handle and
// shard-selection overhead AND the underlying rings' reservation cost:
// an enqueue batch pays the home-shard lookup once and hands the whole
// batch to the shard's native ring batch (one Tail F&A per batch
// instead of one per element); a dequeue batch drains chunk-sized runs
// from one shard before rotating, each chunk one Head F&A. The
// stealStride fairness bound is kept by counting every stolen value
// against the cursor's streak. They implement the queueapi.Batcher
// contract natively.
package sharded

import (
	"fmt"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/scq"
	"repro/internal/wcq"
)

// Backend selects the queue algorithm used for each shard.
type Backend int

const (
	// WCQ shards are wait-free (the default).
	WCQ Backend = iota
	// SCQ shards are lock-free and need no per-thread census.
	SCQ
)

// String names the backend as the queue registry does.
func (b Backend) String() string {
	if b == SCQ {
		return "SCQ"
	}
	return "wCQ"
}

// DefaultShards is the shard count used when Options.Shards is 0.
const DefaultShards = 4

// Options tunes the sharded composition.
type Options struct {
	// Shards is the number of independent sub-queues (default
	// DefaultShards). Total capacity is split evenly, so capacity /
	// Shards must itself be a power of two >= 2.
	Shards int
	// Backend selects wCQ (wait-free, default) or SCQ (lock-free).
	Backend Backend
	// WCQ tunes the wCQ shards; nil selects the paper's defaults. The
	// Mode field also applies to SCQ shards.
	WCQ *wcq.Options
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.Shards == 0 {
		v.Shards = DefaultShards
	}
	return v
}

// Queue is a sharded MPMC FIFO of values of type T. Exactly one of
// wqs/sqs is non-nil, selected by the backend; the split (instead of
// an interface per shard) keeps the hot path free of dynamic dispatch
// so the thin wCQ handle wrappers still inline.
type Queue[T any] struct {
	wqs      []*wcq.Queue[T]
	sqs      []*scq.Queue[T]
	perCap   uint64
	backend  Backend
	nextHome atomic.Int64
}

// Handle is a goroutine's capability to use a sharded Queue. Like the
// underlying wCQ handles it must not be shared between goroutines.
// Exactly one of (homeW, ws) / (homeS, ss) is populated, matching the
// queue's backend.
type Handle[T any] struct {
	homeW  *wcq.QueueHandle[T]
	homeS  *scq.Queue[T]
	ws     []*wcq.QueueHandle[T]
	ss     []*scq.Queue[T]
	n      int // shard count
	home   int
	cursor int // steal scan position, persists across calls
	streak int // consecutive steals from shard `cursor`
}

// stealStride bounds how many consecutive steals a handle takes from
// one foreign shard before its steal cursor rotates onward. Sticking
// to a yielding shard is cheap; the bound guarantees the steal scan
// visits every shard at least once per stealStride*Shards steals, so
// no shard starves even when one stays hot.
const stealStride = 128

// New returns an empty sharded queue of total capacity `capacity`
// (split evenly across shards), usable by at most maxThreads handles.
// capacity / shards must be a power of two >= 2, and every handle
// registers with every shard, so each shard is built for maxThreads.
func New[T any](capacity uint64, maxThreads int, opts *Options) (*Queue[T], error) {
	o := opts.withDefaults()
	if o.Shards < 1 {
		return nil, fmt.Errorf("sharded: shard count must be >= 1, got %d", o.Shards)
	}
	if capacity == 0 || capacity%uint64(o.Shards) != 0 {
		return nil, fmt.Errorf("sharded: capacity %d not divisible by %d shards", capacity, o.Shards)
	}
	per := capacity / uint64(o.Shards)
	if per < 2 || per&(per-1) != 0 {
		return nil, fmt.Errorf("sharded: per-shard capacity %d (= %d/%d) must be a power of two >= 2",
			per, capacity, o.Shards)
	}
	q := &Queue[T]{perCap: per, backend: o.Backend}
	var mode atomicx.Mode
	if o.WCQ != nil {
		mode = o.WCQ.Mode
	}
	for i := 0; i < o.Shards; i++ {
		switch o.Backend {
		case SCQ:
			sq, err := scq.NewQueue[T](per, mode)
			if err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
			}
			q.sqs = append(q.sqs, sq)
		default:
			wq, err := wcq.NewQueue[T](per, maxThreads, o.WCQ)
			if err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
			}
			q.wqs = append(q.wqs, wq)
		}
	}
	return q, nil
}

// Register allocates a handle with home-shard affinity assigned
// round-robin across registrations. Safe to call concurrently.
func (q *Queue[T]) Register() (*Handle[T], error) {
	n := q.Shards()
	home := int((q.nextHome.Add(1) - 1) % int64(n))
	h := &Handle[T]{n: n, home: home, cursor: home}
	if q.sqs != nil {
		// SCQ shards are stateless per-thread: the queue is the handle.
		h.ss = q.sqs
		h.homeS = q.sqs[home]
		return h, nil
	}
	h.ws = make([]*wcq.QueueHandle[T], n)
	for i, wq := range q.wqs {
		wh, err := wq.Register()
		if err != nil {
			return nil, fmt.Errorf("sharded: registering with shard %d: %w", i, err)
		}
		h.ws[i] = wh
	}
	h.homeW = h.ws[home]
	return h, nil
}

// Shards returns the shard count.
func (q *Queue[T]) Shards() int {
	if q.sqs != nil {
		return len(q.sqs)
	}
	return len(q.wqs)
}

// Backend returns the per-shard algorithm.
func (q *Queue[T]) Backend() Backend { return q.backend }

// Cap returns the total capacity (sum over shards).
func (q *Queue[T]) Cap() uint64 { return q.perCap * uint64(q.Shards()) }

// Footprint returns the bytes allocated at construction, summed over
// shards; like wCQ, nothing is allocated afterwards.
func (q *Queue[T]) Footprint() uint64 {
	var total uint64
	for _, wq := range q.wqs {
		total += wq.Footprint()
	}
	for _, sq := range q.sqs {
		total += sq.Footprint()
	}
	return total
}

// Enqueue appends v to the handle's home shard; false means that shard
// is full (see the package comment for the capacity relaxation).
func (h *Handle[T]) Enqueue(v T) bool {
	if h.homeW != nil {
		return h.homeW.Enqueue(v)
	}
	return h.homeS.Enqueue(v)
}

// Dequeue removes the oldest value of some shard: the home shard
// first (the hit case in balanced workloads — one probe, and every
// handle preferentially drains the shard it fills), then a stealing
// scan over the others from the persistent cursor. ok is false only
// after home plus a full scan found every shard empty.
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	if h.homeW != nil {
		if v, ok = h.homeW.Dequeue(); ok {
			return v, ok
		}
	} else if v, ok = h.homeS.Dequeue(); ok {
		return v, ok
	}
	return h.steal()
}

// probe is one dequeue attempt against shard s (steal path only; the
// backend branch is off the hot path).
func (h *Handle[T]) probe(s int) (T, bool) {
	if h.ws != nil {
		return h.ws[s].Dequeue()
	}
	return h.ss[s].Dequeue()
}

// steal scans the foreign shards round-robin from the cursor. On a
// hit the cursor sticks (the shard likely has more) up to stealStride
// consecutive steals, then rotates onward.
func (h *Handle[T]) steal() (v T, ok bool) {
	for i := 0; i < h.n; i++ {
		s := h.cursor + i
		if s >= h.n {
			s -= h.n
		}
		if s == h.home {
			continue // already probed
		}
		if v, ok := h.probe(s); ok {
			if s == h.cursor {
				h.streak++
			} else {
				h.streak = 1
			}
			if h.streak >= stealStride {
				h.streak = 0
				s++
				if s == h.n {
					s = 0
				}
			}
			h.cursor = s
			return v, true
		}
	}
	return v, false
}

// EnqueueBatch appends a prefix of vs in order to the home shard
// through the shard's native ring batch (one reservation F&A per
// batch); it returns how many values were enqueued (a prefix of vs,
// preserving per-handle FIFO order — a short count means the home
// shard filled up). The home shard is resolved once for the whole
// batch.
func (h *Handle[T]) EnqueueBatch(vs []T) int {
	if w := h.homeW; w != nil {
		return w.EnqueueBatch(vs)
	}
	return h.homeS.EnqueueBatch(vs)
}

// probeBatch is one native batch dequeue against shard s.
func (h *Handle[T]) probeBatch(s int, out []T) int {
	if h.ws != nil {
		return h.ws[s].DequeueBatch(out)
	}
	return h.ss[s].DequeueBatch(out)
}

// drainInto repeatedly batch-dequeues shard s into out until out is
// full or the shard appears empty, returning how many values were
// written and whether the shard looked drained.
func (h *Handle[T]) drainInto(s int, out []T) (n int, drained bool) {
	for n < len(out) {
		got := h.probeBatch(s, out[n:])
		if got == 0 {
			return n, true
		}
		n += got
	}
	return n, false
}

// DequeueBatch fills out with values: a draining run of native ring
// batches from the home shard first, then stealing runs from the other
// shards round-robin from the persistent cursor. Every stolen value
// counts toward the cursor's streak, so the stealStride fairness bound
// holds across batches exactly as it does for scalar steals. It
// returns how many values were written; 0 means home plus a full scan
// found all shards empty.
func (h *Handle[T]) DequeueBatch(out []T) int {
	filled, _ := h.drainInto(h.home, out)
	start := h.cursor
	for i := 0; i < h.n && filled < len(out); i++ {
		s := start + i
		if s >= h.n {
			s -= h.n
		}
		if s == h.home {
			continue // already drained
		}
		n, drained := h.drainInto(s, out[filled:])
		filled += n
		if !drained {
			// Buffer full mid-shard: the shard may have more. Stick to
			// it, unless the accumulated streak exhausts the fairness
			// bound, in which case rotate onward. The streak is
			// per-shard, exactly as in the scalar steal(): a run from a
			// shard other than the current cursor starts a fresh streak.
			if s == h.cursor {
				h.streak += n
			} else {
				h.streak = n
			}
			if h.streak >= stealStride {
				h.streak = 0
				s++
				if s == h.n {
					s = 0
				}
			}
			h.cursor = s
		} else if n > 0 {
			next := s + 1
			if next == h.n {
				next = 0
			}
			h.cursor = next
			h.streak = 0
		}
	}
	return filled
}
