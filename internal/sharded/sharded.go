// Package sharded composes N independent ring cores into one MPMC
// FIFO that spreads the single fetch-and-add hot word of the
// underlying queues across N head/tail pairs — the "independent
// sub-structure" scaling step the paper's evaluation motivates once a
// single ring saturates.
//
// Shards are consumed exclusively through the ringcore contract, so
// one code path serves the whole kind x composition matrix: bounded
// wCQ or SCQ shards (Options.Kind), and unbounded linked-ring shards
// (Options.Unbounded) whose per-shard growth removes the global
// capacity bound entirely.
//
// # Semantics
//
// Each handle has a fixed home shard assigned round-robin at
// registration; all of its enqueues go there, so any one handle's
// values traverse exactly one linearizable FIFO and per-(shard,handle)
// order is preserved — the per-producer FIFO property the checker
// verifies survives sharding. Dequeue probes the home shard first
// (one probe in balanced workloads, and every handle preferentially
// drains the shard it fills), then steals round-robin from a
// persistent per-handle cursor, visiting every shard before reporting
// empty — so no shard starves even with a single consumer.
//
// The relaxations relative to a single wCQ are the usual sharding
// trade-offs, and are deliberate:
//
//   - Global inter-producer ordering is not linearizable: values from
//     different handles live in different shards and may be observed
//     in either order. Per-handle order is strict.
//   - Enqueue reports full when the handle's HOME shard is full, even
//     if other shards have room (capacity is per-shard, Cap() is the
//     sum). Producers that spin on full make progress as long as any
//     consumer is draining, because consumers scan every shard. With
//     unbounded shards "full" cannot happen at all.
//   - Dequeue reports empty only after one full scan of all shards; a
//     value enqueued to an already-scanned shard during the scan may
//     be missed once, like any emptiness check that is not a snapshot.
//
// # Batching
//
// EnqueueBatch/DequeueBatch amortize the per-operation handle and
// shard-selection overhead AND the underlying rings' reservation cost:
// an enqueue batch pays the home-shard lookup once and hands the whole
// batch to the shard's native ring batch (one Tail F&A per batch
// instead of one per element); a dequeue batch drains chunk-sized runs
// from one shard before rotating, each chunk one Head F&A. The
// stealStride fairness bound is kept by counting every stolen value
// against the cursor's streak. They implement the queueapi.Batcher
// contract natively.
package sharded

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/ringcore"
	"repro/internal/unbounded"
)

// DefaultShards is the shard count used when Options.Shards is 0.
const DefaultShards = 4

// Options tunes the sharded composition.
type Options struct {
	// Shards is the number of independent sub-queues (default
	// DefaultShards). For bounded shards the total capacity is split
	// evenly, so capacity / Shards must itself be a power of two >= 2.
	Shards int
	// Kind selects the ring core each shard is built from:
	// wait-free wCQ (the default) or lock-free SCQ.
	Kind ringcore.Kind
	// Unbounded makes every shard an unbounded linked-ring queue of
	// the configured Kind (per-shard growth, no global capacity):
	// the capacity argument of New becomes each shard's ring size
	// instead of a bound, Cap() reports 0, Enqueue never reports
	// full, and Footprint() is live.
	Unbounded bool
	// Core tunes the ring cores; nil selects the paper's defaults.
	Core *ringcore.Options
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.Shards == 0 {
		v.Shards = DefaultShards
	}
	return v
}

// Queue is a sharded MPMC FIFO of values of type T over
// []ringcore.Core — one code path regardless of shard kind or
// boundedness. The pre-ringcore implementation kept parallel concrete
// arrays per kind so the scalar hot path avoided dynamic dispatch;
// this version deliberately trades that (one indirect call per
// scalar op, a few percent at 1 vCPU) for a composition that works
// with every current and future core, and the batch paths amortize
// the dispatch along with everything else.
type Queue[T any] struct {
	cores     []ringcore.Core[T]
	perCap    uint64 // per-shard capacity; 0 with unbounded shards
	kind      ringcore.Kind
	unbounded bool
	met       *metrics.Sink // shared with every shard via Options.Core
	nextHome  atomic.Int64
}

// Handle is a goroutine's capability to use a sharded Queue. Like the
// underlying core handles it must not be shared between goroutines.
type Handle[T any] struct {
	hs     []ringcore.Handle[T] //wfq:stable
	n      int                  //wfq:stable shard count
	home   int                  //wfq:stable
	met    *metrics.Sink        //wfq:stable nil = disabled
	cursor int                  // steal scan position, persists across calls
	streak int                  // consecutive steals from shard `cursor`
}

// stealStride bounds how many consecutive steals a handle takes from
// one foreign shard before its steal cursor rotates onward. Sticking
// to a yielding shard is cheap; the bound guarantees the steal scan
// visits every shard at least once per stealStride*Shards steals, so
// no shard starves even when one stays hot.
const stealStride = 128

// New returns an empty sharded queue usable by at most maxThreads
// handles. With bounded shards (the default), capacity is the TOTAL
// capacity split evenly across shards, and capacity / shards must be
// a power of two >= 2. With Options.Unbounded, capacity is instead
// the ring size of EVERY shard's linked rings (a power of two >= 2, a
// growth granularity rather than a bound). Every handle registers
// with every shard, so each shard is built for maxThreads.
func New[T any](capacity uint64, maxThreads int, opts *Options) (*Queue[T], error) {
	o := opts.withDefaults()
	if o.Shards < 1 {
		return nil, fmt.Errorf("sharded: shard count must be >= 1, got %d", o.Shards)
	}
	q := &Queue[T]{kind: o.Kind, unbounded: o.Unbounded, met: o.Core.Sink()}
	if o.Unbounded {
		for i := 0; i < o.Shards; i++ {
			u, err := unbounded.New[T](o.Kind, capacity, maxThreads, o.Core)
			if err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
			}
			q.cores = append(q.cores, u.Core())
		}
		return q, nil
	}
	if capacity == 0 || capacity%uint64(o.Shards) != 0 {
		return nil, fmt.Errorf("sharded: capacity %d not divisible by %d shards", capacity, o.Shards)
	}
	per := capacity / uint64(o.Shards)
	if per < 2 || per&(per-1) != 0 {
		return nil, fmt.Errorf("sharded: per-shard capacity %d (= %d/%d) must be a power of two >= 2",
			per, capacity, o.Shards)
	}
	q.perCap = per
	for i := 0; i < o.Shards; i++ {
		core, err := ringcore.New[T](o.Kind, per, maxThreads, o.Core)
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
		}
		q.cores = append(q.cores, core)
	}
	return q, nil
}

// Register allocates a handle with home-shard affinity assigned
// round-robin across registrations. Safe to call concurrently.
func (q *Queue[T]) Register() (*Handle[T], error) {
	n := q.Shards()
	home := int((q.nextHome.Add(1) - 1) % int64(n))
	hs := make([]ringcore.Handle[T], n)
	for i, core := range q.cores {
		ch, err := core.Acquire()
		if err != nil {
			return nil, fmt.Errorf("sharded: registering with shard %d: %w", i, err)
		}
		hs[i] = ch
	}
	return &Handle[T]{hs: hs, n: n, home: home, met: q.met, cursor: home}, nil
}

// Shards returns the shard count.
func (q *Queue[T]) Shards() int { return len(q.cores) }

// Metrics returns the sink shared by the queue and every shard (nil
// when metrics are disabled).
func (q *Queue[T]) Metrics() *metrics.Sink { return q.met }

// Kind returns the ring kind the shards are built from.
func (q *Queue[T]) Kind() ringcore.Kind { return q.kind }

// Unbounded reports whether the shards are unbounded linked-ring
// queues.
func (q *Queue[T]) Unbounded() bool { return q.unbounded }

// Cap returns the total capacity (sum over shards), or 0 with
// unbounded shards.
func (q *Queue[T]) Cap() uint64 { return q.perCap * uint64(q.Shards()) }

// Footprint returns the bytes the shards retain right now, summed
// through the ringcore contract: a constant for bounded shards, a
// live grow-and-shrink figure for unbounded ones.
func (q *Queue[T]) Footprint() uint64 {
	var total uint64
	for _, c := range q.cores {
		total += c.Footprint()
	}
	return total
}

// Empty reports that every shard held no unclaimed value at some
// (per-shard) instant during the call. The per-shard probes happen at
// different instants, which is still the guarantee a sequential
// producer needs: its earlier value either sat unclaimed in its home
// shard when that shard was probed (probe false, no handoff) or had
// been claimed by a dequeuer that then owns it — this queue promises
// per-handle FIFO only, so cross-shard interleaving carries no
// obligation. One-sided like the core probes: false proves nothing.
//
//wfq:noalloc
func (q *Queue[T]) Empty() bool {
	for _, c := range q.cores {
		if !c.Empty() {
			return false
		}
	}
	return true
}

// Core exposes the sharded queue itself through the ringcore.Core
// contract, so the registry's generic adapter (and any further
// composition) consumes it exactly like a single ring core.
func (q *Queue[T]) Core() ringcore.Core[T] { return shardedCore[T]{q} }

// shardedCore adapts *Queue to ringcore.Core.
type shardedCore[T any] struct{ q *Queue[T] }

func (c shardedCore[T]) Acquire() (ringcore.Handle[T], error) { return c.q.Register() }
func (c shardedCore[T]) Cap() uint64                          { return c.q.Cap() }
func (c shardedCore[T]) Footprint() uint64                    { return c.q.Footprint() }
func (c shardedCore[T]) Empty() bool                          { return c.q.Empty() }
func (c shardedCore[T]) Kind() ringcore.Kind                  { return c.q.kind }

// Stats snapshots the composition's metrics sink. The shards record
// into the same sink (threaded through Options.Core), so this single
// snapshot covers steal traffic AND every shard's core events.
func (c shardedCore[T]) Stats() metrics.Snapshot { return c.q.met.Snapshot() }

// Enqueue appends v to the handle's home shard; false means that shard
// is full (see the package comment for the capacity relaxation; with
// unbounded shards it cannot happen).
//
//wfq:noalloc
func (h *Handle[T]) Enqueue(v T) bool {
	return h.hs[h.home].Enqueue(v)
}

// EnqueueSealed is Enqueue: a sharded composition is never sealed
// (sealing is the linked-ring recycling lifecycle, which lives below
// this layer). It exists so *Handle satisfies ringcore.Handle.
//
//wfq:noalloc
func (h *Handle[T]) EnqueueSealed(v T) bool { return h.Enqueue(v) }

// EnqueueSealedBatch is EnqueueBatch, for the same reason as
// EnqueueSealed.
//
//wfq:noalloc
func (h *Handle[T]) EnqueueSealedBatch(vs []T) int { return h.EnqueueBatch(vs) }

// Dequeue removes the oldest value of some shard: the home shard
// first (the hit case in balanced workloads — one probe, and every
// handle preferentially drains the shard it fills), then a stealing
// scan over the others from the persistent cursor. ok is false only
// after home plus a full scan found every shard empty.
//
//wfq:noalloc
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	if v, ok = h.hs[h.home].Dequeue(); ok {
		return v, ok
	}
	return h.steal()
}

// steal scans the foreign shards round-robin from the cursor. On a
// hit the cursor sticks (the shard likely has more) up to stealStride
// consecutive steals, then rotates onward. Each scan counts one
// StealAttempt; a scan that yields a value counts one StealHit, so
// hit/attempt is the steal success rate.
//
//wfq:noalloc
func (h *Handle[T]) steal() (v T, ok bool) {
	hs, n, home := h.hs, h.n, h.home // hoisted: loop-invariant (//wfq:stable)
	met := h.met                     // hoisted: loop-invariant (//wfq:stable)
	met.Inc(metrics.StealAttempt)
	for i := 0; i < n; i++ {
		s := h.cursor + i
		if s >= n {
			s -= n
		}
		if s == home {
			continue // already probed
		}
		if v, ok := hs[s].Dequeue(); ok {
			if s == h.cursor {
				h.streak++
			} else {
				h.streak = 1
			}
			if h.streak >= stealStride {
				h.streak = 0
				s++
				if s == n {
					s = 0
				}
			}
			h.cursor = s
			met.Inc(metrics.StealHit)
			return v, true
		}
	}
	return v, false
}

// EnqueueBatch appends a prefix of vs in order to the home shard
// through the shard's native ring batch (one reservation F&A per
// batch); it returns how many values were enqueued (a prefix of vs,
// preserving per-handle FIFO order — a short count means the home
// shard filled up, which unbounded shards never do). The home shard
// is resolved once for the whole batch.
//
//wfq:noalloc
func (h *Handle[T]) EnqueueBatch(vs []T) int {
	return h.hs[h.home].EnqueueBatch(vs)
}

// drainInto repeatedly batch-dequeues shard s into out until out is
// full or the shard appears empty, returning how many values were
// written and whether the shard looked drained.
//
//wfq:noalloc
func (h *Handle[T]) drainInto(s int, out []T) (n int, drained bool) {
	sh := h.hs[s]
	for n < len(out) {
		got := sh.DequeueBatch(out[n:])
		if got == 0 {
			return n, true
		}
		n += got
	}
	return n, false
}

// DequeueBatch fills out with values: a draining run of native ring
// batches from the home shard first, then stealing runs from the other
// shards round-robin from the persistent cursor. Every stolen value
// counts toward the cursor's streak, so the stealStride fairness bound
// holds across batches exactly as it does for scalar steals. It
// returns how many values were written; 0 means home plus a full scan
// found all shards empty.
//
//wfq:noalloc
func (h *Handle[T]) DequeueBatch(out []T) int {
	n, home := h.n, h.home // hoisted: loop-invariant (//wfq:stable)
	filled, _ := h.drainInto(home, out)
	fromHome := filled
	if n > 1 && filled < len(out) {
		// The foreign scan below will run: one steal attempt, a hit if
		// it yields anything — the same accounting as the scalar steal.
		h.met.Inc(metrics.StealAttempt)
	}
	start := h.cursor
	for i := 0; i < n && filled < len(out); i++ {
		s := start + i
		if s >= n {
			s -= n
		}
		if s == home {
			continue // already drained
		}
		got, drained := h.drainInto(s, out[filled:])
		filled += got
		if !drained {
			// Buffer full mid-shard: the shard may have more. Stick to
			// it, unless the accumulated streak exhausts the fairness
			// bound, in which case rotate onward. The streak is
			// per-shard, exactly as in the scalar steal(): a run from a
			// shard other than the current cursor starts a fresh streak.
			if s == h.cursor {
				h.streak += got
			} else {
				h.streak = got
			}
			if h.streak >= stealStride {
				h.streak = 0
				s++
				if s == n {
					s = 0
				}
			}
			h.cursor = s
		} else if got > 0 {
			next := s + 1
			if next == n {
				next = 0
			}
			h.cursor = next
			h.streak = 0
		}
	}
	if filled > fromHome {
		h.met.Inc(metrics.StealHit)
	}
	return filled
}
