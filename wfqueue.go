// Package wfqueue is a Go implementation of wCQ, the fast wait-free
// MPMC FIFO queue with bounded memory usage of Nikolaev & Ravindran
// (SPAA '22), together with the lock-free SCQ it builds on.
//
// # Quick start
//
//	q, err := wfqueue.New[string](1024, 8) // capacity 1024, up to 8 goroutines
//	h, err := q.Handle()                   // one handle per goroutine
//	h.Enqueue("hello")
//	v, ok := h.Dequeue()
//
// Every operation completes in a bounded number of steps regardless of
// what other goroutines do (wait-freedom), and the queue never
// allocates after construction (bounded memory) — the two properties
// the paper shows cannot be had together in prior fast queues.
//
// # Handles
//
// wCQ keeps a fixed census of per-thread helper records, so each
// concurrent goroutine needs its own Handle. A Handle must not be used
// from two goroutines at once; handles cannot be returned to the
// census. This mirrors the paper's NUM_THRDS assumption.
//
// # Variants
//
// NewLockFree builds the SCQ variant: same ring, same performance
// envelope, no helping (lock-free progress only, no handle census).
// NewRing / NewLockFreeRing expose the underlying index rings for
// allocator-style use (DPDK/SPDK-like index pools, Figure 2 of the
// paper). NewSharded composes several ring cores behind one interface
// — per-handle enqueue affinity, work-stealing dequeue and native
// batch operations — for workloads that saturate a single ring's
// head/tail word; WithRingKind picks the core and WithUnboundedShards
// swaps the bounded rings for unbounded linked-ring shards.
// NewUnbounded links bounded rings into a queue with
// no capacity limit (the paper's Appendix A): Enqueue never reports
// full, memory grows and shrinks in ring-sized steps, and drained
// rings are recycled through a bounded pool. NewChan layers blocking
// Send/Recv/Close semantics over any of the cores.
//
// See ARCHITECTURE.md for the layer map and the progress/memory
// table of every variant.
package wfqueue

import (
	"fmt"

	"repro/internal/atomicx"
	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/ringcore"
	"repro/internal/scq"
	"repro/internal/sharded"
	"repro/internal/wcq"
)

// Option customizes queue construction.
type Option func(*options)

type options struct {
	mode            atomicx.Mode
	enqPatience     int
	deqPatience     int
	helpDelay       int
	shards          int
	backend         Backend
	ringKind        RingKind
	ringCap         uint64
	unboundedShards bool
	metrics         *metrics.Sink
	wait            *backoff.Strategy
	handoff         ringcore.HandoffMode
}

// core translates the accumulated options into the shared ring-core
// tuning struct every composition consumes.
func (o options) core() *ringcore.Options {
	return &ringcore.Options{
		Mode:        o.mode,
		EnqPatience: o.enqPatience,
		DeqPatience: o.deqPatience,
		HelpDelay:   o.helpDelay,
		Metrics:     o.metrics,
		Wait:        o.wait,
		Handoff:     o.handoff,
	}
}

// WithEmulatedFAA makes every fetch-and-add a CAS loop, modelling
// LL/SC architectures without native F&A (the paper's PowerPC port,
// §4). Mostly useful for benchmarking.
func WithEmulatedFAA() Option {
	return func(o *options) { o.mode = atomicx.EmulatedFAA }
}

// WithPatience sets MAX_PATIENCE: how many fast-path attempts an
// enqueue/dequeue makes before switching to the wait-free slow path.
// The paper uses 16 and 64. Lower values bound worst-case latency more
// tightly at some throughput cost.
func WithPatience(enqueue, dequeue int) Option {
	return func(o *options) { o.enqPatience, o.deqPatience = enqueue, dequeue }
}

// WithHelpDelay sets how many operations pass between scans for
// stalled peers (HELP_DELAY).
func WithHelpDelay(n int) Option {
	return func(o *options) { o.helpDelay = n }
}

// MetricsSink accumulates event counters (slow-path entries, threshold
// resets, batch degradations, steals, ring turnover, park/wake
// traffic, close drains) and a parked-duration histogram for one queue
// or one composition. Recording is allocation-free and sharded across
// cache-line-padded per-CPU stripes; a nil *MetricsSink is the
// disabled mode, costing the hot paths a single predictable branch.
type MetricsSink = metrics.Sink

// MetricsSnapshot is a point-in-time copy of a MetricsSink: one total
// per event plus the parked-duration histogram (with Quantile, Mean
// and Max). Snapshots are plain values — mergeable and comparable.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsSink returns an enabled sink to pass to WithMetrics. Share
// one sink across queues to aggregate them, or give each its own.
func NewMetricsSink() *MetricsSink { return metrics.New() }

// WithMetrics makes the queue record events and parked durations into
// m. The same sink is threaded through every layer of a composition
// (shards, linked rings, the Chan's park points), so the composition's
// Stats aggregate in one place. A nil m (or omitting the option)
// disables recording; the hot paths then pay one predictable branch
// per potential event, measured at well under a nanosecond.
func WithMetrics(m *MetricsSink) Option {
	return func(o *options) { o.metrics = m }
}

// WaitStrategy tunes how blocking Chan operations wait: a bounded
// spin re-checking the condition, a short jittered yield phase, then
// a futex park (the three-phase machine in internal/park). The zero
// value and nil both mean the adaptive default, where the spin budget
// tracks each park point's observed spin-success rate. Construct one
// with AdaptiveWait/SpinWait/ParkWait or WaitStrategyByName.
type WaitStrategy = backoff.Strategy

// AdaptiveWait returns the default strategy: spin-then-park with the
// spin budget adapted per park point from the spin-hit EWMA, so an
// uncontended channel converges to pure spin and an oversubscribed
// one to immediate park.
func AdaptiveWait() *WaitStrategy { return backoff.Adaptive() }

// SpinWait returns the always-spin strategy: the full spin and yield
// budgets are spent on every wait regardless of outcome history.
// Lowest wakeup latency when waits are short; wasteful when they are
// not.
func SpinWait() *WaitStrategy { return backoff.Spin() }

// ParkWait returns the immediate-park strategy: no spin phase at all,
// the pre-adaptive behavior. The cheapest strategy when waits are
// long and the baseline the perf gate compares against.
func ParkWait() *WaitStrategy { return backoff.Park() }

// WaitStrategyByName maps the flag vocabulary ("adaptive", "spin",
// "park"; "" defaults to adaptive) to a strategy, erroring on unknown
// names. The inverse of (*WaitStrategy).Name.
func WaitStrategyByName(name string) (*WaitStrategy, error) { return backoff.ByName(name) }

// WithWaitStrategy selects how NewChan's blocking operations wait
// (nil or omitted = adaptive). Constructors without blocking
// operations ignore this option.
func WithWaitStrategy(s *WaitStrategy) Option {
	return func(o *options) { o.wait = s }
}

// WithHandoff enables or disables NewChan's direct-handoff rendezvous
// path (enabled by default): a Send that finds a receiver already
// waiting on a verifiably empty Chan publishes the value straight into
// the waiter's transfer cell instead of crossing the ring, and a Recv
// that frees a slot while senders wait completes a parked sender's
// pending enqueue directly. Disabling pins the pre-handoff ring path —
// the A/B baseline the h1 figure and the perf smoke compare against.
// Constructors without blocking operations ignore this option.
func WithHandoff(enabled bool) Option {
	return func(o *options) {
		if enabled {
			o.handoff = ringcore.HandoffOn
		} else {
			o.handoff = ringcore.HandoffOff
		}
	}
}

// WithShards sets the shard count for NewSharded (default 4). The
// total capacity is split evenly, so capacity/n must itself be a
// power of two >= 2. Other constructors ignore this option.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithUnboundedShards makes NewSharded compose n unbounded
// linked-ring shards (0 = the default 4) instead of bounded rings:
// each shard grows and shrinks independently (see NewUnbounded), so
// there is no global capacity — the capacity argument becomes each
// shard's ring size (a power of two >= 2, the growth granularity),
// Cap() reports 0, Enqueue never reports full, and Footprint() is
// live. Combine with WithRingKind to pick the shards' ring kind.
// Other constructors ignore this option.
func WithUnboundedShards(n int) Option {
	return func(o *options) {
		o.shards = n
		o.unboundedShards = true
	}
}

// validate enforces the documented constructor contract at the public
// boundary, in this package's own vocabulary (the internal layers
// carry their own checks, but callers of wfqueue should see wfqueue
// errors phrased against the public docs).
func validate(capacity uint64, maxThreads int) error {
	if maxThreads < 1 {
		return fmt.Errorf("wfqueue: maxThreads must be >= 1, got %d", maxThreads)
	}
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return fmt.Errorf("wfqueue: capacity must be a power of two >= 2, got %d", capacity)
	}
	return nil
}

func buildOpts(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// wcq translates the accumulated options for the constructors that
// talk to internal/wcq directly, through ringcore's single
// Options-to-wcq mapping (so the two structs cannot drift).
func (o options) wcq() *wcq.Options { return o.core().WCQ() }

// Queue is a bounded wait-free MPMC FIFO of values of type T.
type Queue[T any] struct {
	q *wcq.Queue[T]
}

// Handle is a goroutine's capability to use a Queue. Not safe for
// concurrent use by multiple goroutines; operations are wait-free
// (bounded steps regardless of other goroutines).
type Handle[T any] struct {
	h *wcq.QueueHandle[T]
}

// New returns an empty wait-free queue holding up to capacity values
// (a power of two >= 2), operated by at most maxThreads concurrent
// handles.
func New[T any](capacity uint64, maxThreads int, opts ...Option) (*Queue[T], error) {
	if err := validate(capacity, maxThreads); err != nil {
		return nil, err
	}
	o := buildOpts(opts)
	q, err := wcq.NewQueue[T](capacity, maxThreads, o.wcq())
	if err != nil {
		return nil, err
	}
	return &Queue[T]{q: q}, nil
}

// Handle registers the calling goroutine and returns its handle. It
// fails once maxThreads handles exist.
func (q *Queue[T]) Handle() (*Handle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	return &Handle[T]{h: h}, nil
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() uint64 { return q.q.Cap() }

// Footprint returns the bytes allocated at construction; the queue
// never allocates afterwards.
func (q *Queue[T]) Footprint() uint64 { return q.q.Footprint() }

// Stats snapshots the queue's metrics sink. The zero snapshot is
// returned when the queue was built without WithMetrics.
func (q *Queue[T]) Stats() MetricsSnapshot { return q.q.Metrics().Snapshot() }

// Enqueue appends v; it returns false when the queue is full. The
// operation completes in a bounded number of steps.
//
//wfq:noalloc
func (h *Handle[T]) Enqueue(v T) bool { return h.h.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty. The operation completes in a bounded number of
// steps.
//
//wfq:noalloc
func (h *Handle[T]) Dequeue() (v T, ok bool) { return h.h.Dequeue() }

// EnqueueBatch appends a prefix of vs in order and returns its length
// (a short count means the queue filled up mid-batch). The fast path
// reserves the whole batch with one fetch-and-add per underlying ring
// instead of one per element; the operation stays wait-free.
//
//wfq:noalloc
func (h *Handle[T]) EnqueueBatch(vs []T) int { return h.h.EnqueueBatch(vs) }

// DequeueBatch fills a prefix of out with the oldest values and
// returns its length; 0 means the queue appeared empty. One
// reservation fetch-and-add per ring on the fast path; wait-free.
//
//wfq:noalloc
func (h *Handle[T]) DequeueBatch(out []T) int { return h.h.DequeueBatch(out) }

// Ring is a bounded wait-free MPMC queue of indices in [0, Cap()) —
// the raw wCQ ring, useful as a free-list/allocation pool (the aq/fq
// pattern of the paper's Figure 2).
type Ring struct {
	r *wcq.Ring
}

// RingHandle is a goroutine's capability to use a Ring. Not safe for
// concurrent use by multiple goroutines; operations are wait-free.
type RingHandle struct {
	h *wcq.Handle
}

// NewRing returns an empty wait-free index ring. If full is true it is
// pre-filled with 0..capacity-1 (a free-index pool).
func NewRing(capacity uint64, maxThreads int, full bool, opts ...Option) (*Ring, error) {
	if err := validate(capacity, maxThreads); err != nil {
		return nil, err
	}
	o := buildOpts(opts)
	var r *wcq.Ring
	var err error
	if full {
		r, err = wcq.NewFullRing(capacity, maxThreads, o.wcq())
	} else {
		r, err = wcq.NewRing(capacity, maxThreads, o.wcq())
	}
	if err != nil {
		return nil, err
	}
	return &Ring{r: r}, nil
}

// Handle registers the calling goroutine.
func (r *Ring) Handle() (*RingHandle, error) {
	h, err := r.r.Register()
	if err != nil {
		return nil, err
	}
	return &RingHandle{h: h}, nil
}

// Cap returns the ring capacity.
func (r *Ring) Cap() uint64 { return r.r.Cap() }

// Stats snapshots the ring's metrics sink. The zero snapshot is
// returned when the ring was built without WithMetrics.
func (r *Ring) Stats() MetricsSnapshot { return r.r.Metrics().Snapshot() }

// Enqueue inserts an index in [0, Cap()). The ring never reports full:
// the caller must keep at most Cap() indices live (as a free-list
// naturally does).
//
//wfq:noalloc
func (h *RingHandle) Enqueue(index uint64) { h.h.Enqueue(index) }

// Dequeue removes the oldest index; ok is false when empty.
//
//wfq:noalloc
func (h *RingHandle) Dequeue() (index uint64, ok bool) { return h.h.Dequeue() }

// LockFreeQueue is the SCQ variant: identical structure, lock-free
// (not wait-free) progress, no handle census — any goroutine may call
// it directly.
type LockFreeQueue[T any] struct {
	q *scq.Queue[T]
}

// NewLockFree returns an empty lock-free (SCQ) queue.
func NewLockFree[T any](capacity uint64, opts ...Option) (*LockFreeQueue[T], error) {
	if err := validate(capacity, 1); err != nil {
		return nil, err
	}
	o := buildOpts(opts)
	q, err := scq.NewQueue[T](capacity, o.mode)
	if err != nil {
		return nil, err
	}
	q.SetMetrics(o.metrics)
	return &LockFreeQueue[T]{q: q}, nil
}

// Enqueue appends v; false when full. Safe for any goroutine.
//
//wfq:noalloc
func (q *LockFreeQueue[T]) Enqueue(v T) bool { return q.q.Enqueue(v) }

// Dequeue removes the oldest value; ok is false when empty.
//
//wfq:noalloc
func (q *LockFreeQueue[T]) Dequeue() (T, bool) { return q.q.Dequeue() }

// Handle returns a per-goroutine view carrying the zero-allocation
// batch scratch. SCQ has no thread census, so Handle never fails and
// any number may be created; like every other handle in this package
// it must not be shared between goroutines. Scalar operations work
// both on the queue directly and on a handle — only the batch
// operations need one (their scratch buffer is what makes them
// allocation-free, and a shared buffer could not be).
func (q *LockFreeQueue[T]) Handle() (*LockFreeHandle[T], error) {
	return &LockFreeHandle[T]{h: q.q.Register()}, nil
}

// Cap returns the queue capacity.
func (q *LockFreeQueue[T]) Cap() uint64 { return q.q.Cap() }

// Footprint returns the bytes allocated at construction; the queue
// never allocates afterwards.
func (q *LockFreeQueue[T]) Footprint() uint64 { return q.q.Footprint() }

// Stats snapshots the queue's metrics sink. The zero snapshot is
// returned when the queue was built without WithMetrics.
func (q *LockFreeQueue[T]) Stats() MetricsSnapshot { return q.q.Metrics().Snapshot() }

// LockFreeHandle is a goroutine's capability to use a LockFreeQueue,
// carrying the per-handle scratch the native batch reservation uses.
// Not safe for concurrent use by multiple goroutines.
type LockFreeHandle[T any] struct {
	h *scq.QueueHandle[T]
}

// Enqueue appends v; false when full.
//
//wfq:noalloc
func (h *LockFreeHandle[T]) Enqueue(v T) bool { return h.h.Enqueue(v) }

// Dequeue removes the oldest value; ok is false when empty.
//
//wfq:noalloc
func (h *LockFreeHandle[T]) Dequeue() (T, bool) { return h.h.Dequeue() }

// EnqueueBatch appends a prefix of vs in order and returns its length
// (a short count means the queue filled up mid-batch). The whole
// batch is reserved with one fetch-and-add per ring instead of one
// per element; the steady-state hot path allocates nothing.
//
//wfq:noalloc
func (h *LockFreeHandle[T]) EnqueueBatch(vs []T) int { return h.h.EnqueueBatch(vs) }

// DequeueBatch fills a prefix of out with the oldest values and
// returns its length; 0 means the queue appeared empty.
//
//wfq:noalloc
func (h *LockFreeHandle[T]) DequeueBatch(out []T) int { return h.h.DequeueBatch(out) }

// ShardedQueue composes several independent ring cores into one queue
// that spreads the single head/tail hot word across shards: each
// handle enqueues to a fixed home shard (assigned round-robin at
// Handle time) and dequeues round-robin with work stealing, so no
// shard starves. Any one handle's values come back in strict FIFO
// order; values from different handles may interleave in either
// order. With bounded shards (the default) Enqueue reports full when
// the handle's home shard is full (capacity is split evenly across
// shards); with WithUnboundedShards the shards grow instead and
// Enqueue never reports full.
type ShardedQueue[T any] struct {
	q *sharded.Queue[T]
}

// ShardedHandle is a goroutine's capability to use a ShardedQueue.
// Not safe for concurrent use by multiple goroutines.
type ShardedHandle[T any] struct {
	h *sharded.Handle[T]
}

// NewSharded returns an empty sharded queue of total capacity
// `capacity` split across WithShards(n) sub-queues (default 4);
// capacity/n must itself be a power of two >= 2, so non-power-of-two
// shard counts work as long as the per-shard quotient is (e.g.
// capacity 12 over 3 shards of 4). Every handle registers with every
// shard, so maxThreads bounds handles globally. WithRingKind selects
// the shards' ring core (wait-free wCQ by default, lock-free SCQ);
// WithUnboundedShards swaps the bounded rings for unbounded
// linked-ring shards, reinterpreting capacity as each shard's ring
// size (a power of two >= 2).
func NewSharded[T any](capacity uint64, maxThreads int, opts ...Option) (*ShardedQueue[T], error) {
	// The total capacity need not be a power of two — only the
	// per-shard quotient must be, which sharded.New validates.
	if maxThreads < 1 {
		return nil, fmt.Errorf("wfqueue: maxThreads must be >= 1, got %d", maxThreads)
	}
	o := buildOpts(opts)
	if o.unboundedShards {
		// capacity is each shard's ring size here; phrase the contract
		// in this package's vocabulary instead of the internal layers'.
		if err := validate(capacity, maxThreads); err != nil {
			return nil, err
		}
	}
	q, err := sharded.New[T](capacity, maxThreads, &sharded.Options{
		Shards:    o.shards,
		Kind:      o.ringKind.kind(),
		Unbounded: o.unboundedShards,
		Core:      o.core(),
	})
	if err != nil {
		return nil, err
	}
	return &ShardedQueue[T]{q: q}, nil
}

// Handle registers the calling goroutine, assigning its home shard
// round-robin. It fails once maxThreads handles exist.
func (q *ShardedQueue[T]) Handle() (*ShardedHandle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	return &ShardedHandle[T]{h: h}, nil
}

// Cap returns the total capacity (summed over shards), or 0 with
// unbounded shards.
func (q *ShardedQueue[T]) Cap() uint64 { return q.q.Cap() }

// Shards returns the shard count.
func (q *ShardedQueue[T]) Shards() int { return q.q.Shards() }

// Unbounded reports whether the shards are unbounded linked-ring
// queues (WithUnboundedShards).
func (q *ShardedQueue[T]) Unbounded() bool { return q.q.Unbounded() }

// Footprint returns the bytes the shards retain, summed: a constant
// for bounded shards, a live grow-and-shrink figure with
// WithUnboundedShards.
func (q *ShardedQueue[T]) Footprint() uint64 { return q.q.Footprint() }

// Stats snapshots the metrics sink shared by the queue and every
// shard. The zero snapshot is returned when the queue was built
// without WithMetrics.
func (q *ShardedQueue[T]) Stats() MetricsSnapshot { return q.q.Metrics().Snapshot() }

// Enqueue appends v to the handle's home shard; false means that
// shard is full (never the case with unbounded shards).
//
//wfq:noalloc
func (h *ShardedHandle[T]) Enqueue(v T) bool { return h.h.Enqueue(v) }

// Dequeue removes the oldest value of some shard; ok is false only
// after every shard looked empty in one scan.
//
//wfq:noalloc
func (h *ShardedHandle[T]) Dequeue() (v T, ok bool) { return h.h.Dequeue() }

// EnqueueBatch appends a prefix of vs in order, paying the shard
// selection once for the whole batch; it returns how many values were
// enqueued (short counts mean the home shard filled up).
//
//wfq:noalloc
func (h *ShardedHandle[T]) EnqueueBatch(vs []T) int { return h.h.EnqueueBatch(vs) }

// DequeueBatch fills a prefix of out, draining runs from one shard
// before rotating; it returns how many values were written.
//
//wfq:noalloc
func (h *ShardedHandle[T]) DequeueBatch(out []T) int { return h.h.DequeueBatch(out) }
