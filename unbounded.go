package wfqueue

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/ringcore"
	"repro/internal/unbounded"
)

// DefaultRingCapacity is the per-ring capacity NewUnbounded uses when
// WithRingCapacity is not given: large enough that outer-list
// turnover is rare, small enough that a drained burst returns its
// memory promptly.
const DefaultRingCapacity = 1024

// RingKind selects the bounded ring an unbounded queue links together.
type RingKind int

const (
	// RingWCQ links wait-free wCQ rings (the default): every ring
	// operation completes in a bounded number of steps, and handles
	// draw on a per-ring thread census of maxThreads.
	RingWCQ RingKind = iota
	// RingSCQ links lock-free SCQ rings (the paper's LSCQ): no thread
	// census, so any number of Handles may be created, at the cost of
	// lock-free (not wait-free) ring progress.
	RingSCQ
)

// String names the ring kind as the queue registry does.
func (k RingKind) String() string {
	switch k {
	case RingWCQ:
		return "UWCQ"
	case RingSCQ:
		return "LSCQ"
	}
	return "?"
}

// kind maps the public ring-kind constant to the shared ringcore
// contract every internal composition consumes.
func (k RingKind) kind() ringcore.Kind {
	if k == RingSCQ {
		return ringcore.KindSCQ
	}
	return ringcore.KindWCQ
}

// WithRingKind selects the ring core the linked-ring and sharded
// constructors build from (default RingWCQ): NewUnbounded links rings
// of this kind, and NewSharded builds its shards from it (bounded or,
// with WithUnboundedShards, unbounded). Other constructors ignore
// this option.
func WithRingKind(k RingKind) Option {
	return func(o *options) { o.ringKind = k }
}

// WithRingCapacity sets the capacity of each ring an unbounded queue
// links (a power of two >= 2; default DefaultRingCapacity). It bounds
// the retained-memory granularity: after a burst drains, the queue
// keeps one live ring plus a small recycling pool of this size.
// Other constructors ignore this option.
func WithRingCapacity(n uint64) Option {
	return func(o *options) { o.ringCap = n }
}

// UnboundedQueue is an MPMC FIFO with no capacity bound, built by
// linking bounded rings (the paper's Appendix A construction):
// Enqueue never reports full — a full ring is sealed and a fresh ring
// is appended. Memory therefore grows with the number of buffered
// values (in ring-sized steps, see Footprint) and shrinks back as
// bursts drain; a bounded free-list recycles drained rings so
// steady-state churn does not allocate.
//
// Progress: within a ring, operations keep the ring kind's guarantee
// (wait-free for RingWCQ, lock-free for RingSCQ), and the outer list
// itself is lock-free; ring turnover, however, briefly serializes on
// the recycling pool's mutex, so the composite as a whole is not
// lock-free at ring boundaries. Turnover is rare (once per RingCap
// values), which is why throughput tracks the rings, as the paper
// observes.
type UnboundedQueue[T any] struct {
	q *unbounded.Queue[T]
}

// UnboundedHandle is a goroutine's capability to use an
// UnboundedQueue. Not safe for concurrent use by multiple goroutines.
// Within a ring, operations keep the ring kind's own guarantee; at
// ring boundaries they may retry and briefly take the pool mutex (see
// UnboundedQueue).
type UnboundedHandle[T any] struct {
	h *unbounded.Handle[T]
}

// NewUnbounded returns an empty unbounded queue operated by at most
// maxThreads concurrent handles (the bound applies to RingWCQ, whose
// rings carry a thread census; RingSCQ accepts any number of
// handles). Configure with WithRingKind and WithRingCapacity.
func NewUnbounded[T any](maxThreads int, opts ...Option) (*UnboundedQueue[T], error) {
	o := buildOpts(opts)
	if maxThreads < 1 {
		return nil, fmt.Errorf("wfqueue: maxThreads must be >= 1, got %d", maxThreads)
	}
	ringCap := o.ringCap
	if ringCap == 0 {
		ringCap = DefaultRingCapacity
	}
	if ringCap < 2 || !ring.IsPow2(ringCap) {
		return nil, fmt.Errorf("wfqueue: ring capacity must be a power of two >= 2, got %d", ringCap)
	}
	if o.ringKind != RingWCQ && o.ringKind != RingSCQ {
		return nil, fmt.Errorf("wfqueue: unknown ring kind %d", o.ringKind)
	}
	q, err := unbounded.New[T](o.ringKind.kind(), ringCap, maxThreads, o.core())
	if err != nil {
		return nil, err
	}
	return &UnboundedQueue[T]{q: q}, nil
}

// Handle registers the calling goroutine and returns its handle. With
// RingWCQ it fails once maxThreads handles exist.
func (q *UnboundedQueue[T]) Handle() (*UnboundedHandle[T], error) {
	h, err := q.q.Handle()
	if err != nil {
		return nil, err
	}
	return &UnboundedHandle[T]{h: h}, nil
}

// RingCap returns the capacity of each linked ring.
func (q *UnboundedQueue[T]) RingCap() uint64 { return q.q.RingCap() }

// Rings returns the number of live rings currently linked (at least
// one). Racy by nature; for introspection and capacity planning.
func (q *UnboundedQueue[T]) Rings() int { return q.q.Rings() }

// Footprint returns the bytes retained right now: the live rings plus
// the bounded recycling pool. Unlike the bounded queues' constant
// footprint, this grows in ring-sized steps while values are buffered
// and shrinks back to at most (1 + pool) rings after a drain.
func (q *UnboundedQueue[T]) Footprint() uint64 { return q.q.Footprint() }

// Stats snapshots the metrics sink shared by the queue and its linked
// rings. The zero snapshot is returned when the queue was built
// without WithMetrics.
func (q *UnboundedQueue[T]) Stats() MetricsSnapshot { return q.q.Metrics().Snapshot() }

// Enqueue appends v. It always succeeds — the queue grows instead of
// reporting full. An UnboundedQueue built by NewUnbounded cannot fail
// here; the implementation panics if an internal invariant (ring
// construction or census accounting) is ever broken.
func (h *UnboundedHandle[T]) Enqueue(v T) {
	if err := h.h.Enqueue(v); err != nil {
		panic("wfqueue: unbounded enqueue invariant broken: " + err.Error())
	}
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty.
func (h *UnboundedHandle[T]) Dequeue() (v T, ok bool) {
	v, ok, err := h.h.Dequeue()
	if err != nil {
		panic("wfqueue: unbounded dequeue invariant broken: " + err.Error())
	}
	return v, ok
}

// EnqueueBatch appends vs in order. It always enqueues the whole
// batch — the current ring absorbs what fits in one reservation and
// the remainder rolls over to fresh rings — and returns len(vs) for
// symmetry with the bounded queues' batch contract.
func (h *UnboundedHandle[T]) EnqueueBatch(vs []T) int {
	if err := h.h.EnqueueBatch(vs); err != nil {
		panic("wfqueue: unbounded batch enqueue invariant broken: " + err.Error())
	}
	return len(vs)
}

// DequeueBatch fills a prefix of out with the oldest values, draining
// across ring boundaries in FIFO order, and returns its length; 0
// means the queue appeared empty.
func (h *UnboundedHandle[T]) DequeueBatch(out []T) int {
	n, err := h.h.DequeueBatch(out)
	if err != nil {
		panic("wfqueue: unbounded batch dequeue invariant broken: " + err.Error())
	}
	return n
}
