// Command doccheck enforces the repository's godoc contract: every
// exported top-level identifier (type, function, method, var, const)
// in every non-test file must carry a doc comment. It is the CI guard
// behind the ARCHITECTURE.md/godoc audit — the docs job fails when an
// exported name regresses to undocumented.
//
//	doccheck            # check every package under the current module
//	doccheck ./internal # check a subtree
//
// A const or var group is satisfied by a doc comment on the group or
// on the individual spec. Exit status is 1 when anything is missing,
// with one "file:line: identifier" diagnostic per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var missing []string
	for _, root := range roots {
		root = strings.TrimPrefix(root, "./")
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			found, err := checkFile(path)
			if err != nil {
				return err
			}
			missing = append(missing, found...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	for _, m := range missing {
		fmt.Println(m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkFile parses one file and reports every exported top-level
// identifier without a doc comment as "file:line: name".
func checkFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group comment covers all specs; otherwise each
					// exported spec needs its own doc or line comment.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a method's receiver type is itself
// exported (methods on unexported types are internal plumbing and
// exempt). Plain functions always count.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
