// Command wcqstressd is a long-running stress daemon with live
// observability: it drives a configurable registry workload forever
// (or for -duration) and serves the queue's internal metrics — slow
// paths, threshold resets, steals, ring turnover, park/wake traffic,
// op-latency and parked-duration percentiles, Footprint and ring
// population — over HTTP while the stress runs.
//
//	wcqstressd                                  # Chan over wCQ, GOMAXPROCS workers
//	wcqstressd -queue UWCQ -capacity 64         # unbounded: heavy ring turnover
//	wcqstressd -queue ChanSharded -shards 8     # sharded composition under parking
//	wcqstressd -addr :9100 -interval 2s -snapshots snap.jsonl
//	wcqstressd -duration 30s                    # bounded soak (CI smoke)
//	wcqstressd -validate snap.jsonl             # check a snapshot log and exit
//	wcqstressd -scenario all -duration 5s       # production-readiness scenarios
//	wcqstressd -scenario memory_stress -queue UWCQ   # one scenario, one queue
//
// Endpoints:
//
//	/debug/vars   expvar JSON (key "wcqstressd")
//	/metrics      Prometheus text exposition
//
// With -snapshots, one wcqbench/v1 record (figure "live") is appended
// per interval as a JSON line, so the same tooling that reads bench
// results can plot a soak. SIGINT/SIGTERM closes the queue, drains the
// workers, appends a final snapshot and exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/clihelper"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/queues"
)

func main() {
	var (
		queueName = flag.String("queue", "Chan", "registry queue to stress (wcqstressd -queue ? lists them)")
		addr      = flag.String("addr", "127.0.0.1:8377", "HTTP listen address for /metrics and /debug/vars")
		workers   = flag.Int("workers", 0, "stress goroutines (0 = GOMAXPROCS, minimum 2)")
		interval  = flag.Duration("interval", 5*time.Second, "snapshot/append interval")
		snapshots = flag.String("snapshots", "", "append one wcqbench/v1 JSON line per interval to this file")
		duration  = flag.Duration("duration", 0, "total run time (0 = until SIGINT/SIGTERM)")
		validate  = flag.String("validate", "", "validate a wcqbench/v1 snapshot file and exit")
		scenario  = flag.String("scenario", "", "run a production-readiness scenario (concurrent_stress, memory_stress, high_frequency, or 'all') against -queue and exit")
	)
	shared := clihelper.Register(flag.CommandLine, 1<<8)
	flag.Parse()

	if *validate != "" {
		n, err := benchfmt.ValidateFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wcqstressd: %s invalid after %d records: %v\n", *validate, n, err)
			os.Exit(1)
		}
		fmt.Printf("wcqstressd: %s ok (%d records)\n", *validate, n)
		return
	}
	if *queueName == "?" {
		fmt.Println(queues.Names())
		return
	}

	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 2 {
		n = 2
	}
	cfg, err := shared.Config(n + 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *scenario != "" {
		if err := runScenarios(*scenario, *queueName, cfg, n, *duration); err != nil {
			fmt.Fprintln(os.Stderr, "wcqstressd: scenario FAIL:", err)
			os.Exit(1)
		}
		return
	}
	// The daemon exists to watch the internals: the sink is always on,
	// whatever -metrics says.
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	q, err := queues.New(*queueName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcqstressd:", err)
		os.Exit(2)
	}

	d := newDaemon(*queueName, q, n)
	expvar.Publish("wcqstressd", expvar.Func(d.vars))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.promText(w)
	})
	srv := &http.Server{Addr: *addr}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *duration > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *duration)
		defer tcancel()
	}

	wg, err := d.startWorkers()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcqstressd:", err)
		os.Exit(1)
	}
	fmt.Printf("wcqstressd: stressing %s with %d workers, serving http://%s/metrics\n",
		*queueName, n, *addr)

	// Snapshot loop: one wcqbench/v1 line per interval, plus a console
	// heartbeat so an attached terminal sees progress.
	var lastOps atomic.Uint64
	lastT := time.Now()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	appendSnapshot := func() {
		now := time.Now()
		dt := now.Sub(lastT)
		lastT = now
		ops := d.ops()
		delta := ops - lastOps.Load()
		lastOps.Store(ops)
		f := d.snapshotFile(delta, dt)
		if *snapshots != "" {
			if err := benchfmt.Append(*snapshots, f); err != nil {
				fmt.Fprintln(os.Stderr, "wcqstressd: snapshot append:", err)
			}
		}
		fmt.Printf("wcqstressd: %.2f Mops/s, %d ops total, footprint %d B\n",
			f.Points[0].MopsMean, ops, q.Footprint())
	}
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case err := <-serveErr:
			fmt.Fprintln(os.Stderr, "wcqstressd: http:", err)
			os.Exit(1)
		case <-tick.C:
			appendSnapshot()
		}
	}

	// Graceful shutdown: stop the workers (closing the queue unparks
	// blocking ones), drain, record the final partial interval, then
	// stop serving.
	d.stop.Store(true)
	if c, ok := q.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wcqstressd: close:", err)
		}
	}
	wg.Wait()
	appendSnapshot()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "wcqstressd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("wcqstressd: clean shutdown")
}

// runScenarios executes the production-readiness stress tier: the
// named scenario (or every one, for "all") against the selected queue.
// Any conservation violation, footprint leak or livelock surfaces as
// the scenario's error and a nonzero exit.
func runScenarios(scenario, queueName string, cfg queues.Config, threads int, duration time.Duration) error {
	names := []string{scenario}
	if scenario == "all" {
		names = harness.StressScenarioNames()
	}
	if duration <= 0 {
		duration = 5 * time.Second
	}
	for _, s := range names {
		res, err := harness.RunStress(s, queueName, cfg, harness.StressOpts{
			Threads:  threads,
			Duration: duration,
		})
		if err != nil {
			return err
		}
		fmt.Printf("wcqstressd: %s/%s ok: %d transfers in %v, footprint %.3f MB",
			s, queueName, res.Transfers, res.Elapsed.Round(time.Millisecond), res.FootprintMB)
		if res.Cycles > 0 {
			fmt.Printf(", %d cycles, baseline %.3f MB", res.Cycles, res.BaselineMB)
		}
		fmt.Println()
	}
	return nil
}
