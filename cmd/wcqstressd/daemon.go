package main

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/metrics"
	"repro/internal/pad"
	"repro/internal/queueapi"
)

// workerSlot is one worker's op counter on its own cache line, so the
// hot increment never contends with a neighbor or the scraper.
//
//wfq:padded
type workerSlot struct {
	ops atomic.Uint64
	_   [pad.CacheLineSize - 8]byte
}

// latSampleMask subsamples per-op latency measurement: one op in
// (latSampleMask+1) pays the two time.Now calls. The histogram still
// sees thousands of samples per second at stress rates, and the other
// ops run at full speed.
const latSampleMask = 7

// daemon owns the queue under stress and everything the exporters
// read: per-worker padded op counters, per-worker latency histograms
// (merged at scrape time — snapshots merge associatively), and the
// queue's own metrics sink reached through queueapi.Statser.
type daemon struct {
	name    string
	q       queueapi.Queue
	workers int
	start   time.Time
	slots   []workerSlot
	hists   []*metrics.Histogram
	stop    atomic.Bool
}

func newDaemon(name string, q queueapi.Queue, workers int) *daemon {
	d := &daemon{
		name:    name,
		q:       q,
		workers: workers,
		start:   time.Now(),
		slots:   make([]workerSlot, workers),
		hists:   make([]*metrics.Histogram, workers),
	}
	for i := range d.hists {
		d.hists[i] = metrics.NewHistogram()
	}
	return d
}

// ops sums the per-worker counters.
func (d *daemon) ops() uint64 {
	var t uint64
	for i := range d.slots {
		t += d.slots[i].ops.Load()
	}
	return t
}

// latency merges the per-worker op-latency histograms (nanoseconds).
func (d *daemon) latency() metrics.HistogramSnapshot {
	var out metrics.HistogramSnapshot
	for _, h := range d.hists {
		out.Merge(h.Snapshot())
	}
	return out
}

// stats snapshots the queue's internal metrics sink; queues without
// one (external baselines) report the zero snapshot.
func (d *daemon) stats() metrics.Snapshot {
	if s, ok := d.q.(queueapi.Statser); ok {
		return s.Stats()
	}
	return metrics.Snapshot{}
}

// rings reports the live linked-ring population of an unbounded queue
// (0 for bounded queues and queues that do not expose it).
func (d *daemon) rings() int {
	if r, ok := d.q.(interface{ Rings() int }); ok {
		return r.Rings()
	}
	return 0
}

// quantiles flattens a histogram snapshot into the fixed percentile
// set every exporter reports.
func quantiles(h metrics.HistogramSnapshot) map[string]uint64 {
	return map[string]uint64{
		"count": h.Count,
		"p50":   h.Quantile(0.50),
		"p90":   h.Quantile(0.90),
		"p99":   h.Quantile(0.99),
		"p999":  h.Quantile(0.999),
		"max":   h.Max,
	}
}

// vars is the expvar payload (published under the "wcqstressd" key on
// /debug/vars). Durations are nanoseconds, like the histograms record.
func (d *daemon) vars() any {
	snap := d.stats()
	events := make(map[string]uint64, metrics.NumEvents)
	snap.EachCount(func(event string, n uint64) { events[event] = n })
	return map[string]any{
		"queue":           d.name,
		"workers":         d.workers,
		"uptime_seconds":  time.Since(d.start).Seconds(),
		"ops_total":       d.ops(),
		"events":          events,
		"footprint_bytes": d.q.Footprint(),
		"rings":           d.rings(),
		"waiters":         snap.Waiters,
		"handoffs":        snap.Handoffs(),
		"handoff_rate":    snap.HandoffRate(),
		"op_latency_ns":   quantiles(d.latency()),
		"parked_ns":       quantiles(snap.Parked),
		"wake_tranche":    quantiles(snap.Tranches),
	}
}

// promText renders the Prometheus text exposition (format 0.0.4) for
// /metrics: ops and event counters, footprint/ring gauges, and the
// op-latency and parked-duration percentiles in seconds.
func (d *daemon) promText(w io.Writer) {
	snap := d.stats()
	fmt.Fprintf(w, "# HELP wcqstressd_ops_total Completed queue operations across all workers.\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_ops_total counter\n")
	fmt.Fprintf(w, "wcqstressd_ops_total{queue=%q} %d\n", d.name, d.ops())
	fmt.Fprintf(w, "# HELP wcqstressd_events_total Internal queue events by kind (see internal/metrics).\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_events_total counter\n")
	snap.EachCount(func(event string, n uint64) {
		fmt.Fprintf(w, "wcqstressd_events_total{queue=%q,event=%q} %d\n", d.name, event, n)
	})
	fmt.Fprintf(w, "# HELP wcqstressd_footprint_bytes Bytes the queue retains right now.\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_footprint_bytes gauge\n")
	fmt.Fprintf(w, "wcqstressd_footprint_bytes{queue=%q} %d\n", d.name, d.q.Footprint())
	fmt.Fprintf(w, "# HELP wcqstressd_rings Live linked rings of an unbounded queue (0 when not applicable).\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_rings gauge\n")
	fmt.Fprintf(w, "wcqstressd_rings{queue=%q} %d\n", d.name, d.rings())
	fmt.Fprintf(w, "# HELP wcqstressd_workers Stress worker goroutines.\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_workers gauge\n")
	fmt.Fprintf(w, "wcqstressd_workers{queue=%q} %d\n", d.name, d.workers)
	fmt.Fprintf(w, "# HELP wcqstressd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "wcqstressd_uptime_seconds{queue=%q} %g\n", d.name, time.Since(d.start).Seconds())
	fmt.Fprintf(w, "# HELP wcqstressd_waiters Goroutines currently parked on the queue's blocking facade.\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_waiters gauge\n")
	fmt.Fprintf(w, "wcqstressd_waiters{queue=%q} %d\n", d.name, snap.Waiters)
	fmt.Fprintf(w, "# HELP wcqstressd_handoffs_total Values moved by the direct-handoff rendezvous fast path (sends into parked receivers plus takeovers of parked senders).\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_handoffs_total counter\n")
	fmt.Fprintf(w, "wcqstressd_handoffs_total{queue=%q} %d\n", d.name, snap.Handoffs())
	fmt.Fprintf(w, "# HELP wcqstressd_handoff_hit_rate Fraction of handoff attempts that moved a value past the ring, in [0, 1].\n")
	fmt.Fprintf(w, "# TYPE wcqstressd_handoff_hit_rate gauge\n")
	fmt.Fprintf(w, "wcqstressd_handoff_hit_rate{queue=%q} %g\n", d.name, snap.HandoffRate())
	promHistogram(w, d.name, "wcqstressd_op_latency_seconds",
		"Sampled per-operation latency.", d.latency())
	promHistogram(w, d.name, "wcqstressd_parked_seconds",
		"Time waiters spent blocked (spin-phase hits and futex parks).", snap.Parked)
}

// promHistogram writes one histogram as summary-style quantile gauges
// plus _count and _max, converting nanoseconds to seconds.
func promHistogram(w io.Writer, queue, name, help string, h metrics.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
		fmt.Fprintf(w, "%s{queue=%q,quantile=%q} %g\n",
			name, queue, q.label, float64(h.Quantile(q.q))/1e9)
	}
	fmt.Fprintf(w, "%s_count{queue=%q} %d\n", name, queue, h.Count)
	fmt.Fprintf(w, "%s_max{queue=%q} %g\n", name, queue, float64(h.Max)/1e9)
}

// snapshotFile packages one interval as a wcqbench/v1 record: the
// figure is "live", ops is the interval's completed-op count, and the
// throughput axes carry the interval rate. The same schema the bench
// writes, so trajectory tooling reads both.
func (d *daemon) snapshotFile(opsDelta uint64, dt time.Duration) benchfmt.File {
	f := benchfmt.New(int(opsDelta), 1)
	mops := 0.0
	if dt > 0 {
		mops = float64(opsDelta) / dt.Seconds() / 1e6
	}
	f.Points = []benchfmt.Point{{
		Figure:      "live",
		Queue:       d.name,
		Threads:     d.workers,
		MopsMin:     mops,
		MopsMean:    mops,
		FootprintMB: float64(d.q.Footprint()) / (1 << 20),
		// The cumulative sampled op-latency ladder, in the same
		// latency_us fields the bench's open-loop points carry, so one
		// reader plots both.
		Latency: benchfmt.NewLatencyUS(d.latency()),
	}}
	return f
}

// promString is promText into a string (tests and debugging).
func (d *daemon) promString() string {
	var b strings.Builder
	d.promText(&b)
	return b.String()
}
