package main

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/queueapi"
)

// startWorkers launches the stress workload and returns a WaitGroup
// the caller waits on after signalling shutdown. Blocking queues
// (Closer + Waitable handles) get the producer/consumer split the
// blocking figures use, so the park points see real traffic;
// everything else gets pairwise nonblocking workers.
func (d *daemon) startWorkers() (*sync.WaitGroup, error) {
	var wg sync.WaitGroup
	_, blocking := d.q.(queueapi.Closer)
	if blocking {
		producers, consumers := harness.BlockingSplit(d.workers)
		for p := 0; p < producers; p++ {
			w, err := queueapi.WaitableHandle(d.q)
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go d.produce(&wg, p, w)
		}
		for c := 0; c < consumers; c++ {
			w, err := queueapi.WaitableHandle(d.q)
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go d.consume(&wg, producers+c, w)
		}
		return &wg, nil
	}
	for i := 0; i < d.workers; i++ {
		h, err := d.q.Handle()
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		wg.Add(1)
		go d.pairwise(&wg, i, h)
	}
	return &wg, nil
}

// produce sends until the queue closes (shutdown closes it) or the
// stop flag trips between sends.
func (d *daemon) produce(wg *sync.WaitGroup, i int, w queueapi.Waitable) {
	defer wg.Done()
	slot, hist := &d.slots[i], d.hists[i]
	rng := uint64(i+1)*2654435761 + 1
	for n := uint64(0); !d.stop.Load(); n++ {
		rng = xorshift(rng)
		if n&latSampleMask == 0 {
			t := time.Now()
			if w.Send(rng) != nil {
				return
			}
			hist.Record(uint64(time.Since(t)))
		} else if w.Send(rng) != nil {
			return
		}
		slot.ops.Add(1)
	}
}

// consume receives until close-drain; the final ErrClosed is the
// normal exit.
func (d *daemon) consume(wg *sync.WaitGroup, i int, w queueapi.Waitable) {
	defer wg.Done()
	slot, hist := &d.slots[i], d.hists[i]
	for n := uint64(0); ; n++ {
		if n&latSampleMask == 0 {
			t := time.Now()
			if _, err := w.Recv(); err != nil {
				reportIfAbnormal(err)
				return
			}
			hist.Record(uint64(time.Since(t)))
		} else if _, err := w.Recv(); err != nil {
			reportIfAbnormal(err)
			return
		}
		slot.ops.Add(1)
	}
}

// pairwise drives a nonblocking queue in burst/drain cycles: enqueue
// up to a burst (or until full), then drain it back. Bursts push the
// unbounded queues across ring boundaries (seal/recycle/pool traffic)
// and the bounded ones through full/empty transitions — the regimes
// the event counters exist to watch; a flat one-in-one-out loop would
// never leave the fast path.
func (d *daemon) pairwise(wg *sync.WaitGroup, i int, h queueapi.Handle) {
	defer wg.Done()
	const burst = 256
	slot, hist := &d.slots[i], d.hists[i]
	rng := uint64(i+1)*2654435761 + 1
	for !d.stop.Load() {
		// One timed scalar pair per cycle samples op latency.
		t := time.Now()
		rng = xorshift(rng)
		if h.Enqueue(rng) {
			if _, ok := h.Dequeue(); ok {
				hist.Record(uint64(time.Since(t)))
				slot.ops.Add(2)
			} else {
				// Another worker drained our value; the enqueue still
				// counted as one completed op.
				slot.ops.Add(1)
			}
		}
		pending := 0
		for ; pending < burst; pending++ {
			rng = xorshift(rng)
			if !h.Enqueue(rng) {
				break
			}
		}
		drained := 0
		for ; drained < pending; drained++ {
			if _, ok := h.Dequeue(); !ok {
				break
			}
		}
		slot.ops.Add(uint64(pending + drained))
		if pending == 0 {
			runtime.Gosched()
		}
	}
}

func reportIfAbnormal(err error) {
	if !errors.Is(err, queueapi.ErrClosed) {
		fmt.Printf("wcqstressd: worker error: %v\n", err)
	}
}

// xorshift is the same tiny PRNG the harness workloads use.
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}
