package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/queues"
)

// liveDaemon builds a daemon over a small blocking Chan with metrics
// on and pushes some traffic through it, so the exporters have real
// numbers to render.
func liveDaemon(t *testing.T) *daemon {
	t.Helper()
	q, err := queues.New("Chan", queues.Config{
		Capacity:   256,
		MaxThreads: 8,
		Metrics:    metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon("Chan", q, 2)
	h, err := q.Handle()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if !h.Enqueue(i) {
			t.Fatal("enqueue failed on an empty chan")
		}
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("dequeue failed after enqueue")
		}
		d.slots[0].ops.Add(2)
		d.hists[0].Record(uint64(100 + i))
	}
	return d
}

func TestPromTextShape(t *testing.T) {
	out := liveDaemon(t).promString()
	for _, want := range []string{
		`wcqstressd_ops_total{queue="Chan"} 200`,
		`wcqstressd_events_total{queue="Chan",event="park"}`,
		`wcqstressd_events_total{queue="Chan",event="close_drain"}`,
		`wcqstressd_footprint_bytes{queue="Chan"}`,
		`wcqstressd_op_latency_seconds{queue="Chan",quantile="0.99"}`,
		`wcqstressd_parked_seconds_count{queue="Chan"} 0`,
		"# TYPE wcqstressd_ops_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus text missing %q in:\n%s", want, out)
		}
	}
}

func TestVarsShape(t *testing.T) {
	d := liveDaemon(t)
	m, ok := d.vars().(map[string]any)
	if !ok {
		t.Fatalf("vars() is %T, want a map", d.vars())
	}
	if m["ops_total"].(uint64) != 200 {
		t.Fatalf("ops_total %v, want 200", m["ops_total"])
	}
	events := m["events"].(map[string]uint64)
	if _, ok := events["park"]; !ok {
		t.Fatalf("events map missing park: %v", events)
	}
	lat := m["op_latency_ns"].(map[string]uint64)
	if lat["count"] != 100 || lat["p50"] == 0 {
		t.Fatalf("latency quantiles implausible: %v", lat)
	}
}

func TestSnapshotFileValidates(t *testing.T) {
	d := liveDaemon(t)
	f := d.snapshotFile(12345, 2*time.Second)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	p := f.Points[0]
	if p.Figure != "live" || p.Queue != "Chan" || p.MopsMean <= 0 {
		t.Fatalf("snapshot point %+v", p)
	}
}

func TestSnapshotFileZeroIntervalValidates(t *testing.T) {
	// The final shutdown snapshot can cover an almost-empty interval;
	// it must still validate (zero throughput is legal).
	d := liveDaemon(t)
	f := d.snapshotFile(0, 0)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}
