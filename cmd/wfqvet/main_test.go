package main

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoClean runs the full analyzer suite over the whole module
// in-process: the repository must stay wfqvet-clean, so any invariant
// regression fails `go test` as well as the CI lint job.
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := analysis.Run(pkgs, analyzers, analysis.DefaultArchSizes())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
