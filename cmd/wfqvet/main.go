// Command wfqvet is the repository's static vet suite: one run checks
// every concurrency invariant the compiler cannot see.
//
//	go run ./cmd/wfqvet ./...              # whole module
//	go run ./cmd/wfqvet ./internal/wcq     # one subtree
//	GOARCH=386 wfqvet ./...                # 32-bit layouts (CI cross-compile)
//
// The analyzers (see each package's doc for the full contract):
//
//	rawatomic   raw sync/atomic calls on plain words are forbidden
//	            outside internal/atomicx
//	falseshare  //wfq:padded sizes and //wfq:isolate hot-field spacing
//	            hold under both amd64 and 386 layouts
//	hotalloc    //wfq:noalloc functions contain no allocating construct
//	            and call only vetted functions
//	loopload    //wfq:stable fields are not re-read inside loops
//	doccheck    exported identifiers carry doc comments
//
// Layout checks always evaluate both amd64 and 386 sizes; running the
// whole suite under GOARCH=386 additionally type-checks the 32-bit
// build configuration, which CI does in the cross-compile job.
//
// Exit status is 1 when any analyzer fires, 2 on a loading failure.
// -list prints the analyzers and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/doccheck"
	"repro/internal/analysis/falseshare"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/loopload"
	"repro/internal/analysis/rawatomic"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	rawatomic.Analyzer,
	falseshare.Analyzer,
	hotalloc.Analyzer,
	loopload.Analyzer,
	doccheck.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wfqvet [-list] [package patterns]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfqvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers, analysis.DefaultArchSizes())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wfqvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
