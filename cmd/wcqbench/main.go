// Command wcqbench regenerates the tables behind every figure of the
// wCQ paper's evaluation (SPAA '22, §6, Figs. 10-12).
//
// Usage:
//
//	wcqbench -figure 11b                 # one figure
//	wcqbench -figure all -ops 1000000    # the full evaluation
//	wcqbench -figure 10a -queues wCQ,SCQ,LCRQ
//	wcqbench -figure all -record EXPERIMENTS.md
//	wcqbench -figure s1 -shards 8        # sharded scale-out sweep
//	wcqbench -figure s2 -batch 32        # batched 50/50 workload
//
// Absolute numbers depend on the host; the reproduction target is the
// SHAPE of each figure (who wins, by what factor, where lines cross).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure id (10a,10b,11a,11b,11c,12a,12b,12c) or 'all'")
		ops     = flag.Int("ops", 200_000, "operations per measurement point (paper: 10,000,000)")
		reps    = flag.Int("reps", 3, "repetitions per point (paper: 10)")
		maxThr  = flag.Int("maxthreads", 0, "truncate the thread sweep (0 = full paper sweep)")
		queuesF = flag.String("queues", "", "comma-separated queue subset (default: figure's full line-up)")
		record  = flag.String("record", "", "append results as a markdown section to this file")
		shards  = flag.Int("shards", 0, "shard count for the Sharded queue (0 = default 4)")
		batch   = flag.Int("batch", 0, "batch size; > 1 drives workloads through EnqueueBatch/DequeueBatch")
	)
	flag.Parse()

	opts := harness.RunOpts{Ops: *ops, Reps: *reps, MaxThreads: *maxThr, Shards: *shards, Batch: *batch}
	if *queuesF != "" {
		opts.Queues = strings.Split(*queuesF, ",")
	}

	var figs []harness.Figure
	if *figure == "all" {
		figs = harness.Figures()
	} else {
		f, err := harness.FigureByID(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		figs = []harness.Figure{f}
	}

	var md strings.Builder
	fmt.Fprintf(&md, "\n## Run %s (GOMAXPROCS=%d, %d CPU)\n\n",
		time.Now().Format(time.RFC3339), runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(&md, "ops/point=%d reps=%d\n\n", *ops, *reps)

	for _, f := range figs {
		start := time.Now()
		pts := f.Run(opts)
		f.Render(os.Stdout, pts, opts)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		if *record != "" {
			md.WriteString("### Figure " + f.ID + ": " + f.Title + "\n\n```\n")
			var sb strings.Builder
			f.Render(&sb, pts, opts)
			md.WriteString(sb.String())
			md.WriteString("```\n\n")
		}
	}

	if *record != "" {
		fh, err := os.OpenFile(*record, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fh.Close()
		if _, err := fh.WriteString(md.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded to %s\n", *record)
	}
}
