// Command wcqbench regenerates the tables behind every figure of the
// wCQ paper's evaluation (SPAA '22, §6, Figs. 10-12) and the
// post-paper figures (s1/s2 sharded scale-out, b1 blocking facade).
//
// Usage:
//
//	wcqbench -figure 11b                 # one figure
//	wcqbench -figure all -ops 1000000    # the full evaluation
//	wcqbench -figure 10a -queues wCQ,SCQ,LCRQ
//	wcqbench -figure all -record EXPERIMENTS.md
//	wcqbench -figure s1 -shards 8        # sharded scale-out sweep
//	wcqbench -figure s2 -batch 32        # batched 50/50 workload
//	wcqbench -blocking                   # blocking figures + wakeup latency
//	wcqbench -figure u1                  # unbounded burst/drain + peak footprint
//	wcqbench -figure p2                  # native batch reservation sweep
//	wcqbench -figure p2 -smoke-batch     # CI smoke: batch=32 must beat scalar
//	wcqbench -figure l1                  # open-loop latency vs offered load
//	wcqbench -figure l1 -loads 0.25,0.9 -arrival fixed
//	wcqbench -figure l1 -gate BENCH_queue.json   # CI: p99/footprint regression gate
//	wcqbench -figure w1                  # wait strategies vs waiter count
//	wcqbench -figure w1 -waiters 8,64 -smoke-wait   # CI: adaptive vs park, same run
//	wcqbench -figure h1                  # direct handoff on/off vs role imbalance
//	wcqbench -figure h1 -smoke-handoff   # CI: handoff-on must beat handoff-off, same run
//	wcqbench -figure b1 -handoff off     # any blocking figure with the fast path disabled
//	wcqbench -figure all -json BENCH_queue.json
//
// Absolute numbers depend on the host; the reproduction target is the
// SHAPE of each figure (who wins, by what factor, where lines cross).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/clihelper"
	"repro/internal/harness"
	"repro/internal/ringcore"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure id (10a..12c, s1, s2, b1, u1, p2, l1) or 'all'")
		ops      = flag.Int("ops", 200_000, "operations per measurement point (paper: 10,000,000)")
		reps     = flag.Int("reps", 3, "repetitions per point (paper: 10)")
		maxThr   = flag.Int("maxthreads", 0, "truncate the thread sweep (0 = full paper sweep)")
		queuesF  = flag.String("queues", "", "comma-separated queue subset (default: figure's full line-up)")
		record   = flag.String("record", "", "append results as a markdown section to this file")
		jsonPath = flag.String("json", "", "write machine-readable results (wcqbench/v1) to this file, e.g. BENCH_queue.json")
		latSamp  = flag.Int("latency-samples", 50, "wakeup-latency samples per blocking queue")
		smoke    = flag.Bool("smoke-batch", false, "exit nonzero unless figure p2's batch=32 per-element throughput beats batch=1 for wCQ and SCQ (relative check, robust to host speed)")
		loadsF   = flag.String("loads", "", "figure l1: comma-separated offered-load fractions of calibrated capacity (default 0.25,0.5,0.75,0.9,1.1)")
		arrivalF = flag.String("arrival", "", "figure l1: inter-arrival process, poisson (default) or fixed")
		gate     = flag.String("gate", "", "CI bench gate: compare this run's sub-saturation l1 points against the committed wcqbench/v1 file and exit nonzero on p99/footprint regression")
		waitersF = flag.String("waiters", "", "figure w1: comma-separated waiter-count sweep (default 8,64,256,1024)")
		smokeW   = flag.Bool("smoke-wait", false, "exit nonzero unless figure w1's adaptive strategy beats immediate park on wakeup p99 at the lowest waiter count and stays within throughput noise at the highest (relative same-run check)")
		smokeH   = flag.Bool("smoke-handoff", false, "exit nonzero unless figure h1's handoff-on beats handoff-off on blocking throughput at the receiver-heavy split with no blocking-wait p99 regression (relative same-run check)")
	)
	shared := clihelper.Register(flag.CommandLine, 1<<16)
	flag.Parse()

	ringKind, err := shared.RingKind()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := harness.RunOpts{
		Ops:        *ops,
		Reps:       *reps,
		MaxThreads: *maxThr,
		Shards:     shared.Shards,
		Ring:       ringKind,
		Batch:      shared.Batch,
		Capacity:   shared.Capacity,
		Emulate:    shared.Emulate,
		Core:       shared.CoreOptions(),
		Metrics:    shared.Metrics,
	}
	if shared.Capacity == 1<<16 {
		opts.Capacity = 0 // the default: let each figure use the paper's ring size
	}
	if *queuesF != "" {
		opts.Queues = strings.Split(*queuesF, ",")
	}
	if opts.Loads, err = clihelper.ParseFloatList(*loadsF); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if opts.Waiters, err = clihelper.ParseIntList(*waitersF); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *arrivalF != "" {
		if opts.Arrival, err = harness.ParseArrival(*arrivalF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if opts.Handoff, err = shared.HandoffMode(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var figs []harness.Figure
	if *figure == "all" {
		for _, f := range harness.Figures() {
			// -blocking narrows "all" to the blocking figures, the same
			// way -queue all narrows to the Chan facades in wcqstress.
			if shared.Blocking && !f.Blocking {
				continue
			}
			figs = append(figs, f)
		}
	} else {
		f, err := harness.FigureByID(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		figs = []harness.Figure{f}
	}

	var md strings.Builder
	fmt.Fprintf(&md, "\n## Run %s (GOMAXPROCS=%d, %d CPU)\n\n",
		time.Now().Format(time.RFC3339), runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(&md, "ops/point=%d reps=%d\n\n", *ops, *reps)

	jf := benchfmt.New(*ops, *reps)

	for _, f := range figs {
		start := time.Now()
		pts := f.Run(opts)
		f.Render(os.Stdout, pts, opts)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		for _, pt := range pts {
			bp := benchfmt.Point{Figure: f.ID, Queue: pt.Queue, Threads: pt.Threads, Burst: pt.Burst}
			switch {
			case pt.Batch > 0:
				// Batch-sweep figures (p2) stamp their own per-point size.
				bp.Batch = pt.Batch
			case !f.Blocking && len(f.Bursts) == 0 && len(f.Loads) == 0:
				// The blocking, burst and open-loop workloads ignore
				// -batch; stamping it here would record a batched run
				// that never happened.
				bp.Batch = shared.Batch
			}
			if pt.Err != nil {
				bp.Err = pt.Err.Error()
			} else {
				bp.MopsMin = pt.Mops.Min
				bp.MopsMean = pt.Mops.Mean
				bp.MopsMax = pt.Mops.Max
				bp.MemoryMB = pt.MemoryMB
				bp.FootprintMB = pt.FootprintMB
				bp.Load = pt.Load
				bp.OfferedMops = pt.OfferedMops
				bp.Latency = benchfmt.NewLatencyUS(pt.Latency)
				bp.Wait = pt.Wait
				bp.SpinHitRate = pt.SpinHitRate
				bp.Producers = pt.Producers
				bp.Consumers = pt.Consumers
				bp.Handoff = pt.Handoff
				bp.HandoffRate = pt.HandoffRate
			}
			jf.Points = append(jf.Points, bp)
		}
		if *record != "" {
			md.WriteString("### Figure " + f.ID + ": " + f.Title + "\n\n```\n")
			var sb strings.Builder
			f.Render(&sb, pts, opts)
			md.WriteString(sb.String())
			md.WriteString("```\n\n")
		}
		if f.Blocking {
			reportWakeupLatency(f, opts, shared, *latSamp, &md, *record != "")
		}
	}

	if *record != "" {
		fh, err := os.OpenFile(*record, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fh.Close()
		if _, err := fh.WriteString(md.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded to %s\n", *record)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(jf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", *jsonPath, len(jf.Points))
	}

	if *smoke {
		if err := smokeBatch(jf.Points); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-batch FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-batch ok: p2 batch=32 beats scalar for wCQ and SCQ")
	}

	if *smokeW {
		if err := smokeWait(jf.Points); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-wait FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-wait ok: adaptive wait beats park on p99 at low waiter counts and holds throughput at high")
	}

	if *smokeH {
		if err := smokeHandoff(jf.Points); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-handoff FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-handoff ok: handoff-on beats handoff-off at the receiver-heavy split with no wait-p99 regression")
	}

	if *gate != "" {
		if err := benchGate(jf.Points, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "bench-gate FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bench-gate ok: sub-saturation l1 latency and footprint within bounds of", *gate)
	}
}

// Bench-gate tolerances. Latency fractions are the committed load
// levels considered sub-saturation (where p99 is a stable property of
// the queue, not of the knee). The p99 band is wide because absolute
// latency moves with host speed and CI noise — the gate exists to
// catch order-of-magnitude regressions (a lost wakeup, an accidental
// O(n) scan), not 10% drift. On top of the multiplicative band, the
// threshold never drops below gateP99FloorUS: CO-safe sub-saturation
// p99 is dominated by scheduler stalls on a busy runner (observed
// drifting 16x between back-to-back identical runs), while the bug
// class the gate targets drives p99 to the rep span — hundreds of
// milliseconds — because a capacity loss at the 0.5 point tips the
// run past saturation and the backlog grows for the rest of the run.
// Footprint is host-independent, so its band is tight.
const (
	gateSubSaturation = 0.5
	gateP99Factor     = 8.0
	gateP99FloorUS    = 25000.0
	gateFootFactor    = 2.0
	gateFootSlackMB   = 0.5
)

// benchGate compares this run's sub-saturation open-loop points
// against the committed wcqbench/v1 baseline: for every (queue, load)
// present in both, p99 latency must stay within gateP99Factor of the
// committed value and footprint within gateFootFactor (plus slack).
// Zero overlapping points is itself a failure — a gate that compares
// nothing must not pass.
func benchGate(points []benchfmt.Point, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchfmt.File
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("%s does not parse: %w", path, err)
	}
	if err := committed.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := map[string]benchfmt.Point{}
	for _, p := range committed.Points {
		if p.Figure == "l1" && p.Err == "" && p.Latency != nil && p.Load <= gateSubSaturation {
			base[fmt.Sprintf("%s/%.3f", p.Queue, p.Load)] = p
		}
	}
	if len(base) == 0 {
		return fmt.Errorf("%s has no sub-saturation l1 latency points (regenerate it with -figure all -json)", path)
	}
	compared := 0
	for _, p := range points {
		if p.Figure != "l1" || p.Err != "" || p.Latency == nil || p.Load > gateSubSaturation {
			continue
		}
		b, ok := base[fmt.Sprintf("%s/%.3f", p.Queue, p.Load)]
		if !ok {
			continue
		}
		compared++
		limit := b.Latency.P99 * gateP99Factor
		if limit < gateP99FloorUS {
			limit = gateP99FloorUS
		}
		if p.Latency.P99 > limit {
			return fmt.Errorf("%s at load %.2f: p99 %.1fµs exceeds %.1fµs (committed %.1fµs x%g, floor %.0fµs)",
				p.Queue, p.Load, p.Latency.P99, limit, b.Latency.P99, gateP99Factor, gateP99FloorUS)
		}
		if limit := b.FootprintMB*gateFootFactor + gateFootSlackMB; p.FootprintMB > limit {
			return fmt.Errorf("%s at load %.2f: footprint %.3fMB exceeds %.3fMB (committed %.3fMB x%g + %.1f)",
				p.Queue, p.Load, p.FootprintMB, limit, b.FootprintMB, gateFootFactor, gateFootSlackMB)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no points of this run overlap the committed sub-saturation l1 baseline (run with -figure l1)")
	}
	fmt.Printf("bench-gate: %d sub-saturation points compared\n", compared)
	return nil
}

// smokeBatch is the CI perf gate: on the same run (same host, same
// load), the native batch=32 per-element throughput must strictly beat
// the scalar (batch=1) path for both ring cores. Being relative to the
// run itself, the check is robust to absolute host speed.
func smokeBatch(points []benchfmt.Point) error {
	mean := map[string]float64{}
	for _, p := range points {
		if p.Figure == "p2" && p.Err == "" {
			mean[fmt.Sprintf("%s/%d", p.Queue, p.Batch)] = p.MopsMean
		}
	}
	for _, q := range []string{"wCQ", "SCQ"} {
		scalar, ok1 := mean[q+"/1"]
		batched, ok2 := mean[q+"/32"]
		if !ok1 || !ok2 {
			return fmt.Errorf("%s: missing p2 points (run with -figure p2 or all)", q)
		}
		if batched <= scalar {
			return fmt.Errorf("%s: batch=32 %.3f Mops/s <= scalar %.3f Mops/s", q, batched, scalar)
		}
	}
	return nil
}

// smokeWait tolerances. At high waiter counts adaptive collapses to
// parking, so throughput should match the park baseline to within
// run-to-run noise; 0.7 leaves headroom for a 1-vCPU CI runner. The
// latency check allows a 2x factor plus an absolute floor (same shape
// as the bench gate's): both strategies' p99 sit at single-digit
// microseconds when healthy, where run-to-run noise swamps a strict
// comparison, while the regression the gate exists to catch — a
// thundering herd or a spin phase that burns the workers' CPU — shows
// up as hundreds of microseconds.
const (
	smokeWaitMopsFraction = 0.7
	smokeWaitP99Factor    = 2.0
	smokeWaitP99FloorUS   = 25.0
)

// smokeWait is the wait-strategy CI gate: on the same w1 run, for each
// queue, the adaptive (spin-then-park) strategy must deliver a
// blocking-wait p99 no worse than the immediate-park baseline at the
// LOWEST waiter count swept (where spinning should win outright), and
// throughput within noise of the baseline at the HIGHEST (where
// adaptation must have collapsed to parking instead of burning the CPU
// the workers need). Relative to the run itself, so robust to host
// speed.
func smokeWait(points []benchfmt.Point) error {
	type key struct {
		queue, wait string
		waiters     int
	}
	pts := map[key]benchfmt.Point{}
	queues := map[string]bool{}
	lo, hi := 0, 0
	for _, p := range points {
		if p.Figure != "w1" || p.Err != "" {
			continue
		}
		pts[key{p.Queue, p.Wait, p.Threads}] = p
		queues[p.Queue] = true
		if lo == 0 || p.Threads < lo {
			lo = p.Threads
		}
		if p.Threads > hi {
			hi = p.Threads
		}
	}
	if len(pts) == 0 {
		return fmt.Errorf("no w1 points in this run (run with -figure w1 or all)")
	}
	for q := range queues {
		pLo, ok1 := pts[key{q, "park", lo}]
		aLo, ok2 := pts[key{q, "adaptive", lo}]
		pHi, ok3 := pts[key{q, "park", hi}]
		aHi, ok4 := pts[key{q, "adaptive", hi}]
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return fmt.Errorf("%s: missing park/adaptive points at %d or %d waiters", q, lo, hi)
		}
		if pLo.Latency == nil || aLo.Latency == nil {
			return fmt.Errorf("%s: w1 points at %d waiters carry no wait ladder", q, lo)
		}
		bound := smokeWaitP99Factor * pLo.Latency.P99
		if bound < smokeWaitP99FloorUS {
			bound = smokeWaitP99FloorUS
		}
		if aLo.Latency.P99 > bound {
			return fmt.Errorf("%s @ %d waiters: adaptive wait p99 %.1fµs > park baseline %.1fµs (bound %.1fµs)",
				q, lo, aLo.Latency.P99, pLo.Latency.P99, bound)
		}
		if aHi.MopsMean < smokeWaitMopsFraction*pHi.MopsMean {
			return fmt.Errorf("%s @ %d waiters: adaptive %.3f Mops/s < %.0f%% of park %.3f Mops/s",
				q, hi, aHi.MopsMean, smokeWaitMopsFraction*100, pHi.MopsMean)
		}
	}
	return nil
}

// smokeHandoff tolerances. Throughput must strictly improve at the
// receiver-heavy split — that split is the rendezvous sweet spot, where
// skipping the ring and the wake chain is worth a solid margin, so a
// strict same-run comparison is safe. The wait-ladder p99 check has the
// usual factor-plus-floor shape (see smokeWait): handoff must not
// regress parked waits, but sub-25µs p99s are scheduler noise on a CI
// runner.
const (
	smokeHandoffP99Factor  = 2.0
	smokeHandoffP99FloorUS = 25.0
)

// smokeHandoff is the direct-handoff CI gate: on the same h1 run, for
// the Chan queue at the most receiver-heavy split swept (preferring the
// canonical 1:3), handoff-on must beat handoff-off on blocking
// throughput, and the blocking-wait p99 must not regress beyond the
// factor/floor band. Relative to the run itself, so robust to host
// speed.
func smokeHandoff(points []benchfmt.Point) error {
	type key struct {
		handoff string
		p, c    int
	}
	pts := map[key]benchfmt.Point{}
	var splits [][2]int
	for _, p := range points {
		if p.Figure != "h1" || p.Err != "" || p.Queue != "Chan" {
			continue
		}
		k := key{p.Handoff, p.Producers, p.Consumers}
		pts[k] = p
		if p.Handoff == "on" {
			splits = append(splits, [2]int{p.Producers, p.Consumers})
		}
	}
	if len(pts) == 0 {
		return fmt.Errorf("no h1 Chan points in this run (run with -figure h1 or all)")
	}
	// Prefer the canonical 1:3 split; otherwise the most receiver-heavy
	// one present (smallest producers/consumers ratio, by integer
	// cross-multiplication).
	best, found, canonical := [2]int{}, false, false
	for _, s := range splits {
		if _, ok := pts[key{"off", s[0], s[1]}]; !ok {
			continue
		}
		switch {
		case s[1] == 3*s[0] && !canonical:
			best, found, canonical = s, true, true
		case !canonical && (!found || s[0]*best[1] < best[0]*s[1]):
			best, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("no h1 split present with both handoff settings")
	}
	on := pts[key{"on", best[0], best[1]}]
	off := pts[key{"off", best[0], best[1]}]
	// Compare best-of-reps, not means: a single multi-ms scheduler stall
	// on a shared runner lands in one arm's mean and flips a comparison
	// the steady-state reps decide the other way. The max is each arm's
	// stall-free estimate, and the two arms' reps are interleaved in
	// time by the harness, so it stays a same-conditions comparison.
	onM, offM := on.MopsMax, off.MopsMax
	if onM == 0 || offM == 0 {
		onM, offM = on.MopsMean, off.MopsMean
	}
	if onM <= offM {
		return fmt.Errorf("Chan @ %d:%d: handoff-on %.3f Mops/s <= handoff-off %.3f Mops/s",
			best[0], best[1], onM, offM)
	}
	if on.Latency != nil && off.Latency != nil {
		bound := smokeHandoffP99Factor * off.Latency.P99
		if bound < smokeHandoffP99FloorUS {
			bound = smokeHandoffP99FloorUS
		}
		if on.Latency.P99 > bound {
			return fmt.Errorf("Chan @ %d:%d: handoff-on wait p99 %.1fµs > handoff-off %.1fµs (bound %.1fµs)",
				best[0], best[1], on.Latency.P99, off.Latency.P99, bound)
		}
	}
	return nil
}

// reportWakeupLatency prints (and optionally records) the parked-Recv
// wakeup latency for each queue of a blocking figure — the companion
// metric to figure b1's throughput sweep.
func reportWakeupLatency(f harness.Figure, opts harness.RunOpts, shared *clihelper.Flags, samples int, md *strings.Builder, record bool) {
	names := f.Queues
	if len(opts.Queues) > 0 {
		names = opts.Queues
	}
	// A handoff figure A/Bs the ladder itself: the rendezvous path
	// exists to cut exactly this latency, so the report pairs each
	// queue's on/off ladders instead of measuring only the flag setting.
	settings := []string{""}
	if len(f.Handoffs) > 0 {
		settings = f.Handoffs
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wakeup latency (parked Recv -> Send, %d samples, µs):\n", samples)
	for _, name := range names {
		for _, hname := range settings {
			label := name
			cfg, err := shared.Config(4)
			if err == nil && hname != "" {
				label = name + "/" + hname
				cfg.Handoff, err = ringcore.HandoffByName(hname)
			}
			if err != nil {
				fmt.Fprintf(&sb, "%-16s n/a (%v)\n", label, err)
				continue
			}
			hist, err := harness.WakeupLatency(name, cfg, samples)
			if err != nil {
				fmt.Fprintf(&sb, "%-16s n/a (%v)\n", label, err)
				continue
			}
			us := func(q float64) float64 { return float64(hist.Quantile(q)) / 1e3 }
			fmt.Fprintf(&sb, "%-16s p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f\n",
				label, us(0.50), us(0.90), us(0.99), us(0.999), float64(hist.Max)/1e3)
		}
	}
	fmt.Print(sb.String() + "\n")
	if record {
		md.WriteString("```\n" + sb.String() + "```\n\n")
	}
}
