// Command wcqbench regenerates the tables behind every figure of the
// wCQ paper's evaluation (SPAA '22, §6, Figs. 10-12) and the
// post-paper figures (s1/s2 sharded scale-out, b1 blocking facade).
//
// Usage:
//
//	wcqbench -figure 11b                 # one figure
//	wcqbench -figure all -ops 1000000    # the full evaluation
//	wcqbench -figure 10a -queues wCQ,SCQ,LCRQ
//	wcqbench -figure all -record EXPERIMENTS.md
//	wcqbench -figure s1 -shards 8        # sharded scale-out sweep
//	wcqbench -figure s2 -batch 32        # batched 50/50 workload
//	wcqbench -blocking                   # blocking figures + wakeup latency
//	wcqbench -figure u1                  # unbounded burst/drain + peak footprint
//	wcqbench -figure p2                  # native batch reservation sweep
//	wcqbench -figure p2 -smoke-batch     # CI smoke: batch=32 must beat scalar
//	wcqbench -figure all -json BENCH_queue.json
//
// Absolute numbers depend on the host; the reproduction target is the
// SHAPE of each figure (who wins, by what factor, where lines cross).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/clihelper"
	"repro/internal/harness"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure id (10a..12c, s1, s2, b1, u1) or 'all'")
		ops      = flag.Int("ops", 200_000, "operations per measurement point (paper: 10,000,000)")
		reps     = flag.Int("reps", 3, "repetitions per point (paper: 10)")
		maxThr   = flag.Int("maxthreads", 0, "truncate the thread sweep (0 = full paper sweep)")
		queuesF  = flag.String("queues", "", "comma-separated queue subset (default: figure's full line-up)")
		record   = flag.String("record", "", "append results as a markdown section to this file")
		jsonPath = flag.String("json", "", "write machine-readable results (wcqbench/v1) to this file, e.g. BENCH_queue.json")
		latSamp  = flag.Int("latency-samples", 50, "wakeup-latency samples per blocking queue")
		smoke    = flag.Bool("smoke-batch", false, "exit nonzero unless figure p2's batch=32 per-element throughput beats batch=1 for wCQ and SCQ (relative check, robust to host speed)")
	)
	shared := clihelper.Register(flag.CommandLine, 1<<16)
	flag.Parse()

	ringKind, err := shared.RingKind()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := harness.RunOpts{
		Ops:        *ops,
		Reps:       *reps,
		MaxThreads: *maxThr,
		Shards:     shared.Shards,
		Ring:       ringKind,
		Batch:      shared.Batch,
		Capacity:   shared.Capacity,
		Emulate:    shared.Emulate,
		Core:       shared.CoreOptions(),
		Metrics:    shared.Metrics,
	}
	if shared.Capacity == 1<<16 {
		opts.Capacity = 0 // the default: let each figure use the paper's ring size
	}
	if *queuesF != "" {
		opts.Queues = strings.Split(*queuesF, ",")
	}

	var figs []harness.Figure
	if *figure == "all" {
		for _, f := range harness.Figures() {
			// -blocking narrows "all" to the blocking figures, the same
			// way -queue all narrows to the Chan facades in wcqstress.
			if shared.Blocking && !f.Blocking {
				continue
			}
			figs = append(figs, f)
		}
	} else {
		f, err := harness.FigureByID(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		figs = []harness.Figure{f}
	}

	var md strings.Builder
	fmt.Fprintf(&md, "\n## Run %s (GOMAXPROCS=%d, %d CPU)\n\n",
		time.Now().Format(time.RFC3339), runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintf(&md, "ops/point=%d reps=%d\n\n", *ops, *reps)

	jf := benchfmt.New(*ops, *reps)

	for _, f := range figs {
		start := time.Now()
		pts := f.Run(opts)
		f.Render(os.Stdout, pts, opts)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		for _, pt := range pts {
			bp := benchfmt.Point{Figure: f.ID, Queue: pt.Queue, Threads: pt.Threads, Burst: pt.Burst}
			switch {
			case pt.Batch > 0:
				// Batch-sweep figures (p2) stamp their own per-point size.
				bp.Batch = pt.Batch
			case !f.Blocking && len(f.Bursts) == 0:
				// The blocking and burst workloads ignore -batch;
				// stamping it here would record a batched run that
				// never happened.
				bp.Batch = shared.Batch
			}
			if pt.Err != nil {
				bp.Err = pt.Err.Error()
			} else {
				bp.MopsMin = pt.Mops.Min
				bp.MopsMean = pt.Mops.Mean
				bp.MemoryMB = pt.MemoryMB
				bp.FootprintMB = pt.FootprintMB
			}
			jf.Points = append(jf.Points, bp)
		}
		if *record != "" {
			md.WriteString("### Figure " + f.ID + ": " + f.Title + "\n\n```\n")
			var sb strings.Builder
			f.Render(&sb, pts, opts)
			md.WriteString(sb.String())
			md.WriteString("```\n\n")
		}
		if f.Blocking {
			reportWakeupLatency(f, opts, shared, *latSamp, &md, *record != "")
		}
	}

	if *record != "" {
		fh, err := os.OpenFile(*record, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fh.Close()
		if _, err := fh.WriteString(md.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded to %s\n", *record)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(jf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d points)\n", *jsonPath, len(jf.Points))
	}

	if *smoke {
		if err := smokeBatch(jf.Points); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-batch FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-batch ok: p2 batch=32 beats scalar for wCQ and SCQ")
	}
}

// smokeBatch is the CI perf gate: on the same run (same host, same
// load), the native batch=32 per-element throughput must strictly beat
// the scalar (batch=1) path for both ring cores. Being relative to the
// run itself, the check is robust to absolute host speed.
func smokeBatch(points []benchfmt.Point) error {
	mean := map[string]float64{}
	for _, p := range points {
		if p.Figure == "p2" && p.Err == "" {
			mean[fmt.Sprintf("%s/%d", p.Queue, p.Batch)] = p.MopsMean
		}
	}
	for _, q := range []string{"wCQ", "SCQ"} {
		scalar, ok1 := mean[q+"/1"]
		batched, ok2 := mean[q+"/32"]
		if !ok1 || !ok2 {
			return fmt.Errorf("%s: missing p2 points (run with -figure p2 or all)", q)
		}
		if batched <= scalar {
			return fmt.Errorf("%s: batch=32 %.3f Mops/s <= scalar %.3f Mops/s", q, batched, scalar)
		}
	}
	return nil
}

// reportWakeupLatency prints (and optionally records) the parked-Recv
// wakeup latency for each queue of a blocking figure — the companion
// metric to figure b1's throughput sweep.
func reportWakeupLatency(f harness.Figure, opts harness.RunOpts, shared *clihelper.Flags, samples int, md *strings.Builder, record bool) {
	names := f.Queues
	if len(opts.Queues) > 0 {
		names = opts.Queues
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wakeup latency (parked Recv -> Send, %d samples, µs):\n", samples)
	for _, name := range names {
		cfg, err := shared.Config(4)
		if err != nil {
			fmt.Fprintf(&sb, "%-12s n/a (%v)\n", name, err)
			continue
		}
		hist, err := harness.WakeupLatency(name, cfg, samples)
		if err != nil {
			fmt.Fprintf(&sb, "%-12s n/a (%v)\n", name, err)
			continue
		}
		us := func(q float64) float64 { return float64(hist.Quantile(q)) / 1e3 }
		fmt.Fprintf(&sb, "%-12s p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f\n",
			name, us(0.50), us(0.90), us(0.99), us(0.999), float64(hist.Max)/1e3)
	}
	fmt.Print(sb.String() + "\n")
	if record {
		md.WriteString("```\n" + sb.String() + "```\n\n")
	}
}
