// Command wcqstress runs the MPMC correctness checker against any
// queue in the registry for an arbitrary duration — the long-running
// validation companion to the unit suite.
//
//	wcqstress -queue wCQ -producers 4 -consumers 4 -rounds 20
//	wcqstress -queue all -slowpath            # force wCQ's helped paths
//	wcqstress -queue Sharded -shards 8        # sharded composition
//	wcqstress -queue all -batch 32            # batched enqueue/dequeue rounds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/atomicx"
	"repro/internal/checker"
	"repro/internal/queues"
	"repro/internal/wcq"
)

func main() {
	var (
		queue     = flag.String("queue", "wCQ", "queue name or 'all'")
		producers = flag.Int("producers", 4, "producer goroutines")
		consumers = flag.Int("consumers", 4, "consumer goroutines")
		per       = flag.Int("per", 20000, "values per producer per round")
		rounds    = flag.Int("rounds", 5, "checker rounds per queue")
		capacity  = flag.Uint64("capacity", 256, "ring capacity (bounded queues)")
		emulate   = flag.Bool("emulate", false, "CAS-emulated F&A (PowerPC mode)")
		slowpath  = flag.Bool("slowpath", false, "wCQ: patience 1 + eager helping")
		shards    = flag.Int("shards", 0, "shard count for the Sharded queue (0 = default 4)")
		batch     = flag.Int("batch", 0, "> 1: drive the batched checker with this batch size")
	)
	flag.Parse()

	names := []string{*queue}
	if *queue == "all" {
		names = queues.RealQueues()
	}
	cfg := queues.Config{Capacity: *capacity, MaxThreads: *producers + *consumers + 2, Shards: *shards}
	if *emulate {
		cfg.Mode = atomicx.EmulatedFAA
	}
	if *slowpath {
		cfg.WCQOptions = &wcq.Options{EnqPatience: 1, DeqPatience: 1, HelpDelay: 1}
	}

	failed := false
	for _, name := range names {
		for r := 0; r < *rounds; r++ {
			q, err := queues.New(name, cfg)
			if err != nil {
				fmt.Printf("%-8s SKIP (%v)\n", name, err)
				break
			}
			start := time.Now()
			ccfg := checker.Config{
				Producers:   *producers,
				Consumers:   *consumers,
				PerProducer: *per,
				Capacity:    int(*capacity),
			}
			if *batch > 1 {
				err = checker.RunBatch(q, ccfg, *batch)
			} else {
				err = checker.Run(q, ccfg)
			}
			if err != nil {
				fmt.Printf("%-8s round %d FAIL: %v\n", name, r, err)
				failed = true
				break
			}
			fmt.Printf("%-8s round %d ok (%d values, %.2fs)\n",
				name, r, *producers**per, time.Since(start).Seconds())
		}
	}
	if failed {
		os.Exit(1)
	}
}
