// Command wcqstress runs the MPMC correctness checker against any
// queue in the registry for an arbitrary duration — the long-running
// validation companion to the unit suite.
//
//	wcqstress -queue wCQ -producers 4 -consumers 4 -rounds 20
//	wcqstress -queue all -slowpath            # force wCQ's helped paths
//	wcqstress -queue Sharded -shards 8        # sharded composition
//	wcqstress -queue all -batch 32            # batched enqueue/dequeue rounds
//	                                          # (native single-F&A reservation
//	                                          # on the ring-based queues)
//	wcqstress -queue UWCQ -capacity 64        # unbounded: tiny rings, heavy
//	                                          # turnover and pool recycling
//	wcqstress -blocking                       # blocking Chan facades: parked
//	                                          # Send/Recv + graceful close/drain
//	wcqstress -blocking -batch 16             # parked SendMany/RecvMany incl.
//	                                          # partial batches at close-drain
//
// "all" covers every real queue, including the unbounded LSCQ/UWCQ
// (where -capacity sets the per-ring size, not a bound); -blocking
// covers every Chan facade, including ChanUnbounded.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/checker"
	"repro/internal/clihelper"
	"repro/internal/queueapi"
	"repro/internal/queues"
)

func main() {
	var (
		queue     = flag.String("queue", "", "queue name or 'all' (default: wCQ, or 'all' with -blocking)")
		producers = flag.Int("producers", 4, "producer goroutines")
		consumers = flag.Int("consumers", 4, "consumer goroutines")
		per       = flag.Int("per", 20000, "values per producer per round")
		rounds    = flag.Int("rounds", 5, "checker rounds per queue")
	)
	shared := clihelper.Register(flag.CommandLine, 256)
	flag.Parse()

	if *queue == "" {
		if shared.Blocking {
			*queue = "all"
		} else {
			*queue = "wCQ"
		}
	}
	names := shared.QueueNames(*queue)
	cfg, err := shared.Config(*producers + *consumers + 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		for r := 0; r < *rounds; r++ {
			q, err := queues.New(name, cfg)
			if err != nil {
				fmt.Printf("%-12s SKIP (%v)\n", name, err)
				break
			}
			if shared.Blocking {
				// An unrunnable configuration is a SKIP, not a FAIL: the
				// blocking checker needs the close/drain surface.
				if _, ok := q.(queueapi.Closer); !ok {
					fmt.Printf("%-12s SKIP (not a blocking queue; use one of %v with -blocking)\n", name, queues.BlockingQueues())
					break
				}
			}
			start := time.Now()
			ccfg := checker.Config{
				Producers:   *producers,
				Consumers:   *consumers,
				PerProducer: *per,
				Capacity:    int(shared.Capacity),
			}
			switch {
			case shared.Blocking && shared.Batch > 1:
				err = checker.RunBlockingBatch(q, ccfg, shared.Batch)
			case shared.Blocking:
				err = checker.RunBlocking(q, ccfg)
			case shared.Batch > 1:
				err = checker.RunBatch(q, ccfg, shared.Batch)
			default:
				err = checker.Run(q, ccfg)
			}
			if err != nil {
				fmt.Printf("%-12s round %d FAIL: %v\n", name, r, err)
				failed = true
				break
			}
			fmt.Printf("%-12s round %d ok (%d values, %.2fs)\n",
				name, r, *producers**per, time.Since(start).Seconds())
		}
	}
	if failed {
		os.Exit(1)
	}
}
