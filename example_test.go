package wfqueue_test

import (
	"fmt"

	wfqueue "repro"
)

// The bounded wait-free queue: fixed capacity, per-goroutine handles,
// no allocation after construction.
func ExampleNew() {
	q, err := wfqueue.New[string](8, 2) // capacity 8, up to 2 goroutines
	if err != nil {
		panic(err)
	}
	h, err := q.Handle() // one handle per goroutine
	if err != nil {
		panic(err)
	}
	h.Enqueue("hello")
	h.Enqueue("world")
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// hello
	// world
}

// The sharded composition: several wCQ rings behind one queue, with
// native batch operations. One handle's values keep FIFO order.
func ExampleNewSharded() {
	q, err := wfqueue.NewSharded[int](16, 2, wfqueue.WithShards(2))
	if err != nil {
		panic(err)
	}
	h, err := q.Handle()
	if err != nil {
		panic(err)
	}
	n := h.EnqueueBatch([]int{1, 2, 3})
	out := make([]int, 4)
	m := h.DequeueBatch(out)
	fmt.Println(n, out[:m])
	// Output:
	// 3 [1 2 3]
}

// The blocking facade: Send/Recv park instead of spinning, and Close
// drains gracefully — receives after Close keep returning buffered
// values and only then report ErrClosed.
func ExampleNewChan() {
	c, err := wfqueue.NewChan[string](8, 2)
	if err != nil {
		panic(err)
	}
	h, err := c.Handle()
	if err != nil {
		panic(err)
	}
	if err := h.Send("job"); err != nil {
		panic(err)
	}
	c.Close()
	v, err := h.Recv() // drains the buffered value
	fmt.Println(v, err)
	_, err = h.Recv() // now closed and empty
	fmt.Println(err == wfqueue.ErrClosed)
	// Output:
	// job <nil>
	// true
}

// The unbounded queue: Enqueue never reports full — the queue grows
// by linking rings and shrinks back (through a recycling pool) as
// bursts drain.
func ExampleNewUnbounded() {
	q, err := wfqueue.NewUnbounded[int](2, wfqueue.WithRingCapacity(4))
	if err != nil {
		panic(err)
	}
	h, err := q.Handle()
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ { // far beyond one ring: no "full", it grows
		h.Enqueue(i)
	}
	fmt.Println("rings:", q.Rings() > 1)
	sum := 0
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		sum += v
	}
	fmt.Println("sum:", sum)
	// Output:
	// rings: true
	// sum: 45
}

// The full matrix in one constructor: sharded over unbounded
// linked-ring shards — the head/tail hot words are spread across
// shards AND no shard ever reports full.
func ExampleNewSharded_unboundedShards() {
	q, err := wfqueue.NewSharded[int](8, 2,
		wfqueue.WithUnboundedShards(4),        // 4 shards, each an unbounded linked-ring queue
		wfqueue.WithRingKind(wfqueue.RingWCQ)) // wait-free rings inside every shard
	if err != nil {
		panic(err)
	}
	h, err := q.Handle()
	if err != nil {
		panic(err)
	}
	fmt.Println("cap:", q.Cap()) // 0: no global bound
	for i := 0; i < 100; i++ {   // far beyond one ring: the home shard grows
		h.Enqueue(i)
	}
	sum := 0
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		sum += v
	}
	fmt.Println("sum:", sum)
	// Output:
	// cap: 0
	// sum: 4950
}
