package wfqueue

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/metrics"
	"repro/internal/park"
	"repro/internal/queueapi"
)

// ErrClosed is returned by Chan operations after Close: sends fail
// with it immediately, receives fail with it once the buffered values
// have drained. It aliases the repository-wide sentinel so internal
// harnesses can match it with errors.Is.
var ErrClosed = queueapi.ErrClosed

// Backend selects the nonblocking core a Chan is built on.
type Backend int

const (
	// BackendWCQ buffers on the wait-free wCQ queue (the default).
	BackendWCQ Backend = iota
	// BackendSCQ buffers on the lock-free SCQ queue. It has no handle
	// census, so a Chan over it accepts any number of Handles.
	BackendSCQ
	// BackendSharded buffers on the sharded wCQ composition (see
	// NewSharded); tune the shard count with WithShards.
	BackendSharded
	// BackendUnbounded buffers on the unbounded linked-ring queue (see
	// NewUnbounded): Send never blocks on capacity — only Recv parks —
	// and NewChan's capacity parameter becomes the linked rings' size
	// (the retained-memory granularity), not a bound. Tune the ring
	// kind with WithRingKind.
	BackendUnbounded
	// BackendShardedUnbounded buffers on the sharded composition over
	// unbounded linked-ring shards (see NewSharded with
	// WithUnboundedShards): the head/tail hot words are spread across
	// shards AND Send never blocks on capacity — each shard grows
	// independently, only Recv parks. The capacity parameter becomes
	// each shard's ring size. Tune with WithShards and WithRingKind.
	BackendShardedUnbounded
)

// String names the backend as the queue registry does.
func (b Backend) String() string {
	switch b {
	case BackendWCQ:
		return "wCQ"
	case BackendSCQ:
		return "SCQ"
	case BackendSharded:
		return "Sharded"
	case BackendUnbounded:
		return "Unbounded"
	case BackendShardedUnbounded:
		return "ShardedUnbounded"
	}
	return "?"
}

// WithBackend selects the nonblocking core NewChan builds on. Other
// constructors ignore this option.
func WithBackend(b Backend) Option {
	return func(o *options) { o.backend = b }
}

// chanCore abstracts the nonblocking queue a Chan buffers on.
type chanCore[T any] interface {
	newHandle() (chanCoreHandle[T], error)
	capacity() uint64
	footprint() uint64
	// empty is the backend's one-sided emptiness probe (see
	// ringcore.Core.Empty): true proves an instant during the call at
	// which every enqueued value had been claimed by a dequeuer, which
	// is the linearization point that makes a direct handoff FIFO-safe.
	empty() bool
}

// chanCoreHandle is the per-goroutine nonblocking view every backend
// already provides: bounded-step enqueue/dequeue (scalar and native
// batch) that report full/empty instead of blocking.
type chanCoreHandle[T any] interface {
	Enqueue(T) bool
	Dequeue() (T, bool)
	EnqueueBatch(vs []T) int
	DequeueBatch(out []T) int
}

type wcqChanCore[T any] struct{ q *Queue[T] }

func (c wcqChanCore[T]) newHandle() (chanCoreHandle[T], error) { return c.q.Handle() }
func (c wcqChanCore[T]) capacity() uint64                      { return c.q.Cap() }
func (c wcqChanCore[T]) footprint() uint64                     { return c.q.Footprint() }
func (c wcqChanCore[T]) empty() bool                           { return c.q.q.Empty() }

type scqChanCore[T any] struct{ q *LockFreeQueue[T] }

func (c scqChanCore[T]) newHandle() (chanCoreHandle[T], error) { return c.q.Handle() }
func (c scqChanCore[T]) capacity() uint64                      { return c.q.Cap() }
func (c scqChanCore[T]) footprint() uint64                     { return c.q.Footprint() }
func (c scqChanCore[T]) empty() bool                           { return c.q.q.Empty() }

type shardedChanCore[T any] struct{ q *ShardedQueue[T] }

func (c shardedChanCore[T]) newHandle() (chanCoreHandle[T], error) { return c.q.Handle() }
func (c shardedChanCore[T]) capacity() uint64                      { return c.q.Cap() }
func (c shardedChanCore[T]) footprint() uint64                     { return c.q.Footprint() }
func (c shardedChanCore[T]) empty() bool                           { return c.q.q.Empty() }

type unboundedChanCore[T any] struct{ q *UnboundedQueue[T] }

func (c unboundedChanCore[T]) newHandle() (chanCoreHandle[T], error) {
	h, err := c.q.Handle()
	if err != nil {
		return nil, err
	}
	return unboundedChanHandle[T]{h}, nil
}
func (c unboundedChanCore[T]) capacity() uint64  { return 0 }
func (c unboundedChanCore[T]) footprint() uint64 { return c.q.Footprint() }
func (c unboundedChanCore[T]) empty() bool       { return c.q.q.Empty() }

// unboundedChanHandle adapts the never-full unbounded handle to the
// bool-returning core contract: Enqueue always reports success, so
// senders never park on notFull.
type unboundedChanHandle[T any] struct{ h *UnboundedHandle[T] }

func (h unboundedChanHandle[T]) Enqueue(v T) bool        { h.h.Enqueue(v); return true }
func (h unboundedChanHandle[T]) Dequeue() (T, bool)      { return h.h.Dequeue() }
func (h unboundedChanHandle[T]) EnqueueBatch(vs []T) int { return h.h.EnqueueBatch(vs) }
func (h unboundedChanHandle[T]) DequeueBatch(out []T) int {
	return h.h.DequeueBatch(out)
}

// Chan is a blocking, closable facade over one of the nonblocking
// queues — the buffered-channel shape services want at the edge of a
// system, layered on the wait-free cores without touching their hot
// paths. Senders and receivers park (futex-style, via internal/park)
// when the buffer is full or empty; no operation spin-polls.
//
// The close contract mirrors Go channels but stays a library: Close
// makes every subsequent or blocked Send return ErrClosed (the value
// is NOT buffered), while receives keep draining buffered values and
// return ErrClosed only once the Chan is closed AND empty. Unlike a
// Go channel, closing twice returns ErrClosed instead of panicking,
// and sending on a closed Chan is an error, not a panic.
//
// Like the queues underneath, a Chan is used through per-goroutine
// Handles (the wCQ census); a Handle must not be shared by two
// goroutines running concurrently.
//
// With BackendSharded, "full" follows the sharded queue's semantics:
// a sender blocks when its handle's home shard (capacity/shards
// values) fills, even if other shards have room. Receivers drain all
// shards, so blocked senders still make progress.
//
// With BackendUnbounded and BackendShardedUnbounded there is no
// "full": Send always completes without parking (the buffer grows in
// ring-sized steps instead — per shard, for the sharded variant), and
// only Recv parks. The close contract is unchanged.
type Chan[T any] struct {
	core     chanCore[T]
	notEmpty park.Point // receivers park here
	notFull  park.Point // senders park here
	// shardedFull marks the sharded backend, where "full" is a
	// per-home-shard condition: a slot freed in one shard is useless
	// to a sender homed elsewhere, so receivers must wake every
	// parked sender to re-check its own shard (FIFO Wake(1) could
	// hand the only wake to a sender whose shard is still full, which
	// re-parks and strands a free slot forever).
	shardedFull bool
	// met is the metrics sink shared with the backing core and both
	// park points (nil when WithMetrics was not given): the Chan layer
	// adds the close-drain count on top of the layers below.
	met    *metrics.Sink
	closed atomic.Bool
	// sending counts in-flight Send/TrySend calls. Receivers treat
	// "closed" as final only once this is zero: a sender that passed
	// the closed check may still be buffering its value, and draining
	// receivers must not give up before it lands (or aborts).
	sending atomic.Int64
	// handoff enables the direct-handoff rendezvous fast path: a
	// sender that finds a receiver parked on notEmpty (and the queue
	// verifiably empty, preserving FIFO) publishes its value straight
	// into the waiter's transfer cell and wakes it — the value never
	// touches the ring. See chan_handoff.go.
	handoff bool
	// takeover enables the symmetric sender-side path: a receiver that
	// frees a slot enqueues a parked sender's pending value on its
	// behalf, so the woken sender returns without re-running its retry
	// loop. Only single-ring bounded backends qualify — on the sharded
	// backend the receiver's handle would enqueue into the wrong home
	// shard, breaking per-handle FIFO, and unbounded backends never
	// park senders.
	takeover bool
}

// ChanHandle is a goroutine's capability to use a Chan. Not safe for
// concurrent use by multiple goroutines.
type ChanHandle[T any] struct {
	c *Chan[T]
	h chanCoreHandle[T]
	// rng is this handle's private jitter stream for the spin/yield
	// wait phases: per-handle (so no sharing, no contention) and seeded
	// from a global counter (so a herd of handles decorrelates).
	rng backoff.Rand
	// rcell and scell are this handle's direct-handoff transfer cells:
	// a parking receiver arms rcell on notEmpty so a sender can publish
	// a value into it; a parking sender arms scell on notFull so a
	// receiver can enqueue the pending value on its behalf. They live
	// in the handle — one goroutine's private memory, never shared
	// concurrently (the claim protocol serializes the peer's write
	// against the owner's read) — so no cache-line padding is needed.
	rcell T
	scell T
}

// handleSeed hands each ChanHandle a distinct jitter seed.
var handleSeed atomic.Uint64

// NewChan returns an empty blocking channel facade buffering up to
// capacity values (a power of two >= 2) on the backend selected with
// WithBackend (default BackendWCQ), operated by at most maxThreads
// concurrent Handles (ignored by BackendSCQ, which has no census).
// With BackendUnbounded and BackendShardedUnbounded the buffer has no
// bound — capacity instead sets the linked rings' size (per shard,
// for the sharded variant) — and Send never blocks.
func NewChan[T any](capacity uint64, maxThreads int, opts ...Option) (*Chan[T], error) {
	o := buildOpts(opts)
	var core chanCore[T]
	switch o.backend {
	case BackendWCQ:
		q, err := New[T](capacity, maxThreads, opts...)
		if err != nil {
			return nil, err
		}
		core = wcqChanCore[T]{q}
	case BackendSCQ:
		q, err := NewLockFree[T](capacity, opts...)
		if err != nil {
			return nil, err
		}
		core = scqChanCore[T]{q}
	case BackendSharded:
		// WithUnboundedShards would silently turn this bounded backend
		// unbounded (Cap 0, no Send backpressure); the unbounded-sharded
		// Chan is its own backend, so reject the mix instead.
		if o.unboundedShards {
			return nil, fmt.Errorf("wfqueue: WithUnboundedShards conflicts with BackendSharded; use BackendShardedUnbounded")
		}
		q, err := NewSharded[T](capacity, maxThreads, opts...)
		if err != nil {
			return nil, err
		}
		core = shardedChanCore[T]{q}
	case BackendUnbounded:
		// The capacity parameter becomes the linked rings' size: the
		// buffer has no bound, so Send never parks. Validate it here —
		// NewUnbounded would silently swap a zero for its default,
		// hiding a misconfiguration every other backend rejects.
		if err := validate(capacity, maxThreads); err != nil {
			return nil, err
		}
		q, err := NewUnbounded[T](maxThreads, append(opts, WithRingCapacity(capacity))...)
		if err != nil {
			return nil, err
		}
		core = unboundedChanCore[T]{q}
	case BackendShardedUnbounded:
		// Like BackendUnbounded, capacity is a ring size (here: each
		// shard's), never a bound, so Send never parks.
		if err := validate(capacity, maxThreads); err != nil {
			return nil, err
		}
		q, err := NewSharded[T](capacity, maxThreads, append(opts, WithUnboundedShards(o.shards))...)
		if err != nil {
			return nil, err
		}
		core = shardedChanCore[T]{q}
	default:
		return nil, fmt.Errorf("wfqueue: unknown chan backend %d", o.backend)
	}
	c := &Chan[T]{core: core, shardedFull: o.backend == BackendSharded, met: o.metrics}
	c.handoff = o.handoff.Enabled()
	c.takeover = c.handoff && (o.backend == BackendWCQ || o.backend == BackendSCQ)
	c.notEmpty.SetMetrics(o.metrics)
	c.notFull.SetMetrics(o.metrics)
	c.notEmpty.SetStrategy(o.wait)
	c.notFull.SetStrategy(o.wait)
	return c, nil
}

// Stats snapshots the Chan's metrics sink: park/wake traffic, the
// blocking-wait duration ladder and wake-tranche sizes from both park
// points, close-drain observations, and every event the backing core
// recorded into the shared sink. The Waiters gauge — the goroutines
// parked on the Chan right now — is filled even without WithMetrics;
// all other fields are zero then.
func (c *Chan[T]) Stats() MetricsSnapshot {
	s := c.met.Snapshot()
	s.Waiters = c.notEmpty.Waiters() + c.notFull.Waiters()
	return s
}

// wakeNotFull wakes parked senders after a slot frees up: one sender
// on single-ring backends (any sender can use any slot), all of them
// on the sharded backend (see shardedFull).
//
//wfq:noalloc
func (c *Chan[T]) wakeNotFull() { c.wakeNotFullN(1) }

// wakeNotFullN wakes parked senders after n slots freed up (a batch
// receive), with the same sharded-backend broadcast rule.
//
//wfq:noalloc
func (c *Chan[T]) wakeNotFullN(n int) {
	if c.shardedFull {
		c.notFull.WakeAll()
	} else {
		c.notFull.Wake(n)
	}
}

// Handle registers the calling goroutine and returns its handle. For
// census-bound backends it fails once maxThreads handles exist.
func (c *Chan[T]) Handle() (*ChanHandle[T], error) {
	h, err := c.core.newHandle()
	if err != nil {
		return nil, err
	}
	return &ChanHandle[T]{c: c, h: h, rng: backoff.NewRand(handleSeed.Add(1))}, nil
}

// Cap returns the buffer capacity; 0 means unbounded
// (BackendUnbounded and BackendShardedUnbounded).
func (c *Chan[T]) Cap() uint64 { return c.core.capacity() }

// Footprint returns the bytes the backing queue retains. For bounded
// backends this is the construction-time allocation and never changes
// (parked waiters draw from a shared pool); for BackendUnbounded and
// BackendShardedUnbounded it is the live ring footprint, which grows
// with buffered values and shrinks after a drain.
func (c *Chan[T]) Footprint() uint64 { return c.core.footprint() }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed.Load() }

// Close closes the Chan: blocked and future sends fail with
// ErrClosed, receives drain the buffer and then fail with ErrClosed.
// A second Close returns ErrClosed.
func (c *Chan[T]) Close() error {
	if c.closed.Swap(true) {
		return ErrClosed
	}
	c.notEmpty.WakeAll()
	c.notFull.WakeAll()
	return nil
}

// finishSend retires one in-flight send and wakes receivers: one
// receiver for a delivered value, every parked receiver once the Chan
// is closed (each must re-evaluate the closed-and-drained condition
// now that the in-flight count moved).
//
//wfq:noalloc
func (c *Chan[T]) finishSend(delivered bool) {
	if delivered {
		c.finishSendN(1)
	} else {
		c.finishSendN(0)
	}
}

// finishSendN retires one in-flight send (scalar or batch) that
// delivered n values in its final step and wakes receivers
// accordingly. Values delivered by earlier steps of a batch send have
// already been signalled by then (see SendManyCtx).
//
//wfq:noalloc
func (c *Chan[T]) finishSendN(n int) {
	c.sending.Add(-1)
	if c.closed.Load() {
		c.notEmpty.WakeAll()
	} else if n > 0 {
		c.notEmpty.Wake(n)
	}
}

// TrySend is the nonblocking send: ok reports whether v was buffered
// (false with a nil error means the buffer is full), and err is
// ErrClosed after Close.
//
//wfq:noalloc
func (h *ChanHandle[T]) TrySend(v T) (ok bool, err error) {
	c := h.c
	c.sending.Add(1)
	if c.closed.Load() {
		c.finishSend(false)
		return false, ErrClosed
	}
	if h.tryHandoff(v) {
		// Delivered straight to a parked receiver, which was woken
		// directly — no notEmpty wake needed on top.
		c.finishSendN(0)
		return true, nil
	}
	ok = h.h.Enqueue(v)
	c.finishSend(ok)
	return ok, nil
}

// Send blocks until v is buffered, parking when the buffer is full.
// It returns ErrClosed (without buffering v) if the Chan closes
// first.
func (h *ChanHandle[T]) Send(v T) error { return h.SendCtx(context.Background(), v) }

// SendCtx is Send bounded by ctx: it returns ctx.Err() if the
// context expires before space frees up (v is not buffered).
func (h *ChanHandle[T]) SendCtx(ctx context.Context, v T) error {
	c := h.c
	c.sending.Add(1)
	for {
		if c.closed.Load() {
			c.finishSend(false)
			return ErrClosed
		}
		if h.tryHandoff(v) {
			// Delivered straight to a parked receiver (woken directly).
			c.finishSendN(0)
			return nil
		}
		if h.h.Enqueue(v) {
			c.finishSend(true)
			return nil
		}
		if err := ctx.Err(); err != nil {
			c.finishSend(false)
			return err
		}
		// Phases 1-2 of the wait: spin-then-yield re-checking the
		// full condition before committing to a park. A hit on close
		// (sent stays false) falls through to the registered re-check
		// below, which returns ErrClosed.
		sent := false
		if c.notFull.SpinWait(&h.rng, func() bool {
			if c.closed.Load() {
				return true
			}
			if h.h.Enqueue(v) {
				sent = true
				return true
			}
			return false
		}) && sent {
			c.finishSend(true)
			return nil
		}
		w := c.notFull.Prepare()
		// Re-check after registering: a receiver may have freed a
		// slot (or the Chan closed) before our waiter was visible,
		// in which case its wake cannot have targeted us.
		if c.closed.Load() {
			c.notFull.Abort(w)
			c.finishSend(false)
			return ErrClosed
		}
		if h.h.Enqueue(v) {
			c.notFull.Abort(w)
			c.finishSend(true)
			return nil
		}
		// Park commit: on takeover backends, arm the transfer cell so a
		// receiver freeing a slot can enqueue v on our behalf. Arming
		// only here — after the registered re-checks — keeps those
		// re-checks (which must be free to Enqueue and Abort) from
		// having to disarm first on every successful retry.
		if c.takeover {
			h.armSend(w, v)
		}
		select {
		case <-w.Ready():
			// Done before Finish: Finish recycles the waiter and resets
			// its transfer state.
			done := w.Done()
			c.notFull.Finish(w)
			if done {
				// A receiver enqueued v for us (exactly once); signal a
				// receiver for the value it made visible.
				c.finishSend(true)
				return nil
			}
		case <-ctx.Done():
			if c.notFull.Abort(w) {
				// The handoff landed before the abort: v is buffered.
				c.finishSend(true)
				return nil
			}
			c.finishSend(false)
			return ctx.Err()
		}
	}
}

// TryRecv is the nonblocking receive: ok reports whether a value was
// taken (false with a nil error means the buffer is empty), and err
// is ErrClosed once the Chan is closed and drained.
//
//wfq:noalloc
func (h *ChanHandle[T]) TryRecv() (v T, ok bool, err error) {
	c := h.c
	if v, ok := h.h.Dequeue(); ok {
		h.releaseSlot()
		return v, true, nil
	}
	var zero T
	if c.closed.Load() && c.sending.Load() == 0 {
		// Final re-check: with the in-flight counter at zero after
		// close, every completed send's value is visible.
		if v, ok := h.h.Dequeue(); ok {
			h.releaseSlot()
			return v, true, nil
		}
		c.met.Inc(metrics.CloseDrain)
		return zero, false, ErrClosed
	}
	return zero, false, nil
}

// Recv blocks until a value arrives, parking while the buffer is
// empty. After Close it keeps draining buffered values and returns
// ErrClosed once none remain.
func (h *ChanHandle[T]) Recv() (T, error) { return h.RecvCtx(context.Background()) }

// TrySendMany is the nonblocking batch send: it buffers a prefix of
// vs through the backend's native batch reservation and returns its
// length (a short count means the buffer filled mid-batch), or
// ErrClosed after Close (nothing is buffered then).
//
//wfq:noalloc
func (h *ChanHandle[T]) TrySendMany(vs []T) (int, error) {
	c := h.c
	c.sending.Add(1)
	if c.closed.Load() {
		c.finishSendN(0)
		return 0, ErrClosed
	}
	n := h.h.EnqueueBatch(vs)
	c.finishSendN(n)
	return n, nil
}

// SendMany blocks until every value of vs is buffered, in order,
// parking while the buffer is full. It returns how many values were
// buffered with ErrClosed if the Chan closes mid-batch (the count is
// the batch's delivered prefix; the rest was not buffered).
func (h *ChanHandle[T]) SendMany(vs []T) (int, error) {
	return h.SendManyCtx(context.Background(), vs)
}

// SendManyCtx is SendMany bounded by ctx: it returns the delivered
// prefix length and ctx.Err() if the context expires while the buffer
// is still full. Values buffered before an interruption stay
// buffered; receivers are woken as each chunk lands, not at the end
// of the batch.
func (h *ChanHandle[T]) SendManyCtx(ctx context.Context, vs []T) (int, error) {
	c := h.c
	if len(vs) == 0 {
		// Nothing to deliver: without this guard the loop below would
		// park on notFull forever (the success check lives inside the
		// delivered-a-chunk branch) while pinning the in-flight send
		// counter, wedging every receiver's close-drain check.
		if c.closed.Load() {
			return 0, ErrClosed
		}
		return 0, nil
	}
	c.sending.Add(1)
	sent := 0
	for {
		if c.closed.Load() {
			c.finishSendN(0)
			return sent, ErrClosed
		}
		// Rendezvous fast path: satisfy up to k parked receivers
		// directly, one value each (each handoff wakes its receiver, so
		// no notEmpty signal is owed for these).
		for sent < len(vs) && h.tryHandoff(vs[sent]) {
			sent++
		}
		if sent == len(vs) {
			c.finishSendN(0)
			return sent, nil
		}
		if n := h.h.EnqueueBatch(vs[sent:]); n > 0 {
			sent += n
			if sent == len(vs) {
				c.finishSendN(n)
				return sent, nil
			}
			c.notEmpty.Wake(n) // partial chunk is visible now; signal receivers
		}
		if err := ctx.Err(); err != nil {
			c.finishSendN(0)
			return sent, err
		}
		// Phases 1-2: spin-then-yield before parking, accumulating any
		// partial chunk the spin lands. A hit on close falls through to
		// the registered re-check below.
		progress := 0
		if c.notFull.SpinWait(&h.rng, func() bool {
			if c.closed.Load() {
				return true
			}
			if n := h.h.EnqueueBatch(vs[sent:]); n > 0 {
				progress = n
				return true
			}
			return false
		}) && progress > 0 {
			sent += progress
			if sent == len(vs) {
				c.finishSendN(progress)
				return sent, nil
			}
			c.notEmpty.Wake(progress)
			continue
		}
		w := c.notFull.Prepare()
		// Re-check after registering (lost-wakeup protocol, as SendCtx).
		if c.closed.Load() {
			c.notFull.Abort(w)
			c.finishSendN(0)
			return sent, ErrClosed
		}
		if n := h.h.EnqueueBatch(vs[sent:]); n > 0 {
			c.notFull.Abort(w)
			sent += n
			if sent == len(vs) {
				c.finishSendN(n)
				return sent, nil
			}
			c.notEmpty.Wake(n)
			continue
		}
		// Park commit: arm the next pending value for takeover (see
		// SendCtx for why arming waits until after the re-checks).
		if c.takeover {
			h.armSend(w, vs[sent])
		}
		select {
		case <-w.Ready():
			done := w.Done()
			c.notFull.Finish(w)
			if done {
				// A receiver enqueued vs[sent] for us (exactly once).
				sent++
				if sent == len(vs) {
					c.finishSendN(1)
					return sent, nil
				}
				c.notEmpty.Wake(1)
			}
		case <-ctx.Done():
			if c.notFull.Abort(w) {
				// The takeover landed before the abort: vs[sent] is
				// buffered and counts toward the delivered prefix.
				sent++
				c.finishSendN(1)
				if sent == len(vs) {
					return sent, nil
				}
				return sent, ctx.Err()
			}
			c.finishSendN(0)
			return sent, ctx.Err()
		}
	}
}

// TryRecvMany is the nonblocking batch receive: it fills a prefix of
// out through the backend's native batch reservation and returns its
// length (0 with a nil error means the buffer is empty), or ErrClosed
// once the Chan is closed and drained.
//
//wfq:noalloc
func (h *ChanHandle[T]) TryRecvMany(out []T) (int, error) {
	c := h.c
	if n := h.h.DequeueBatch(out); n > 0 {
		h.releaseSlots(n)
		return n, nil
	}
	if c.closed.Load() && c.sending.Load() == 0 {
		// Final re-check: with the in-flight counter at zero after
		// close, every completed send's value is visible.
		if n := h.h.DequeueBatch(out); n > 0 {
			h.releaseSlots(n)
			return n, nil
		}
		c.met.Inc(metrics.CloseDrain)
		return 0, ErrClosed
	}
	return 0, nil
}

// RecvMany blocks until at least one value is available, then fills a
// prefix of out without waiting for more and returns its length. It
// never returns 0 with a nil error. After Close it keeps draining —
// the final values come back as a partial batch — and returns
// ErrClosed once nothing remains.
func (h *ChanHandle[T]) RecvMany(out []T) (int, error) {
	return h.RecvManyCtx(context.Background(), out)
}

// RecvManyCtx is RecvMany bounded by ctx: it returns ctx.Err() if the
// context expires while the buffer is still empty.
func (h *ChanHandle[T]) RecvManyCtx(ctx context.Context, out []T) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	if h.c.handoff {
		return h.recvManyCtxHandoff(ctx, out)
	}
	return h.recvManyCtxRing(ctx, out)
}

// recvManyCtxRing is the pre-handoff blocking batch receive, kept
// verbatim as the -handoff=off path (the A/B baseline the h1 figure
// and the perf-smoke gate compare against).
func (h *ChanHandle[T]) recvManyCtxRing(ctx context.Context, out []T) (int, error) {
	c := h.c
	for {
		if n := h.h.DequeueBatch(out); n > 0 {
			c.wakeNotFullN(n)
			return n, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Phases 1-2: spin-then-yield before parking. A hit on the
		// closed-and-drained arm (got stays 0) falls through to the
		// registered close-drain check below.
		got := 0
		if c.notEmpty.SpinWait(&h.rng, func() bool {
			if n := h.h.DequeueBatch(out); n > 0 {
				got = n
				return true
			}
			return c.closed.Load() && c.sending.Load() == 0
		}) && got > 0 {
			c.wakeNotFullN(got)
			return got, nil
		}
		w := c.notEmpty.Prepare()
		// Re-check after registering (lost-wakeup protocol).
		if n := h.h.DequeueBatch(out); n > 0 {
			c.notEmpty.Abort(w)
			c.wakeNotFullN(n)
			return n, nil
		}
		if c.closed.Load() && c.sending.Load() == 0 {
			if n := h.h.DequeueBatch(out); n > 0 {
				c.notEmpty.Abort(w)
				c.wakeNotFullN(n)
				return n, nil
			}
			c.notEmpty.Abort(w)
			// Nudge any sibling still parked so it re-evaluates the
			// drained state too.
			c.notEmpty.WakeAll()
			c.met.Inc(metrics.CloseDrain)
			return 0, ErrClosed
		}
		select {
		case <-w.Ready():
			c.notEmpty.Finish(w)
		case <-ctx.Done():
			c.notEmpty.Abort(w)
			return 0, ctx.Err()
		}
	}
}

// RecvCtx is Recv bounded by ctx: it returns ctx.Err() if the
// context expires while the buffer is still empty.
func (h *ChanHandle[T]) RecvCtx(ctx context.Context) (T, error) {
	if h.c.handoff {
		return h.recvCtxHandoff(ctx)
	}
	return h.recvCtxRing(ctx)
}

// recvCtxRing is the pre-handoff blocking receive, kept verbatim as
// the -handoff=off path (see recvManyCtxRing).
func (h *ChanHandle[T]) recvCtxRing(ctx context.Context) (T, error) {
	c := h.c
	var zero T
	for {
		if v, ok := h.h.Dequeue(); ok {
			c.wakeNotFull()
			return v, nil
		}
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		// Phases 1-2: spin-then-yield before parking. A hit on the
		// closed-and-drained arm (got stays false) falls through to the
		// registered close-drain check below.
		var sv T
		got := false
		if c.notEmpty.SpinWait(&h.rng, func() bool {
			if v, ok := h.h.Dequeue(); ok {
				sv, got = v, true
				return true
			}
			return c.closed.Load() && c.sending.Load() == 0
		}) && got {
			c.wakeNotFull()
			return sv, nil
		}
		w := c.notEmpty.Prepare()
		// Re-check after registering (lost-wakeup protocol).
		if v, ok := h.h.Dequeue(); ok {
			c.notEmpty.Abort(w)
			c.wakeNotFull()
			return v, nil
		}
		if c.closed.Load() && c.sending.Load() == 0 {
			if v, ok := h.h.Dequeue(); ok {
				c.notEmpty.Abort(w)
				c.wakeNotFull()
				return v, nil
			}
			c.notEmpty.Abort(w)
			// Nudge any sibling still parked so it re-evaluates the
			// drained state too.
			c.notEmpty.WakeAll()
			c.met.Inc(metrics.CloseDrain)
			return zero, ErrClosed
		}
		select {
		case <-w.Ready():
			c.notEmpty.Finish(w)
		case <-ctx.Done():
			c.notEmpty.Abort(w)
			return zero, ctx.Err()
		}
	}
}
